//! Domain search over real CSV files on disk.
//!
//! Point this example at a directory of CSV files and an attribute to
//! search with; it ingests every column of every file as a domain, builds
//! the ensemble, and reports which columns (from any file) maximally
//! contain the chosen attribute — the workflow a data scientist would run
//! against a downloaded Open Data dump.
//!
//! Usage:
//! ```text
//! cargo run --release -p lshe --example csv_domain_search -- \
//!     [dir] [table.column] [t_star]
//! ```
//! With no arguments, the example writes a small demo directory under the
//! system temp dir and searches it, so it always runs out of the box.

use bytes::Bytes;
use lshe_core::{EnsembleConfig, LshEnsemble, PartitionStrategy};
use lshe_corpus::Catalog;
use lshe_minhash::MinHasher;
use std::path::{Path, PathBuf};

fn main() {
    let mut args = std::env::args().skip(1);
    let (dir, query_name, t_star) = match args.next() {
        Some(dir) => (
            PathBuf::from(dir),
            args.next().unwrap_or_default(),
            args.next()
                .map(|s| s.parse().expect("threshold"))
                .unwrap_or(0.7),
        ),
        None => (write_demo_dir(), "cities.city".to_owned(), 0.7),
    };

    // 1. Ingest every *.csv and *.jsonl in the directory (open-data dumps
    //    mix formats; both land in the same value universe, so cross-format
    //    joins just work).
    let mut catalog = Catalog::new();
    let mut files = 0usize;
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("readable directory")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "csv" || e == "jsonl"))
        .collect();
    entries.sort();
    for path in entries {
        let table = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let data = std::fs::read(&path).expect("readable file");
        if path.extension().is_some_and(|e| e == "jsonl") {
            let (ids, skipped) = catalog.ingest_jsonl(&table, &data, 2);
            files += 1;
            println!(
                "ingested {table} (jsonl): {} domains ({skipped} bad lines)",
                ids.len()
            );
        } else {
            match catalog.ingest_csv_bytes(&table, Bytes::from(data), 2) {
                Ok(ids) => {
                    files += 1;
                    println!("ingested {table}: {} domains", ids.len());
                }
                Err(e) => eprintln!("skipping {}: {e}", path.display()),
            }
        }
    }
    assert!(files > 0, "no CSV/JSONL files found in {}", dir.display());

    // 2. Build the index.
    let hasher = MinHasher::new(256);
    let mut builder = LshEnsemble::builder_with(EnsembleConfig {
        strategy: PartitionStrategy::EquiDepth { n: 8 },
        ..EnsembleConfig::default()
    });
    for (id, domain) in catalog.iter() {
        builder.add(id, domain.len() as u64, domain.signature(&hasher));
    }
    let index = builder.build();
    println!(
        "\nindexed {} domains from {files} files ({} partitions)",
        index.len(),
        index.num_partitions()
    );

    // 3. Resolve the query attribute ("table.column").
    let query_id = catalog
        .iter()
        .find(|(id, _)| {
            let m = catalog.meta(*id);
            format!("{}.{}", m.table, m.column) == query_name
        })
        .map(|(id, _)| id)
        .unwrap_or_else(|| {
            let available: Vec<String> = catalog
                .iter()
                .take(20)
                .map(|(id, _)| {
                    let m = catalog.meta(id);
                    format!("{}.{}", m.table, m.column)
                })
                .collect();
            panic!("attribute {query_name:?} not found; try one of {available:?}")
        });
    let query = catalog.domain(query_id);
    println!(
        "query: {query_name} ({} distinct values), t* = {t_star}",
        query.len()
    );

    // 4. Search and rank by exact containment.
    let hits = index.query_with_size(&query.signature(&hasher), query.len() as u64, t_star);
    let mut ranked: Vec<(f64, String)> = hits
        .into_iter()
        .filter(|&id| id != query_id)
        .map(|id| {
            let m = catalog.meta(id);
            (
                query.containment_in(catalog.domain(id)),
                format!("{}.{}", m.table, m.column),
            )
        })
        .collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("no NaN"));
    println!("\njoinable columns:");
    if ranked.is_empty() {
        println!("  (none at this threshold — try lowering t*)");
    }
    for (t, name) in ranked {
        println!("  t = {t:.2}  {name}");
    }
}

/// Writes a self-contained demo directory of CSVs and returns its path.
fn write_demo_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("lshe_csv_demo");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let write = |name: &str, content: &str| {
        std::fs::write(Path::new(&dir).join(name), content).expect("writable temp dir");
    };
    write(
        "cities.csv",
        "city,province\nToronto,Ontario\nOttawa,Ontario\nMontreal,Quebec\nHalifax,Nova Scotia\nVancouver,British Columbia\n",
    );
    write(
        "airports.csv",
        "code,city\nYYZ,Toronto\nYOW,Ottawa\nYUL,Montreal\nYHZ,Halifax\nYVR,Vancouver\nSEA,Seattle\nJFK,New York\n",
    );
    write(
        "budgets.csv",
        "department,amount\nHealth,100\nTransport,80\nEducation,120\n",
    );
    write(
        "offices.jsonl",
        "{\"city\": \"Toronto\", \"staff\": 120}\n{\"city\": \"Ottawa\", \"staff\": 45}\n{\"city\": \"Montreal\", \"staff\": 80}\n{\"city\": \"Halifax\", \"staff\": 12}\n{\"city\": \"Vancouver\", \"staff\": 66}\n",
    );
    println!(
        "(no directory given — using demo data in {})\n",
        dir.display()
    );
    dir
}
