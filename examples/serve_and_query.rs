//! Serving walkthrough: build a small ranked index, boot the `lshe-serve`
//! HTTP server on an ephemeral port, and talk to it over real TCP — one
//! query twice (the second is a cache hit), a top-k query, and a batch —
//! then shut down gracefully.
//!
//! Run with:
//! ```text
//! cargo run --release -p lshe --example serve_and_query
//! ```
//!
//! In production you would persist the index with `lshe index` and serve
//! it with `lshe serve --index tables.lshe`; this example keeps everything
//! in-process so it runs with no setup.

use lshe::corpus::{Catalog, Domain, DomainMeta};
use lshe::serve::client::HttpClient;
use lshe::serve::engine::Engine;
use lshe::serve::json::Json;
use lshe::serve::server::{start, ServerConfig};
use lshe::IndexContainer;
use std::sync::Arc;

fn main() {
    // A toy open-data catalog: each "column" holds city names; later tables
    // extend earlier ones, so containment search finds the supersets.
    let cities = [
        "amsterdam",
        "bergen",
        "cork",
        "dresden",
        "espoo",
        "florence",
        "ghent",
        "helsinki",
        "innsbruck",
        "jena",
        "krakow",
        "lyon",
        "malmo",
        "nantes",
        "oslo",
        "porto",
        "quimper",
        "riga",
        "sevilla",
        "tartu",
        "uppsala",
        "vienna",
        "warsaw",
        "york",
        "zagreb",
    ];
    let mut catalog = Catalog::new();
    for k in 0..6 {
        let n = 10 + 3 * k;
        catalog.push(
            Domain::from_strs(cities[..n].iter().copied()),
            DomainMeta::new(format!("cities_{k}"), "name"),
        );
    }
    let container = IndexContainer::build(&catalog, 4, true);
    println!("indexed {} domains", container.len());

    // Boot the server: snapshot engine, 2 workers, a 64-entry query cache.
    let engine = Engine::from_container(container, 1).expect("engine");
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 2,
        cache_capacity: 64,
        ..ServerConfig::default()
    };
    let server = start(Arc::new(engine), &config).expect("bind");
    let addr = server.addr();
    println!("serving on http://{addr}");
    let mut client = HttpClient::connect(addr);

    let (_, health) = client.get("/health");
    println!("health: {health}");

    // Query: the first 10 cities — contained in every table.
    let values: Vec<String> = cities[..10].iter().map(|c| format!("\"{c}\"")).collect();
    let query = format!("{{\"values\": [{}], \"threshold\": 0.9}}", values.join(","));
    let (_, first) = client.post("/query", &query);
    println!(
        "query: {} hit(s), cached={}",
        first.get("count").and_then(Json::as_u64).expect("count"),
        first.get("cached").and_then(Json::as_bool).expect("cached"),
    );
    let (_, second) = client.post("/query", &query);
    println!(
        "query again: cached={}",
        second
            .get("cached")
            .and_then(Json::as_bool)
            .expect("cached"),
    );

    // Top-3 by estimated containment.
    let (_, topk) = client.post(
        "/topk",
        &format!("{{\"values\": [{}], \"k\": 3}}", values.join(",")),
    );
    for hit in topk.get("hits").and_then(Json::as_array).expect("hits") {
        println!(
            "  top-k: {}.{} (t̂ = {:.2})",
            hit.get("table").and_then(Json::as_str).expect("table"),
            hit.get("column").and_then(Json::as_str).expect("column"),
            hit.get("estimate")
                .and_then(Json::as_f64)
                .expect("estimate"),
        );
    }

    // A batch of three queries answered in one request.
    let (_, batch) = client.post(
        "/batch",
        &format!(
            "{{\"queries\": [{q}, {q}, {{\"values\": [\"oslo\", \"porto\", \"riga\"], \"threshold\": 0.5}}]}}",
            q = query
        ),
    );
    println!(
        "batch: {} result(s) in {} µs",
        batch.get("count").and_then(Json::as_u64).expect("count"),
        batch
            .get("batch_time_us")
            .and_then(Json::as_u64)
            .expect("time"),
    );

    let (_, stats) = client.get("/stats");
    let cache = stats.get("cache").expect("cache");
    println!(
        "cache: {} hit(s), {} miss(es)",
        cache.get("hits").and_then(Json::as_u64).expect("hits"),
        cache.get("misses").and_then(Json::as_u64).expect("misses"),
    );

    server.shutdown();
    println!("server stopped");
}
