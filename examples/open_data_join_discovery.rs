//! Join discovery over open-data tables — the paper's §1.1 motivating
//! scenario.
//!
//! A data scientist holds `NSERC_GRANT_PARTNER_2011` and wants other tables
//! that join on its `Partner` attribute. We ingest a small fleet of CSV
//! "open data" tables, index every column's domain, and ask the ensemble
//! which columns maximally contain the Partner domain. Results are verified
//! against exact containment.
//!
//! Run with:
//! `cargo run --release -p lshe --example open_data_join_discovery`

use bytes::Bytes;
use lshe_core::{EnsembleConfig, LshEnsemble, PartitionStrategy};
use lshe_corpus::{Catalog, Domain, ExactIndex};
use lshe_minhash::MinHasher;

/// The table the analyst starts from.
const NSERC_GRANTS: &str = "\
Identifier,Partner,Province,FiscalYear
1,Acme Robotics,Ontario,2011
2,Borealis AI,Ontario,2011
3,Canaduck Avionics,Quebec,2011
4,Delta Hydro,British Columbia,2011
5,Evergreen Biotech,Nova Scotia,2011
6,Falcon Materials,Alberta,2011
7,Glacier Computing,Manitoba,2011
8,Harbour Shipping,Nova Scotia,2011
";

/// A corporate registry: contains *all* grant partners plus many more
/// companies — the ideal join target.
const CORPORATE_REGISTRY: &str = "\
CompanyName,Sector,Employees
Acme Robotics,Manufacturing,420
Borealis AI,Software,180
Canaduck Avionics,Aerospace,77
Canaduck Avionics,Aerospace,77
Delta Hydro,Energy,2600
Evergreen Biotech,Pharma,340
Falcon Materials,Mining,510
Glacier Computing,Software,96
Harbour Shipping,Logistics,1200
Ivory Analytics,Software,45
Juniper Foods,Agriculture,310
Krakatoa Coffee,Retail,88
Lumen Optics,Manufacturing,150
";

/// A contracts table: overlaps on only a few partners.
const CONTRACTS: &str = "\
Vendor,Amount
Acme Robotics,125000
Juniper Foods,98000
Lumen Optics,42000
Zephyr Airlines,310000
";

/// An unrelated table that should not surface.
const WEATHER: &str = "\
Station,MeanTempC
Toronto Pearson,8.4
Halifax Stanfield,6.9
Vancouver Intl,10.2
";

fn main() {
    // 1. Ingest every table; each column with ≥ 3 distinct values becomes a
    //    searchable domain (the paper floors at 10 on the real corpus).
    let mut catalog = Catalog::new();
    for (name, csv) in [
        ("nserc_grants", NSERC_GRANTS),
        ("corporate_registry", CORPORATE_REGISTRY),
        ("contracts", CONTRACTS),
        ("weather", WEATHER),
    ] {
        let ids = catalog
            .ingest_csv_bytes(name, Bytes::from_static(csv.as_bytes()), 3)
            .expect("well-formed CSV");
        println!("ingested {name}: {} domains", ids.len());
    }

    // 2. Build the search index over all column domains.
    let hasher = MinHasher::new(256);
    let mut builder = LshEnsemble::builder_with(EnsembleConfig {
        strategy: PartitionStrategy::EquiDepth { n: 4 },
        ..EnsembleConfig::default()
    });
    for (id, domain) in catalog.iter() {
        builder.add(id, domain.len() as u64, domain.signature(&hasher));
    }
    let index = builder.build();

    // 3. The query: the Partner column of the analyst's table.
    let partner_id = catalog
        .iter()
        .find(|(id, _)| {
            catalog.meta(*id).table == "nserc_grants" && catalog.meta(*id).column == "Partner"
        })
        .map(|(id, _)| id)
        .expect("Partner column ingested");
    let query: &Domain = catalog.domain(partner_id);
    println!(
        "\nquery: nserc_grants.Partner ({} distinct values)",
        query.len()
    );

    // 4. Search for joinable columns at t* = 0.7 and rank by exact score.
    let t_star = 0.7;
    let hits = index.query_with_size(&query.signature(&hasher), query.len() as u64, t_star);
    let mut ranked: Vec<(f64, String)> = hits
        .iter()
        .filter(|&&id| id != partner_id)
        .map(|&id| {
            let meta = catalog.meta(id);
            (
                query.containment_in(catalog.domain(id)),
                format!("{}.{}", meta.table, meta.column),
            )
        })
        .collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("no NaN"));
    println!("\njoin candidates at t* = {t_star} (ranked by exact containment):");
    for (t, name) in &ranked {
        println!("  t = {t:.2}  {name}");
    }

    // 5. Verify against exact ground truth (Eq. 2).
    let exact = ExactIndex::build(&catalog);
    let truth = exact.search(query, t_star);
    let missed: Vec<_> = truth
        .iter()
        .filter(|id| **id != partner_id && !hits.contains(id))
        .collect();
    println!(
        "\nground truth has {} qualifying domains; index missed {}",
        truth.len() - 1, // exclude the query itself
        missed.len()
    );
    assert!(
        ranked
            .iter()
            .any(|(_, n)| n == "corporate_registry.CompanyName"),
        "the registry's CompanyName column must be discovered"
    );
    println!("ok: corporate_registry.CompanyName is the top join target.");
}
