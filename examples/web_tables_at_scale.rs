//! Internet-scale deployment in miniature: a WDC-Web-Tables-like corpus of
//! 100,000 synthetic domains, sharded across 5 in-process "nodes" exactly
//! like the paper's cluster (§6.3), with timed containment queries.
//!
//! Run with:
//! `cargo run --release -p lshe --example web_tables_at_scale -- [domains]`

use lshe_core::{EnsembleConfig, PartitionStrategy, ShardedEnsemble};
use lshe_datagen::{generate_catalog, sample_queries, CorpusConfig, SizeBand};
use lshe_minhash::MinHasher;
use std::time::Instant;

fn main() {
    let num_domains: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("domain count"))
        .unwrap_or(100_000);

    // 1. Generate the corpus (power-law sizes 1..2^14, clustered overlap).
    let started = Instant::now();
    let catalog = generate_catalog(&CorpusConfig::wdc_web_tables_like(num_domains));
    println!(
        "generated {} domains ({} values) in {:.1}s",
        catalog.len(),
        catalog.total_values(),
        started.elapsed().as_secs_f64()
    );

    // 2. Sketch everything (m = 256) and bulk-load 5 shards × 32 partitions.
    let hasher = MinHasher::new(256);
    let started = Instant::now();
    let signatures: Vec<_> = catalog.iter().map(|(_, d)| d.signature(&hasher)).collect();
    println!("sketched in {:.1}s", started.elapsed().as_secs_f64());

    let ids: Vec<u32> = catalog.iter().map(|(id, _)| id).collect();
    let sizes: Vec<u64> = catalog.iter().map(|(_, d)| d.len() as u64).collect();
    let sig_refs: Vec<&lshe_minhash::Signature> = signatures.iter().collect();
    let started = Instant::now();
    let index = ShardedEnsemble::build_from_parts(
        5,
        EnsembleConfig {
            strategy: PartitionStrategy::EquiDepth { n: 32 },
            ..EnsembleConfig::default()
        },
        &ids,
        &sizes,
        &sig_refs,
    );
    println!(
        "indexed across {} shards in {:.1}s",
        index.num_shards(),
        started.elapsed().as_secs_f64()
    );

    // 3. Run a query workload at t* = 0.5 and report latency.
    let queries = sample_queries(&catalog, 200, SizeBand::All, 7);
    let started = Instant::now();
    let mut total_candidates = 0usize;
    for &q in &queries {
        let hits =
            index.query_with_size(&signatures[q as usize], catalog.domain(q).len() as u64, 0.5);
        total_candidates += hits.len();
    }
    let elapsed = started.elapsed().as_secs_f64();
    println!(
        "\n{} queries at t* = 0.5: mean latency {:.2} ms, mean candidates {:.1}",
        queries.len(),
        1000.0 * elapsed / queries.len() as f64,
        total_candidates as f64 / queries.len() as f64
    );

    // 4. Every query must at least find itself (exact duplicate).
    let self_found = queries
        .iter()
        .filter(|&&q| {
            index
                .query_with_size(&signatures[q as usize], catalog.domain(q).len() as u64, 0.9)
                .contains(&q)
        })
        .count();
    println!(
        "self-match check at t* = 0.9: {}/{} queries found themselves",
        self_found,
        queries.len()
    );
    assert_eq!(
        self_found,
        queries.len(),
        "exact matches must never be lost"
    );
}
