//! Quickstart: index a handful of domains and run a containment search.
//!
//! This is the paper's §2 running example — the query `{Ontario, Toronto}`
//! against a `Provinces` domain and a `Locations` domain — showing why
//! set containment, not Jaccard similarity, is the right relevance measure
//! for domain search, and how the LSH Ensemble answers it.
//!
//! Run with: `cargo run --release -p lshe --example quickstart`

use lshe_core::{DomainIndex, EnsembleConfig, PartitionStrategy, Query, RankedIndex};
use lshe_corpus::{Catalog, Domain, DomainMeta};
use lshe_minhash::MinHasher;

fn main() {
    // 1. A tiny corpus: two domains from the paper plus filler so the
    //    index has something to partition.
    let mut catalog = Catalog::new();
    let provinces = Domain::from_strs(["Alberta", "Ontario", "Manitoba"]);
    let locations = Domain::from_strs([
        "Illinois",
        "Chicago",
        "New York City",
        "New York",
        "Nova Scotia",
        "Halifax",
        "California",
        "San Francisco",
        "Seattle",
        "Washington",
        "Ontario",
        "Toronto",
    ]);
    let provinces_id = catalog.push(provinces, DomainMeta::new("geo.csv", "province"));
    let locations_id = catalog.push(locations, DomainMeta::new("offices.csv", "location"));
    for i in 0..30 {
        let filler = Domain::from_hashes((1000 * (i + 1)..1000 * (i + 1) + 20 + i).collect());
        catalog.push(filler, DomainMeta::new(format!("filler{i}.csv"), "col"));
    }

    // 2. Sketch every domain and build a ranked ensemble (retained
    //    sketches buy containment estimates and top-k), then hold it
    //    behind the unified `DomainIndex` surface — the same trait the
    //    CLI, the HTTP server, and the benches dispatch through.
    let hasher = MinHasher::new(256);
    let mut builder = RankedIndex::builder_with(EnsembleConfig {
        strategy: PartitionStrategy::EquiDepth { n: 4 },
        ..EnsembleConfig::default()
    });
    for (id, domain) in catalog.iter() {
        builder.add(id, domain.len() as u64, domain.signature(&hasher));
    }
    let index: Box<dyn DomainIndex> = Box::new(builder.build());
    println!(
        "indexed {} domains ({}, ~{} KiB)",
        index.len(),
        index.describe(),
        index.memory_bytes() / 1024
    );

    // 3. The paper's §2 point, on exact scores: Q = {Ontario, Toronto}.
    //    Jaccard prefers the *small* Provinces domain; containment
    //    correctly ranks Locations (which holds all of Q) first.
    let paper_q = Domain::from_strs(["Ontario", "Toronto"]);
    println!("\nexact scores (the paper's §2 example):");
    println!(
        "  t(Q, Provinces) = {:.2}   s(Q, Provinces) = {:.3}",
        paper_q.containment_in(catalog.domain(provinces_id)),
        paper_q.jaccard(catalog.domain(provinces_id)),
    );
    println!(
        "  t(Q, Locations) = {:.2}   s(Q, Locations) = {:.3}",
        paper_q.containment_in(catalog.domain(locations_id)),
        paper_q.jaccard(catalog.domain(locations_id)),
    );

    // 4. Containment search with a realistic query: eight office cities,
    //    all contained in the Locations column. (MinHash sketches need a
    //    handful of values to resolve containment — a 2-value query is
    //    below the sketch's resolution, which is why real workloads query
    //    with whole columns.)
    let query = Domain::from_strs([
        "Ontario",
        "Toronto",
        "Halifax",
        "Nova Scotia",
        "Seattle",
        "Washington",
        "Chicago",
        "Illinois",
    ]);
    let sig = query.signature(&hasher);
    let outcome = index
        .search(&Query::threshold(&sig, 0.8).with_size(query.len() as u64))
        .expect("valid query");
    println!("\ncontainment search (8 office cities) at t* = 0.8:");
    for hit in &outcome.hits {
        let meta = catalog.meta(hit.id);
        let t = query.containment_in(catalog.domain(hit.id));
        println!(
            "  {}.{} (t = {t:.2}, t̂ = {:.2})",
            meta.table,
            meta.column,
            hit.estimate.unwrap_or(f64::NAN)
        );
    }
    let stats = outcome.stats;
    println!(
        "probed {}/{} partitions, {} candidates → {} survivors in {} µs",
        stats.partitions_probed,
        stats.partitions_total,
        stats.candidates,
        stats.survivors,
        stats.wall_micros
    );
    assert!(
        outcome.hits.iter().any(|h| h.id == locations_id),
        "Locations must be found"
    );

    // 5. Top-k through the very same surface: the two best containers.
    let top = index
        .search(&Query::top_k(&sig, 2).with_size(query.len() as u64))
        .expect("valid query");
    println!("\ntop-2 by estimated containment:");
    for hit in &top.hits {
        let meta = catalog.meta(hit.id);
        println!(
            "  t̂ = {:.2}  {}.{}",
            hit.estimate.unwrap_or(f64::NAN),
            meta.table,
            meta.column
        );
    }
    println!("\nok: the joinable column was found.");
}
