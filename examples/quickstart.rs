//! Quickstart: index a handful of domains and run a containment search.
//!
//! This is the paper's §2 running example — the query `{Ontario, Toronto}`
//! against a `Provinces` domain and a `Locations` domain — showing why
//! set containment, not Jaccard similarity, is the right relevance measure
//! for domain search, and how the LSH Ensemble answers it.
//!
//! Run with: `cargo run --release -p lshe --example quickstart`

use lshe_core::{EnsembleConfig, LshEnsemble, PartitionStrategy};
use lshe_corpus::{Catalog, Domain, DomainMeta};
use lshe_minhash::MinHasher;

fn main() {
    // 1. A tiny corpus: two domains from the paper plus filler so the
    //    index has something to partition.
    let mut catalog = Catalog::new();
    let provinces = Domain::from_strs(["Alberta", "Ontario", "Manitoba"]);
    let locations = Domain::from_strs([
        "Illinois",
        "Chicago",
        "New York City",
        "New York",
        "Nova Scotia",
        "Halifax",
        "California",
        "San Francisco",
        "Seattle",
        "Washington",
        "Ontario",
        "Toronto",
    ]);
    let provinces_id = catalog.push(provinces, DomainMeta::new("geo.csv", "province"));
    let locations_id = catalog.push(locations, DomainMeta::new("offices.csv", "location"));
    for i in 0..30 {
        let filler = Domain::from_hashes((1000 * (i + 1)..1000 * (i + 1) + 20 + i).collect());
        catalog.push(filler, DomainMeta::new(format!("filler{i}.csv"), "col"));
    }

    // 2. Sketch every domain and build the ensemble.
    let hasher = MinHasher::new(256);
    let mut builder = LshEnsemble::builder_with(EnsembleConfig {
        strategy: PartitionStrategy::EquiDepth { n: 4 },
        ..EnsembleConfig::default()
    });
    for (id, domain) in catalog.iter() {
        builder.add(id, domain.len() as u64, domain.signature(&hasher));
    }
    let index = builder.build();
    println!(
        "indexed {} domains across {} partitions",
        index.len(),
        index.num_partitions()
    );

    // 3. The paper's §2 point, on exact scores: Q = {Ontario, Toronto}.
    //    Jaccard prefers the *small* Provinces domain; containment
    //    correctly ranks Locations (which holds all of Q) first.
    let paper_q = Domain::from_strs(["Ontario", "Toronto"]);
    println!("\nexact scores (the paper's §2 example):");
    println!(
        "  t(Q, Provinces) = {:.2}   s(Q, Provinces) = {:.3}",
        paper_q.containment_in(catalog.domain(provinces_id)),
        paper_q.jaccard(catalog.domain(provinces_id)),
    );
    println!(
        "  t(Q, Locations) = {:.2}   s(Q, Locations) = {:.3}",
        paper_q.containment_in(catalog.domain(locations_id)),
        paper_q.jaccard(catalog.domain(locations_id)),
    );

    // 4. Containment search with a realistic query: eight office cities,
    //    all contained in the Locations column. (MinHash sketches need a
    //    handful of values to resolve containment — a 2-value query is
    //    below the sketch's resolution, which is why real workloads query
    //    with whole columns.)
    let query = Domain::from_strs([
        "Ontario",
        "Toronto",
        "Halifax",
        "Nova Scotia",
        "Seattle",
        "Washington",
        "Chicago",
        "Illinois",
    ]);
    let hits = index.query_with_size(&query.signature(&hasher), query.len() as u64, 0.8);
    println!("\ncontainment search (8 office cities) at t* = 0.8:");
    for id in &hits {
        let meta = catalog.meta(*id);
        let t = query.containment_in(catalog.domain(*id));
        println!("  {}.{} (t = {t:.2})", meta.table, meta.column);
    }
    assert!(hits.contains(&locations_id), "Locations must be found");
    println!("\nok: the joinable column was found.");
}
