//! The LSH Ensemble index (§5): size-partitioned, per-query-tuned dynamic
//! MinHash LSH for Jaccard-containment search.
//!
//! Construction is two-stage, exactly as the paper describes: domains are
//! partitioned by cardinality (§5.4), then each partition gets its own
//! dynamic LSH (LSH Forest, §5.5). A query is answered by every partition in
//! parallel with its own `(b, r)` configuration — chosen by minimising the
//! FP+FN mass for the partition's upper bound — and the per-partition
//! candidate sets are unioned (`Partitioned-Containment-Search`, §5.1).

use crate::api::{
    outcome_from_ids, CommitReport, DomainIndex, MutableIndex, MutationError, ProbeCounts, Query,
    QueryError, QueryMode, SearchOutcome,
};
use crate::partition::PartitionStrategy;
use crate::tuning::Tuner;
use lshe_lsh::{DomainId, LshForest};
use lshe_minhash::hash::{FastHashMap, FastHashSet};
use lshe_minhash::{MinHasher, Signature};

/// Configuration of an [`LshEnsemble`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnsembleConfig {
    /// Signature width `m` (Table 3 default: 256).
    pub num_perm: usize,
    /// Prefix trees per partition forest (`b_max`). Default 32.
    pub b_max: usize,
    /// Prefix depth per tree (`r_max`). Default 8. `b_max · r_max` must not
    /// exceed `num_perm`.
    pub r_max: usize,
    /// Partitioning strategy. Default: 32-way equi-depth (Theorem 2).
    pub strategy: PartitionStrategy,
}

impl Default for EnsembleConfig {
    fn default() -> Self {
        Self {
            num_perm: 256,
            b_max: 32,
            r_max: 8,
            strategy: PartitionStrategy::EquiDepth { n: 32 },
        }
    }
}

impl EnsembleConfig {
    fn validate(&self) {
        assert!(self.num_perm > 0, "need at least one hash function");
        assert!(
            self.b_max > 0 && self.r_max > 0,
            "forest dims must be positive"
        );
        assert!(
            self.b_max * self.r_max <= self.num_perm,
            "b_max·r_max = {} exceeds num_perm = {}",
            self.b_max * self.r_max,
            self.num_perm
        );
    }
}

/// Staged input for ensemble construction.
#[derive(Debug, Clone)]
pub struct LshEnsembleBuilder {
    config: EnsembleConfig,
    ids: Vec<DomainId>,
    sizes: Vec<u64>,
    signatures: Vec<Signature>,
}

impl LshEnsembleBuilder {
    /// Creates a builder with the given configuration.
    ///
    /// # Panics
    /// Panics on inconsistent configuration (zero dims, `b_max·r_max >
    /// num_perm`).
    #[must_use]
    pub fn new(config: EnsembleConfig) -> Self {
        config.validate();
        Self {
            config,
            ids: Vec::new(),
            sizes: Vec::new(),
            signatures: Vec::new(),
        }
    }

    /// Stages one domain: its id, exact cardinality, and MinHash signature.
    ///
    /// # Panics
    /// Panics if `size == 0` or the signature width differs from
    /// `num_perm`.
    pub fn add(&mut self, id: DomainId, size: u64, signature: Signature) {
        assert!(size > 0, "domain size must be positive");
        assert_eq!(
            signature.len(),
            self.config.num_perm,
            "signature width mismatch"
        );
        self.ids.push(id);
        self.sizes.push(size);
        self.signatures.push(signature);
    }

    /// Number of staged domains.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if nothing is staged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Partitions the staged domains and builds one committed LSH Forest per
    /// partition, in parallel (one thread per partition).
    ///
    /// # Panics
    /// Panics if the builder is empty.
    #[must_use]
    pub fn build(self) -> LshEnsemble {
        let sig_refs: Vec<&Signature> = self.signatures.iter().collect();
        LshEnsemble::build_from_parts(self.config, &self.ids, &self.sizes, &sig_refs)
    }
}

/// One size class and its dynamic LSH.
#[derive(Debug, Clone)]
pub(crate) struct EnsemblePartition {
    pub(crate) lower: u64,
    pub(crate) upper: u64,
    pub(crate) forest: LshForest,
}

/// Where a live domain id currently resides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// Base partition `idx`.
    Base(u32),
    /// Sealed segment `idx` (partition within is found by size).
    Seg(u32),
    /// The staged (uncommitted) delta.
    Staged,
}

/// Which tier held a removed id's rows. Removal of committed rows is a
/// tombstone: the rows stay in their forest until compaction, and queries
/// filter them out of the candidate union.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DeadSlot {
    /// The id's rows live in base partition `idx`.
    Base(u32),
    /// The id's entry lives in sealed segment `idx`.
    Seg(u32),
}

impl DeadSlot {
    fn matches(self, slot: Slot) -> bool {
        match (self, slot) {
            (Self::Base(a), Slot::Base(b)) => a == b,
            (Self::Seg(a), Slot::Seg(b)) => a == b,
            _ => false,
        }
    }
}

/// An immutable sub-index sealed from one committed delta: the delta's
/// domains, equi-depth-partitioned (by the configured strategy) over just
/// themselves, each partition carrying its own committed forest. The raw
/// entry triples are retained verbatim — they are the canonical byte form
/// (persistence re-encodes them bit for bit) and the compaction input
/// (folding a segment into the base re-routes each entry by size).
#[derive(Debug, Clone)]
pub(crate) struct SealedSegment {
    pub(crate) partitions: Vec<EnsemblePartition>,
    pub(crate) entries: Vec<(DomainId, u64, Signature)>,
}

/// The staged (uncommitted) delta: one forest holding every staged
/// insert, swept as a pseudo-partition whose bounds track the staged
/// sizes. `commit` seals it into a [`SealedSegment`] in O(delta).
#[derive(Debug, Clone)]
struct StagedDelta {
    part: EnsemblePartition,
    entries: Vec<(DomainId, u64, Signature)>,
}

impl StagedDelta {
    fn new(b_max: usize, r_max: usize) -> Self {
        Self {
            part: EnsemblePartition {
                lower: 0,
                upper: 0,
                forest: LshForest::new(b_max, r_max),
            },
            entries: Vec::new(),
        }
    }
}

/// Builds one sealed segment from a committed delta: partition the entry
/// sizes with the configured strategy, then build each partition's forest.
/// Deterministic — the persistence decoder replays it to reconstruct a
/// segment from its stored entries.
pub(crate) fn build_segment(
    config: &EnsembleConfig,
    entries: Vec<(DomainId, u64, Signature)>,
) -> SealedSegment {
    debug_assert!(!entries.is_empty(), "cannot seal an empty delta");
    let sizes: Vec<u64> = entries.iter().map(|e| e.1).collect();
    let partitioning = config.strategy.partition(&sizes);
    let partitions = partitioning
        .parts()
        .iter()
        .map(|p| {
            let mut forest = LshForest::new(config.b_max, config.r_max);
            for &m in &p.members {
                let (id, _, sig) = &entries[m as usize];
                forest.insert(*id, sig);
            }
            forest.commit();
            EnsemblePartition {
                lower: p.lower,
                upper: p.upper,
                forest,
            }
        })
        .collect();
    SealedSegment {
        partitions,
        entries,
    }
}

/// Summary of one partition, for diagnostics and the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionStats {
    /// Smallest member size.
    pub lower: u64,
    /// Largest member size (conversion upper bound `u`).
    pub upper: u64,
    /// Number of indexed domains.
    pub count: usize,
}

/// The LSH Ensemble index.
///
/// Mutation is tiered, LSM-style: inserts stage into a delta buffer,
/// [`commit`](Self::commit) seals the delta into an immutable
/// sealed segment in O(delta), removes of committed rows become
/// tombstones filtered out of every candidate union, and
/// [`compact`](Self::compact) folds segments and tombstones back into the
/// base partitions — the only O(corpus) step, and the only one a serving
/// commit path never runs.
#[derive(Debug)]
pub struct LshEnsemble {
    config: EnsembleConfig,
    partitions: Vec<EnsemblePartition>,
    /// Sealed deltas, oldest first; queries sweep them after the base.
    segments: Vec<SealedSegment>,
    /// The staged (uncommitted) delta.
    staged: StagedDelta,
    /// Tombstones, in removal order: ids whose rows are still physically
    /// present in a base or segment forest. Cleared by compaction.
    dead: Vec<(DomainId, DeadSlot)>,
    tuner: Tuner,
    len: usize,
    /// id → residence, for O(1) duplicate detection, removal routing, and
    /// tombstone filtering. Rebuilt on decode; never persisted.
    ids: FastHashMap<DomainId, Slot>,
}

impl Clone for LshEnsemble {
    /// Clones the index. The tuner's memo table is a cache and starts
    /// empty in the clone (it refills lazily).
    fn clone(&self) -> Self {
        Self {
            config: self.config,
            partitions: self.partitions.clone(),
            segments: self.segments.clone(),
            staged: self.staged.clone(),
            dead: self.dead.clone(),
            tuner: Tuner::new(self.config.b_max as u32, self.config.r_max as u32),
            len: self.len,
            ids: self.ids.clone(),
        }
    }
}

impl LshEnsemble {
    /// A builder with the default configuration (m = 256, 32 × 8 forest,
    /// 32-way equi-depth).
    #[must_use]
    pub fn builder() -> LshEnsembleBuilder {
        LshEnsembleBuilder::new(EnsembleConfig::default())
    }

    /// A builder with an explicit configuration.
    #[must_use]
    pub fn builder_with(config: EnsembleConfig) -> LshEnsembleBuilder {
        LshEnsembleBuilder::new(config)
    }

    /// Zero-copy construction from parallel arrays of ids, sizes, and
    /// *borrowed* signatures. This is the bulk-load path the experiment
    /// harness uses at corpus scale — signatures stay owned by the caller
    /// (typically one shared `Vec<Signature>`) and are never cloned.
    ///
    /// # Panics
    /// Panics if the arrays are empty or their lengths differ, on invalid
    /// configuration, or on zero sizes / width mismatches.
    #[must_use]
    pub fn build_from_parts(
        config: EnsembleConfig,
        ids: &[DomainId],
        sizes: &[u64],
        signatures: &[&Signature],
    ) -> Self {
        config.validate();
        assert!(!ids.is_empty(), "cannot build an empty ensemble");
        assert!(
            ids.len() == sizes.len() && ids.len() == signatures.len(),
            "parallel arrays must have equal lengths"
        );
        for (size, sig) in sizes.iter().zip(signatures) {
            assert!(*size > 0, "domain size must be positive");
            assert_eq!(sig.len(), config.num_perm, "signature width mismatch");
        }
        let partitioning = config.strategy.partition(sizes);
        let (b_max, r_max) = (config.b_max, config.r_max);
        let mut id_map: FastHashMap<DomainId, Slot> = FastHashMap::default();
        id_map.reserve(ids.len());
        for (pidx, part) in partitioning.parts().iter().enumerate() {
            for &member in &part.members {
                let prev = id_map.insert(ids[member as usize], Slot::Base(pidx as u32));
                assert!(
                    prev.is_none(),
                    "duplicate domain id {}",
                    ids[member as usize]
                );
            }
        }
        let mut shells: Vec<EnsemblePartition> = partitioning
            .parts()
            .iter()
            .map(|p| EnsemblePartition {
                lower: p.lower,
                upper: p.upper,
                forest: LshForest::new(b_max, r_max),
            })
            .collect();
        std::thread::scope(|scope| {
            for (shell, part) in shells.iter_mut().zip(partitioning.parts()) {
                scope.spawn(move || {
                    for &idx in &part.members {
                        shell
                            .forest
                            .insert(ids[idx as usize], signatures[idx as usize]);
                    }
                    shell.forest.commit();
                });
            }
        });
        Self {
            tuner: Tuner::new(config.b_max as u32, config.r_max as u32),
            partitions: shells,
            segments: Vec::new(),
            staged: StagedDelta::new(b_max, r_max),
            dead: Vec::new(),
            config,
            len: ids.len(),
            ids: id_map,
        }
    }

    /// Convenience: the matching [`MinHasher`] for this ensemble's
    /// signature width, using the workspace default seed.
    #[must_use]
    pub fn default_hasher(&self) -> MinHasher {
        MinHasher::new(self.config.num_perm)
    }

    /// The configuration the ensemble was built with.
    #[must_use]
    pub fn config(&self) -> &EnsembleConfig {
        &self.config
    }

    /// Number of indexed domains.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the ensemble indexes nothing (cannot occur via `build`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Live entries in the id → slot map (decoder cross-check).
    pub(crate) fn id_count(&self) -> usize {
        self.ids.len()
    }

    /// Smallest id that is safely allocatable from this ensemble's view:
    /// one past the largest id it still knows about, *including*
    /// tombstoned ids (whose rows persist until compaction). Callers that
    /// track an allocator high-water mark across compactions should prefer
    /// their own persisted mark — compaction erases tombstones, so this
    /// floor can shrink afterwards.
    #[must_use]
    pub fn min_next_id(&self) -> u32 {
        let live = self.ids.keys().copied().max();
        let dead = self.dead.iter().map(|&(id, _)| id).max();
        match (live, dead) {
            (Some(a), Some(b)) => a.max(b) + 1,
            (Some(a), None) | (None, Some(a)) => a + 1,
            (None, None) => 0,
        }
    }

    /// Number of base partitions (sealed segments carry their own).
    #[must_use]
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Per-partition summaries: base partitions first, then each sealed
    /// segment's partitions (oldest segment first), then — when inserts
    /// are staged — one pseudo-partition covering the staged delta.
    /// Counts are physical rows, so tombstoned domains still count until
    /// compaction.
    #[must_use]
    pub fn partition_stats(&self) -> Vec<PartitionStats> {
        let part = |p: &EnsemblePartition| PartitionStats {
            lower: p.lower,
            upper: p.upper,
            count: p.forest.len(),
        };
        let mut stats: Vec<PartitionStats> = self.partitions.iter().map(part).collect();
        for seg in &self.segments {
            stats.extend(seg.partitions.iter().map(part));
        }
        if !self.staged.entries.is_empty() {
            stats.push(PartitionStats {
                lower: self.staged.part.lower,
                upper: self.staged.part.upper,
                count: self.staged.entries.len(),
            });
        }
        stats
    }

    /// Stats for the BASE partitions only — the population a drift check
    /// must judge. Segment and staged tiers are transient by design
    /// (compaction folds them), so counting their small partitions into a
    /// skew metric would let a stack of sealed segments masquerade as
    /// drift and drag an O(corpus) rebuild back onto the commit path.
    #[must_use]
    pub fn base_partition_stats(&self) -> Vec<PartitionStats> {
        self.partitions
            .iter()
            .map(|p| PartitionStats {
                lower: p.lower,
                upper: p.upper,
                count: p.forest.len(),
            })
            .collect()
    }

    /// Segment-tier summary: sealed segments outstanding and tombstoned
    /// ids awaiting compaction.
    #[must_use]
    pub fn segment_stats(&self) -> crate::api::SegmentStats {
        crate::api::SegmentStats {
            segments: self.segments.len(),
            tombstones: self.dead.len(),
        }
    }

    /// Approximate heap memory of all forests and retained segment
    /// entries, in bytes.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        let entry_bytes = |entries: &[(DomainId, u64, Signature)]| {
            std::mem::size_of_val(entries)
                + entries.len() * self.config.num_perm * std::mem::size_of::<u64>()
        };
        let base: usize = self
            .partitions
            .iter()
            .map(|p| p.forest.memory_bytes())
            .sum();
        let segs: usize = self
            .segments
            .iter()
            .map(|s| {
                s.partitions
                    .iter()
                    .map(|p| p.forest.memory_bytes())
                    .sum::<usize>()
                    + entry_bytes(&s.entries)
            })
            .sum();
        base + segs + self.staged.part.forest.memory_bytes() + entry_bytes(&self.staged.entries)
    }

    /// Every sweepable query unit, in stats order: base partitions, each
    /// sealed segment's partitions, then the staged pseudo-partition when
    /// inserts are staged.
    fn sweep_units(&self) -> Vec<&EnsemblePartition> {
        let mut units: Vec<&EnsemblePartition> = Vec::with_capacity(
            self.partitions.len()
                + self
                    .segments
                    .iter()
                    .map(|s| s.partitions.len())
                    .sum::<usize>()
                + 1,
        );
        units.extend(self.partitions.iter());
        for seg in &self.segments {
            units.extend(seg.partitions.iter());
        }
        if !self.staged.entries.is_empty() {
            units.push(&self.staged.part);
        }
        units
    }

    /// Containment search (Algorithm 1 + `Partitioned-Containment-Search`):
    /// returns ids of candidate domains `X` with `t(Q, X) ⪆ t_star`, the
    /// query size being estimated from the signature (`approx(|Q|)`, §5.1).
    #[must_use]
    pub fn query(&self, signature: &Signature, t_star: f64) -> Vec<DomainId> {
        let q = signature.cardinality().round().max(1.0) as u64;
        self.query_with_size(signature, q, t_star)
    }

    /// Containment search with a caller-supplied exact query size.
    ///
    /// Partitions are consulted sequentially; see
    /// [`query_parallel`](Self::query_parallel) for the threaded variant the
    /// paper's deployment uses.
    ///
    /// # Panics
    /// Panics if `query_size == 0`, the threshold is out of range, or the
    /// signature width differs from the configuration.
    #[must_use]
    pub fn query_with_size(
        &self,
        signature: &Signature,
        query_size: u64,
        t_star: f64,
    ) -> Vec<DomainId> {
        self.query_counted(signature, query_size, t_star, false).0
    }

    /// Containment search with partitions probed across budget-governed
    /// worker lanes (`lshe_minhash::lanes`); results are unioned.
    /// Semantically identical to
    /// [`query_with_size`](Self::query_with_size) — with no spare cores
    /// the lane budget yields nothing and the probe runs inline.
    ///
    /// # Panics
    /// As [`query_with_size`](Self::query_with_size).
    #[must_use]
    pub fn query_parallel(
        &self,
        signature: &Signature,
        query_size: u64,
        t_star: f64,
    ) -> Vec<DomainId> {
        self.query_counted(signature, query_size, t_star, true).0
    }

    /// Instrumented containment search: the sorted-unique candidate ids
    /// plus probe counters (partitions consulted, raw candidates before
    /// dedup). Every public query path funnels through here.
    pub(crate) fn query_counted(
        &self,
        signature: &Signature,
        query_size: u64,
        t_star: f64,
        parallel: bool,
    ) -> (Vec<DomainId>, ProbeCounts) {
        self.check_query(signature, query_size, t_star);
        let units = self.sweep_units();
        let mut probe = ProbeCounts {
            probed: 0,
            total: units.len(),
            candidates: 0,
        };
        let mut out = FastHashSet::default();
        if parallel {
            // Sweep units are chunked across lanes drawn from the
            // process-wide budget (`lshe_minhash::lanes`), not one thread
            // per partition: on a single-core or saturated host the budget
            // yields zero extras and the probe runs inline, identical to
            // the sequential path — fan-out cost is only ever paid when
            // there are cores to absorb it.
            let buffers: Vec<(Vec<DomainId>, bool)> =
                lshe_minhash::lanes::run_chunked(&units, |chunk| {
                    chunk
                        .iter()
                        .map(|&p| {
                            let mut buf = Vec::new();
                            let probed =
                                self.query_partition(p, signature, query_size, t_star, &mut buf);
                            (buf, probed)
                        })
                        .collect()
                });
            for (buf, probed) in buffers {
                probe.probed += usize::from(probed);
                probe.candidates += buf.len();
                out.extend(buf);
            }
        } else {
            let mut buf = Vec::new();
            for &p in &units {
                let before = buf.len();
                let probed = self.query_partition(p, signature, query_size, t_star, &mut buf);
                probe.probed += usize::from(probed);
                probe.candidates += buf.len() - before;
            }
            out.extend(buf);
        }
        let mut v: Vec<DomainId> = out.into_iter().collect();
        v.sort_unstable();
        (v, probe)
    }

    fn check_query(&self, signature: &Signature, query_size: u64, t_star: f64) {
        assert!(query_size > 0, "query size must be positive");
        assert!(
            (0.0..=1.0).contains(&t_star),
            "containment threshold must be in [0, 1]"
        );
        assert_eq!(
            signature.len(),
            self.config.num_perm,
            "signature width mismatch"
        );
    }

    /// Queries one partition into `out`; returns whether the partition was
    /// actually consulted (false = skip-pruned). Tombstoned ids — rows
    /// physically present but removed — are filtered out of the appended
    /// candidates.
    fn query_partition(
        &self,
        p: &EnsemblePartition,
        signature: &Signature,
        query_size: u64,
        t_star: f64,
        out: &mut Vec<DomainId>,
    ) -> bool {
        // A domain's containment cannot exceed x/q ≤ upper/q: partitions
        // that cannot reach the threshold are skipped outright.
        if (p.upper as f64) < t_star * query_size as f64 {
            return false;
        }
        let params = self.tuner.optimize(p.upper, query_size, t_star);
        let before = out.len();
        p.forest
            .query_into(signature, params.b as usize, params.r as usize, out);
        if !self.dead.is_empty() {
            // Live ids are exactly the id-map keys; a candidate absent
            // from it is a tombstoned row awaiting compaction.
            let mut w = before;
            for i in before..out.len() {
                if self.ids.contains_key(&out[i]) {
                    out[w] = out[i];
                    w += 1;
                }
            }
            out.truncate(w);
        }
        true
    }

    /// Queries swept together per partition-outer pass: large enough to
    /// amortize partition/forest locality, small enough to bound the raw
    /// candidate memory held at once (see
    /// [`batch_sweep_chunk`](Self::batch_sweep_chunk)).
    pub(crate) const SWEEP_GROUP: usize = 32;

    /// Batched instrumented containment search, partition-outer: the
    /// partition loop runs once per group of queries, every query probes
    /// a partition while its forest is hot, and one dedup scratch set
    /// serves the whole chunk. Per query the answer is identical to
    /// [`query_counted`](Self::query_counted) — same sorted-unique ids,
    /// same probe counters — only the wall attribution differs.
    ///
    /// The chunk is swept in groups of [`Self::SWEEP_GROUP`] queries so
    /// peak memory holds at most one group's *raw* (pre-dedup) candidate
    /// unions, never the whole batch's — a low-threshold query can make
    /// every partition contribute near the full corpus, and thousands of
    /// such accumulators at once would be an OOM vector on the server.
    ///
    /// `post` runs inside the worker lane right after a query's dedup, so
    /// per-query post-processing (ranking, outcome assembly) shares the
    /// batch's thread fan-out instead of re-spawning.
    pub(crate) fn batch_sweep_chunk<R>(
        &self,
        chunk: &[crate::batch::ThresholdItem<'_>],
        post: &(impl Fn(&crate::batch::ThresholdItem<'_>, Vec<DomainId>, ProbeCounts, u64) -> R + Sync),
    ) -> Vec<R> {
        use std::time::Instant;
        let units = self.sweep_units();
        let mut buf: Vec<DomainId> = Vec::new();
        let mut set: FastHashSet<DomainId> = FastHashSet::default();
        let mut results = Vec::with_capacity(chunk.len());
        for group in chunk.chunks(Self::SWEEP_GROUP) {
            // Per-query accumulators: raw candidates, probes, nanos.
            let mut acc: Vec<(Vec<DomainId>, ProbeCounts, u64)> = group
                .iter()
                .map(|_| {
                    (
                        Vec::new(),
                        ProbeCounts {
                            probed: 0,
                            total: units.len(),
                            candidates: 0,
                        },
                        0u64,
                    )
                })
                .collect();
            for &p in &units {
                for (item, out) in group.iter().zip(acc.iter_mut()) {
                    let started = Instant::now();
                    buf.clear();
                    let probed =
                        self.query_partition(p, item.signature, item.size, item.t_star, &mut buf);
                    out.1.probed += usize::from(probed);
                    out.1.candidates += buf.len();
                    out.0.extend_from_slice(&buf);
                    out.2 += started.elapsed().as_nanos() as u64;
                }
            }
            // Dedup + sort each query's union through the reused scratch.
            results.extend(
                group
                    .iter()
                    .zip(acc)
                    .map(|(item, (mut raw, probe, mut nanos))| {
                        let started = Instant::now();
                        set.extend(raw.drain(..));
                        raw.extend(set.drain());
                        raw.sort_unstable();
                        nanos += started.elapsed().as_nanos() as u64;
                        post(item, raw, probe, nanos)
                    }),
            );
        }
        results
    }

    /// [`batch_sweep_chunk`](Self::batch_sweep_chunk) fanned across worker
    /// lanes — the lanes are spawned once for the whole batch.
    pub(crate) fn batch_threshold_map<R: Send>(
        &self,
        items: &[crate::batch::ThresholdItem<'_>],
        post: impl Fn(&crate::batch::ThresholdItem<'_>, Vec<DomainId>, ProbeCounts, u64) -> R + Sync,
    ) -> Vec<R> {
        crate::batch::chunked(items, |chunk| self.batch_sweep_chunk(chunk, &post))
    }

    /// Inserts a new domain after construction (§6.2 dynamic data): the
    /// domain is routed to the partition covering its size — growing the
    /// boundary partitions when the size falls outside every range, which
    /// keeps threshold conversion conservative (`u` only ever grows).
    ///
    /// The insert is immediately queryable; call [`commit`](Self::commit)
    /// periodically to fold staged inserts into the sorted runs.
    ///
    /// # Panics
    /// Panics if `size == 0`, the signature width differs from the
    /// configuration, or the id is already indexed. Use
    /// [`try_insert`](Self::try_insert) for typed errors.
    pub fn insert(&mut self, id: DomainId, size: u64, signature: &Signature) {
        self.try_insert(id, size, signature)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Typed [`insert`](Self::insert): stages one new domain.
    ///
    /// # Errors
    /// [`MutationError::DuplicateId`] if the id is already indexed,
    /// [`MutationError::Invalid`] on a zero size or width mismatch.
    pub fn try_insert(
        &mut self,
        id: DomainId,
        size: u64,
        signature: &Signature,
    ) -> Result<(), MutationError> {
        if size == 0 {
            return Err(MutationError::Invalid(
                "domain size must be positive".into(),
            ));
        }
        if signature.len() != self.config.num_perm {
            return Err(MutationError::Invalid(format!(
                "signature width mismatch: domain has {}, index expects {}",
                signature.len(),
                self.config.num_perm
            )));
        }
        if self.ids.contains_key(&id) {
            return Err(MutationError::DuplicateId(id));
        }
        if self.staged.entries.is_empty() {
            self.staged.part.lower = size;
            self.staged.part.upper = size;
        } else {
            self.staged.part.lower = self.staged.part.lower.min(size);
            self.staged.part.upper = self.staged.part.upper.max(size);
        }
        self.staged.part.forest.insert(id, signature);
        self.staged.entries.push((id, size, signature.clone()));
        self.ids.insert(id, Slot::Staged);
        self.len += 1;
        Ok(())
    }

    /// Removes one domain. Takes effect immediately for queries: a staged
    /// id is dropped from the delta buffer physically, while an id living
    /// in the base or in a sealed segment becomes a tombstone that is
    /// filtered out of every candidate set until
    /// [`compact`](Self::compact) erases the underlying rows. Partition
    /// bounds are left as-is — a too-wide upper bound only makes threshold
    /// conversion *more* conservative, never less correct.
    ///
    /// # Errors
    /// [`MutationError::UnknownId`] if the id is not indexed.
    pub fn try_remove(&mut self, id: DomainId) -> Result<(), MutationError> {
        let Some(slot) = self.ids.get(&id).copied() else {
            return Err(MutationError::UnknownId(id));
        };
        match slot {
            Slot::Staged => {
                let removed = self.staged.part.forest.remove(id);
                debug_assert!(removed, "id map pointed at a staged delta without the id");
                self.staged.entries.retain(|e| e.0 != id);
                if self.staged.entries.is_empty() {
                    // Drop the stale forest + bounds along with the last entry.
                    self.staged = StagedDelta::new(self.config.b_max, self.config.r_max);
                }
            }
            Slot::Base(p) => self.dead.push((id, DeadSlot::Base(p))),
            Slot::Seg(s) => self.dead.push((id, DeadSlot::Seg(s))),
        }
        self.ids.remove(&id);
        self.len -= 1;
        Ok(())
    }

    /// True if `id` is currently indexed.
    #[must_use]
    pub fn contains(&self, id: DomainId) -> bool {
        self.ids.contains_key(&id)
    }

    /// Number of staged (inserted but not yet sealed) domains.
    #[must_use]
    pub fn staged_len(&self) -> usize {
        self.staged.entries.len()
    }

    /// Seals the staged delta into an immutable segment (LSM-style tiering):
    /// the delta is equi-depth-partitioned on its own and pushed onto the
    /// segment stack, so the cost is O(staged delta), never O(corpus).
    /// Returns `true` if a segment was sealed (`false` on an empty delta).
    pub fn commit(&mut self) -> bool {
        if self.staged.entries.is_empty() {
            return false;
        }
        let staged = std::mem::replace(
            &mut self.staged,
            StagedDelta::new(self.config.b_max, self.config.r_max),
        );
        let seg = self.segments.len() as u32;
        for (id, _, _) in &staged.entries {
            self.ids.insert(*id, Slot::Seg(seg));
        }
        self.segments
            .push(build_segment(&self.config, staged.entries));
        true
    }

    /// Per-segment physical entry counts plus tombstone backlog — the
    /// tier layout a [`crate::MergePolicy`] plans against.
    #[must_use]
    pub fn segment_layout(&self) -> crate::SegmentLayout {
        crate::SegmentLayout {
            segments: self.segments.iter().map(|s| s.entries.len()).collect(),
            tombstones: self.dead.len(),
            len: self.len,
        }
    }

    /// Folds the listed sealed segments (indices into the current stack)
    /// into one new segment pushed at the top — the leveled-merge
    /// primitive. Only live entries of the folded segments are rewritten,
    /// so the cost is O(folded entries), never O(corpus): the base
    /// partitions and every other segment are untouched. Tombstones whose
    /// rows lived in a folded segment are purged along with the rows.
    /// Returns the number of live entries folded.
    ///
    /// The merged segment lands at the *top* of the stack. That ordering
    /// is load-bearing for persistence: the decoder resolves an id that
    /// appears in several segments to the newest one, and a live entry
    /// always outranks the stale copies a remove + re-insert left behind
    /// in older segments.
    ///
    /// Out-of-range and duplicate indices are ignored; folding fewer than
    /// one segment is a no-op.
    pub fn merge_segments(&mut self, segment_indices: &[usize]) -> usize {
        let mut merge: Vec<usize> = segment_indices
            .iter()
            .copied()
            .filter(|&j| j < self.segments.len())
            .collect();
        merge.sort_unstable();
        merge.dedup();
        if merge.is_empty() {
            return 0;
        }
        let old = std::mem::take(&mut self.segments);
        let merged: Vec<bool> = (0..old.len()).map(|j| merge.contains(&j)).collect();
        let kept_count = old.len() - merge.len();
        let new_segment_index = kept_count as u32;

        // Collect the live entries of the folded segments and compute the
        // old → new index of every kept segment, matching every id-map
        // update against the *old* slot value and applying them only at
        // the end — an in-place update could alias a slot another
        // segment's pass is still matching against.
        let mut live: Vec<(DomainId, u64, Signature)> = Vec::new();
        let mut remap: Vec<u32> = Vec::with_capacity(old.len());
        let mut moves: Vec<(DomainId, Slot)> = Vec::new();
        let mut next_new = 0u32;
        for (j, seg) in old.iter().enumerate() {
            let old_slot = Slot::Seg(j as u32);
            if merged[j] {
                remap.push(new_segment_index);
                for (id, size, sig) in &seg.entries {
                    // Retained entries are live only while the id map
                    // still points here — removed or re-inserted ids
                    // moved on and their stale rows are dropped now.
                    if self.ids.get(id) == Some(&old_slot) {
                        live.push((*id, *size, sig.clone()));
                        moves.push((*id, Slot::Seg(new_segment_index)));
                    }
                }
            } else {
                remap.push(next_new);
                if next_new as usize != j {
                    for (id, _, _) in &seg.entries {
                        if self.ids.get(id) == Some(&old_slot) {
                            moves.push((*id, Slot::Seg(next_new)));
                        }
                    }
                }
                next_new += 1;
            }
        }
        for (id, slot) in moves {
            self.ids.insert(id, slot);
        }
        // Tombstones into folded segments are purged with their rows;
        // tombstones into kept segments follow the renumbering.
        self.dead.retain_mut(|(_, slot)| match slot {
            DeadSlot::Seg(j) => {
                if merged[*j as usize] {
                    false
                } else {
                    *slot = DeadSlot::Seg(remap[*j as usize]);
                    true
                }
            }
            DeadSlot::Base(_) => true,
        });
        self.segments = old
            .into_iter()
            .enumerate()
            .filter(|(j, _)| !merged[*j])
            .map(|(_, seg)| seg)
            .collect();
        let folded = live.len();
        if !live.is_empty() {
            self.segments.push(build_segment(&self.config, live));
        }
        folded
    }

    /// Folds every sealed segment back into the base and erases tombstoned
    /// rows — the only O(corpus) mutation step, intended to run off the
    /// commit path (background maintenance thread, `lshe compact`). Live
    /// segment entries are routed to the base partition covering their
    /// size with conservative boundary growth, exactly as a pre-segment
    /// insert was.
    pub fn compact(&mut self) {
        if self.segments.is_empty() && self.dead.is_empty() {
            return;
        }
        let mut touched = vec![false; self.partitions.len()];
        for &(id, slot) in &self.dead {
            if let DeadSlot::Base(p) = slot {
                let removed = self.partitions[p as usize].forest.remove(id);
                debug_assert!(
                    removed,
                    "tombstone pointed at a base partition without the id"
                );
                touched[p as usize] = true;
            }
        }
        self.dead.clear();
        let segments = std::mem::take(&mut self.segments);
        for (j, seg) in segments.into_iter().enumerate() {
            for (id, size, sig) in seg.entries {
                // A retained entry is live only while the id map still points
                // at this segment — removed or re-inserted ids moved on.
                if self.ids.get(&id) != Some(&Slot::Seg(j as u32)) {
                    continue;
                }
                if self.partitions.is_empty() {
                    // Base built from an empty corpus: grow one partition
                    // from scratch; min/max below fix the inverted bounds.
                    self.partitions.push(EnsemblePartition {
                        lower: u64::MAX,
                        upper: 0,
                        forest: LshForest::new(self.config.b_max, self.config.r_max),
                    });
                    touched.push(false);
                }
                let idx = self
                    .partitions
                    .iter()
                    .position(|p| size <= p.upper)
                    .unwrap_or(self.partitions.len() - 1);
                let p = &mut self.partitions[idx];
                p.upper = p.upper.max(size);
                p.lower = p.lower.min(size);
                p.forest.insert(id, &sig);
                touched[idx] = true;
                self.ids.insert(id, Slot::Base(idx as u32));
            }
        }
        for (idx, t) in touched.into_iter().enumerate() {
            if t {
                self.partitions[idx].forest.commit();
            }
        }
    }

    /// Partition internals for persistence: (lower, upper, forest).
    pub(crate) fn raw_partitions(&self) -> Vec<(u64, u64, &LshForest)> {
        self.partitions
            .iter()
            .map(|p| (p.lower, p.upper, &p.forest))
            .collect()
    }

    /// Sealed segments, for persistence (the retained entry triples are the
    /// canonical byte-level form; partitions are replayed from them).
    pub(crate) fn raw_segments(&self) -> &[SealedSegment] {
        &self.segments
    }

    /// Tombstones in insertion order, for persistence.
    pub(crate) fn raw_dead(&self) -> &[(DomainId, DeadSlot)] {
        &self.dead
    }

    /// Rebuilds an ensemble from persisted parts. The decoder is
    /// responsible for structural validation; the id → slot map is
    /// rederived from the base forests, then overridden by segment entries
    /// (later segments win — a re-inserted id lives in the newest one),
    /// and finally tombstones erase the ids whose slot they still match.
    pub(crate) fn from_raw_partitions(
        config: EnsembleConfig,
        partitions: Vec<(u64, u64, LshForest)>,
        len: usize,
        segment_entries: Vec<Vec<(DomainId, u64, Signature)>>,
        dead: Vec<(DomainId, DeadSlot)>,
    ) -> Self {
        let mut ids: FastHashMap<DomainId, Slot> = FastHashMap::default();
        ids.reserve(len);
        for (pidx, (_, _, forest)) in partitions.iter().enumerate() {
            for id in forest.ids() {
                ids.insert(id, Slot::Base(pidx as u32));
            }
        }
        let segments: Vec<SealedSegment> = segment_entries
            .into_iter()
            .enumerate()
            .map(|(j, entries)| {
                for (id, _, _) in &entries {
                    ids.insert(*id, Slot::Seg(j as u32));
                }
                build_segment(&config, entries)
            })
            .collect();
        for &(id, dslot) in &dead {
            if ids.get(&id).is_some_and(|&slot| dslot.matches(slot)) {
                ids.remove(&id);
            }
        }
        Self {
            tuner: Tuner::new(config.b_max as u32, config.r_max as u32),
            segments,
            staged: StagedDelta::new(config.b_max, config.r_max),
            dead,
            config,
            partitions: partitions
                .into_iter()
                .map(|(lower, upper, forest)| EnsemblePartition {
                    lower,
                    upper,
                    forest,
                })
                .collect(),
            len,
            ids,
        }
    }
}

impl MutableIndex for LshEnsemble {
    fn insert(
        &mut self,
        id: DomainId,
        size: u64,
        signature: &Signature,
    ) -> Result<(), MutationError> {
        self.try_insert(id, size, signature)
    }

    fn remove(&mut self, id: DomainId) -> Result<(), MutationError> {
        self.try_remove(id)
    }

    fn commit(&mut self) -> CommitReport {
        let merged = self.staged_len();
        let sealed = LshEnsemble::commit(self);
        // No retained sketches → no rebalance; boundary growth stays
        // conservative (§6.2) until a caller rebuilds from source data.
        CommitReport {
            merged,
            rebalanced: false,
            sealed,
            segments: self.segments.len(),
            tombstones: self.dead.len(),
        }
    }

    fn compact(&mut self) -> CommitReport {
        let merged = self.staged_len();
        let sealed = LshEnsemble::commit(self);
        LshEnsemble::compact(self);
        CommitReport {
            merged,
            rebalanced: false,
            sealed,
            segments: 0,
            tombstones: 0,
        }
    }

    fn staged_len(&self) -> usize {
        LshEnsemble::staged_len(self)
    }

    fn segment_stats(&self) -> crate::api::SegmentStats {
        LshEnsemble::segment_stats(self)
    }

    fn segment_layout(&self) -> crate::SegmentLayout {
        LshEnsemble::segment_layout(self)
    }

    fn apply_merge(&mut self, task: &crate::MergeTask) -> crate::MergeOutcome {
        let entries_folded = match task {
            crate::MergeTask::Merge(idxs) => self.merge_segments(idxs),
            crate::MergeTask::Full => {
                let folded: usize = self.segments.iter().map(|s| s.entries.len()).sum::<usize>()
                    + self.staged.entries.len();
                LshEnsemble::commit(self);
                LshEnsemble::compact(self);
                folded
            }
        };
        let stats = LshEnsemble::segment_stats(self);
        crate::MergeOutcome {
            entries_folded,
            segments: stats.segments,
            tombstones: stats.tombstones,
        }
    }
}

impl DomainIndex for LshEnsemble {
    fn search(&self, query: &Query<'_>) -> Result<SearchOutcome, QueryError> {
        query.validate_for(self.config.num_perm)?;
        let QueryMode::Threshold(t_star) = query.mode() else {
            return Err(QueryError::Unsupported(
                "top-k needs retained sketches; build a RankedIndex (or re-index with --ranked)"
                    .into(),
            ));
        };
        let started = std::time::Instant::now();
        let (ids, probe) = self.query_counted(
            query.signature(),
            query.effective_size(),
            t_star,
            query.parallel(),
        );
        Ok(outcome_from_ids(ids, probe, started))
    }

    fn search_batch(&self, queries: &[Query<'_>]) -> Vec<Result<SearchOutcome, QueryError>> {
        crate::batch::split_and_run(
            queries,
            self.config.num_perm,
            |items| {
                self.batch_threshold_map(items, |_, ids, probe, nanos| {
                    crate::api::outcome_from_ids_timed(ids, probe, nanos)
                })
            },
            |_, _| {
                Err(QueryError::Unsupported(
                    "top-k needs retained sketches; build a RankedIndex (or re-index with --ranked)"
                        .into(),
                ))
            },
        )
    }

    fn len(&self) -> usize {
        self.len
    }

    fn memory_bytes(&self) -> usize {
        LshEnsemble::memory_bytes(self)
    }

    fn describe(&self) -> String {
        match self.config.strategy {
            PartitionStrategy::Single => "MinHash LSH (baseline)".to_owned(),
            PartitionStrategy::EquiDepth { n } => format!("LSH Ensemble ({n})"),
            PartitionStrategy::EquiWidth { n } => format!("LSH Ensemble equi-width ({n})"),
            PartitionStrategy::Morph { n, lambda } => {
                format!("LSH Ensemble morph ({n}, λ={lambda:.2})")
            }
            PartitionStrategy::EquiFp { n } => format!("LSH Ensemble equi-FP ({n})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshe_minhash::MinHasher;

    /// Builds a small corpus of nested domains: domain k holds the first
    /// 10·(k+1) values of a shared pool, so containment relations are known
    /// exactly.
    #[allow(clippy::type_complexity)]
    fn nested_corpus(m: usize, n: usize) -> (MinHasher, Vec<(DomainId, u64, Signature, Vec<u64>)>) {
        let h = MinHasher::new(m);
        let pool = MinHasher::synthetic_values(42, 10 * n);
        let mut out = Vec::new();
        for k in 0..n {
            let vals: Vec<u64> = pool[..10 * (k + 1)].to_vec();
            let sig = h.signature(vals.iter().copied());
            out.push((k as DomainId, vals.len() as u64, sig, vals));
        }
        (h, out)
    }

    fn build_default(
        entries: &[(DomainId, u64, Signature, Vec<u64>)],
        n_parts: usize,
    ) -> LshEnsemble {
        let mut b = LshEnsemble::builder_with(EnsembleConfig {
            strategy: PartitionStrategy::EquiDepth { n: n_parts },
            ..EnsembleConfig::default()
        });
        for (id, size, sig, _) in entries {
            b.add(*id, *size, sig.clone());
        }
        b.build()
    }

    #[test]
    fn finds_perfect_containers() {
        let (h, entries) = nested_corpus(256, 30);
        let ens = build_default(&entries, 8);
        // Query = domain 4 (50 values); every domain k ≥ 4 contains it
        // fully. LSH recall is probabilistic and — as the paper's own
        // small-query experiment (Figure 7) shows — degrades for domains
        // far larger than the query, where the reachable Jaccard range
        // compresses toward zero. Require the self-match plus a majority of
        // the size-comparable containers (x/q ≤ 3).
        let (_, size, sig, _) = &entries[4];
        let got = ens.query_with_size(sig, *size, 0.5);
        assert!(got.contains(&4), "exact self-match must always be found");
        let comparable: Vec<u32> = (4..15u32).collect(); // sizes 50..150
        let found = comparable.iter().filter(|k| got.contains(k)).count();
        assert!(
            found * 10 >= comparable.len() * 6,
            "only {found}/{} comparable containers found: {got:?}",
            comparable.len()
        );
        let _ = h;
    }

    #[test]
    fn respects_threshold_lower_bound() {
        let (_, entries) = nested_corpus(256, 30);
        let ens = build_default(&entries, 8);
        // Query = domain 19 (200 values). Domain 4 (50 values) has
        // containment 50/200 = 0.25 < 0.9 — mostly filtered out; and at
        // t* = 0.2 it must be found.
        let (_, size, sig, _) = &entries[19];
        let low = ens.query_with_size(sig, *size, 0.2);
        assert!(low.contains(&4), "t(Q, X4) = 0.25 ≥ 0.2 should match");
        let high = ens.query_with_size(sig, *size, 0.9);
        // High threshold keeps the perfect containers.
        for k in 19..30u32 {
            assert!(high.contains(&k));
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let (_, entries) = nested_corpus(256, 40);
        let ens = build_default(&entries, 8);
        for k in [0usize, 7, 20, 39] {
            let (_, size, sig, _) = &entries[k];
            for t in [0.1, 0.5, 0.9] {
                assert_eq!(
                    ens.query_with_size(sig, *size, t),
                    ens.query_parallel(sig, *size, t),
                    "k={k} t={t}"
                );
            }
        }
    }

    #[test]
    fn estimated_query_size_close_to_exact() {
        let (_, entries) = nested_corpus(256, 30);
        let ens = build_default(&entries, 8);
        let (_, size, sig, _) = &entries[10];
        let est = ens.query(sig, 0.8);
        let exact = ens.query_with_size(sig, *size, 0.8);
        // The cardinality estimate is within a few % of the truth; the
        // candidate sets should agree on the vast majority of ids.
        let inter = est.iter().filter(|id| exact.contains(id)).count();
        assert!(
            inter * 10 >= exact.len() * 8,
            "est {est:?} vs exact {exact:?}"
        );
    }

    #[test]
    fn partition_skipping_drops_unreachable_partitions() {
        let (_, entries) = nested_corpus(256, 30);
        let ens = build_default(&entries, 8);
        // A query larger than every indexed domain at t* = 1.0 can have no
        // answers (x/q < 1 everywhere).
        let h = MinHasher::new(256);
        let big: Vec<u64> = MinHasher::synthetic_values(7, 1000);
        let sig = h.signature(big.iter().copied());
        let got = ens.query_with_size(&sig, 1000, 1.0);
        assert!(got.is_empty(), "got {got:?}");
    }

    #[test]
    fn insert_after_build_is_found() {
        let (h, entries) = nested_corpus(256, 20);
        let mut ens = build_default(&entries, 4);
        let vals = MinHasher::synthetic_values(99, 64);
        let sig = h.signature(vals.iter().copied());
        ens.insert(1000, 64, &sig);
        assert_eq!(ens.len(), 21);
        let got = ens.query_with_size(&sig, 64, 0.9);
        assert!(got.contains(&1000));
        ens.commit();
        let got = ens.query_with_size(&sig, 64, 0.9);
        assert!(got.contains(&1000));
    }

    #[test]
    fn insert_oversized_grows_last_partition() {
        let (h, entries) = nested_corpus(256, 20);
        let mut ens = build_default(&entries, 4);
        let old_max = ens.partition_stats().last().expect("parts").upper;
        let vals = MinHasher::synthetic_values(5, 4000);
        let sig = h.signature(vals.iter().copied());
        ens.insert(2000, 4000, &sig);
        let new_max = ens.partition_stats().last().expect("parts").upper;
        assert!(new_max > old_max);
        assert_eq!(new_max, 4000);
        assert!(ens.query_with_size(&sig, 4000, 0.9).contains(&2000));
    }

    #[test]
    fn partition_stats_cover_corpus() {
        let (_, entries) = nested_corpus(256, 32);
        let ens = build_default(&entries, 8);
        let stats = ens.partition_stats();
        assert_eq!(stats.len(), 8);
        let total: usize = stats.iter().map(|s| s.count).sum();
        assert_eq!(total, 32);
        for w in stats.windows(2) {
            assert!(w[0].upper <= w[1].lower);
        }
    }

    #[test]
    fn more_partitions_no_worse_recall_on_perfect_matches() {
        let (_, entries) = nested_corpus(256, 64);
        let e8 = build_default(&entries, 8);
        let e32 = build_default(&entries, 32);
        let (_, size, sig, _) = &entries[10];
        let r8 = e8.query_with_size(sig, *size, 1.0);
        let r32 = e32.query_with_size(sig, *size, 1.0);
        // Both must find the query's own id.
        assert!(r8.contains(&10));
        assert!(r32.contains(&10));
    }

    #[test]
    fn try_insert_and_remove_roundtrip() {
        let (h, entries) = nested_corpus(256, 20);
        let mut ens = build_default(&entries, 4);
        let vals = MinHasher::synthetic_values(123, 64);
        let sig = h.signature(vals.iter().copied());
        ens.try_insert(500, 64, &sig).expect("insert");
        assert!(ens.contains(500));
        assert_eq!(ens.staged_len(), 1);
        // Duplicate insert is a typed error, not a second copy.
        assert_eq!(
            ens.try_insert(500, 64, &sig),
            Err(MutationError::DuplicateId(500))
        );
        // Invalid inputs are typed errors.
        assert!(matches!(
            ens.try_insert(501, 0, &sig),
            Err(MutationError::Invalid(_))
        ));
        let narrow = MinHasher::new(64).signature([1u64, 2]);
        assert!(matches!(
            ens.try_insert(501, 2, &narrow),
            Err(MutationError::Invalid(_))
        ));
        // Removal takes effect immediately, pre-commit.
        ens.try_remove(500).expect("remove staged");
        assert!(!ens.contains(500));
        assert_eq!(ens.staged_len(), 0);
        assert!(!ens.query_with_size(&sig, 64, 0.9).contains(&500));
        assert_eq!(ens.try_remove(500), Err(MutationError::UnknownId(500)));
        // Removing a committed (built) domain works too.
        let (_, size, sig3, _) = &entries[3];
        ens.try_remove(3).expect("remove built");
        assert_eq!(ens.len(), 19);
        assert!(!ens.query_with_size(sig3, *size, 1.0).contains(&3));
        // Neighbours survive.
        let (_, size4, sig4, _) = &entries[4];
        assert!(ens.query_with_size(sig4, *size4, 1.0).contains(&4));
    }

    #[test]
    fn mutable_index_trait_reports_commit() {
        use crate::api::MutableIndex;
        let (h, entries) = nested_corpus(256, 12);
        let mut ens = build_default(&entries, 3);
        let sig = h.signature(MinHasher::synthetic_values(9, 33));
        MutableIndex::insert(&mut ens, 700, 33, &sig).expect("insert");
        assert_eq!(MutableIndex::staged_len(&ens), 1);
        let report = MutableIndex::commit(&mut ens);
        assert_eq!(report.merged, 1);
        assert!(!report.rebalanced, "plain ensemble cannot rebalance");
        assert_eq!(MutableIndex::staged_len(&ens), 0);
        assert!(ens.query_with_size(&sig, 33, 0.9).contains(&700));
    }

    #[test]
    fn clone_is_independent() {
        let (h, entries) = nested_corpus(256, 10);
        let ens = build_default(&entries, 2);
        let mut copy = ens.clone();
        let sig = h.signature(MinHasher::synthetic_values(77, 40));
        copy.try_insert(900, 40, &sig).expect("insert");
        copy.try_remove(0).expect("remove");
        assert_eq!(copy.len(), 10);
        assert_eq!(ens.len(), 10);
        assert!(ens.contains(0), "original mutated through clone");
        assert!(!ens.contains(900));
    }

    #[test]
    #[should_panic(expected = "duplicate domain id")]
    fn panicking_insert_rejects_duplicates() {
        let (h, entries) = nested_corpus(256, 8);
        let mut ens = build_default(&entries, 2);
        let sig = h.signature(MinHasher::synthetic_values(5, 30));
        ens.insert(2, 30, &sig); // id 2 already indexed
    }

    #[test]
    fn remove_to_empty_is_legal() {
        let (_, entries) = nested_corpus(256, 6);
        let mut ens = build_default(&entries, 2);
        for k in 0..6u32 {
            ens.try_remove(k).expect("remove");
        }
        assert!(ens.is_empty());
        assert_eq!(ens.len(), 0);
        let (_, size, sig, _) = &entries[0];
        assert!(ens.query_with_size(sig, *size, 0.1).is_empty());
    }

    #[test]
    #[should_panic(expected = "b_max·r_max")]
    fn invalid_config_rejected() {
        let _ = LshEnsemble::builder_with(EnsembleConfig {
            num_perm: 16,
            b_max: 8,
            r_max: 8,
            strategy: PartitionStrategy::Single,
        });
    }

    #[test]
    #[should_panic(expected = "cannot build an empty ensemble")]
    fn empty_build_rejected() {
        let _ = LshEnsemble::builder().build();
    }

    #[test]
    #[should_panic(expected = "signature width mismatch")]
    fn wrong_width_rejected() {
        let h = MinHasher::new(64);
        let mut b = LshEnsemble::builder();
        b.add(1, 10, h.signature([1u64, 2]));
    }
}
