//! Data-parallel sharding — the in-process stand-in for the paper's 5-node
//! cluster deployment (§6.3).
//!
//! The paper splits the 262M-domain corpus into equal chunks, builds an
//! independent LSH Ensemble per node, fans a query out to all nodes, and
//! unions the answers. [`ShardedEnsemble`] reproduces that topology with
//! one shard per thread: the exact same partition → shard → union code
//! path, minus the network.

use crate::api::{
    outcome_from_ids, CommitReport, DomainIndex, MutableIndex, MutationError, ProbeCounts, Query,
    QueryError, QueryMode, SearchOutcome, SegmentStats,
};
use crate::ensemble::{EnsembleConfig, LshEnsemble, LshEnsembleBuilder};
use lshe_lsh::DomainId;
use lshe_minhash::Signature;

/// A set of independently built LSH Ensembles queried in parallel.
#[derive(Debug, Clone)]
pub struct ShardedEnsemble {
    shards: Vec<LshEnsemble>,
}

/// Builder assigning staged domains round-robin across `k` shards (the
/// paper's "divided the domains into 5 equal chunks").
#[derive(Debug)]
pub struct ShardedEnsembleBuilder {
    builders: Vec<LshEnsembleBuilder>,
    next: usize,
}

impl ShardedEnsembleBuilder {
    /// Creates a builder with `num_shards` shards sharing one configuration.
    ///
    /// # Panics
    /// Panics if `num_shards == 0` or the configuration is invalid.
    #[must_use]
    pub fn new(num_shards: usize, config: EnsembleConfig) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        Self {
            builders: (0..num_shards)
                .map(|_| LshEnsembleBuilder::new(config))
                .collect(),
            next: 0,
        }
    }

    /// Stages a domain on the next shard (round-robin).
    pub fn add(&mut self, id: DomainId, size: u64, signature: Signature) {
        self.builders[self.next].add(id, size, signature);
        self.next = (self.next + 1) % self.builders.len();
    }

    /// Total staged domains across shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.builders.iter().map(LshEnsembleBuilder::len).sum()
    }

    /// True if nothing is staged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Builds every shard concurrently.
    ///
    /// # Panics
    /// Panics if any shard received no domains (add more domains or fewer
    /// shards).
    #[must_use]
    pub fn build(self) -> ShardedEnsemble {
        let shards: Vec<LshEnsemble> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .builders
                .into_iter()
                .map(|b| scope.spawn(move || b.build()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard build panicked"))
                .collect()
        });
        ShardedEnsemble { shards }
    }
}

impl ShardedEnsemble {
    /// A builder with `num_shards` shards and the given configuration.
    #[must_use]
    pub fn builder(num_shards: usize, config: EnsembleConfig) -> ShardedEnsembleBuilder {
        ShardedEnsembleBuilder::new(num_shards, config)
    }

    /// Zero-copy bulk load: round-robins the parallel arrays across
    /// `num_shards` shards and builds all shards concurrently, without
    /// cloning any signature (the cluster-scale path).
    ///
    /// # Panics
    /// Panics if `num_shards == 0`, fewer domains than shards are supplied,
    /// or the array lengths differ.
    #[must_use]
    pub fn build_from_parts(
        num_shards: usize,
        config: EnsembleConfig,
        ids: &[DomainId],
        sizes: &[u64],
        signatures: &[&Signature],
    ) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        assert!(
            ids.len() >= num_shards,
            "need at least one domain per shard"
        );
        assert!(
            ids.len() == sizes.len() && ids.len() == signatures.len(),
            "parallel arrays must have equal lengths"
        );
        let shards: Vec<LshEnsemble> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..num_shards)
                .map(|shard| {
                    scope.spawn(move || {
                        let shard_ids: Vec<DomainId> = ids
                            .iter()
                            .skip(shard)
                            .step_by(num_shards)
                            .copied()
                            .collect();
                        let shard_sizes: Vec<u64> = sizes
                            .iter()
                            .skip(shard)
                            .step_by(num_shards)
                            .copied()
                            .collect();
                        let shard_sigs: Vec<&Signature> = signatures
                            .iter()
                            .skip(shard)
                            .step_by(num_shards)
                            .copied()
                            .collect();
                        LshEnsemble::build_from_parts(config, &shard_ids, &shard_sizes, &shard_sigs)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard build panicked"))
                .collect()
        });
        Self { shards }
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total indexed domains.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(LshEnsemble::len).sum()
    }

    /// True if nothing is indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shards (for inspection).
    #[must_use]
    pub fn shards(&self) -> &[LshEnsemble] {
        &self.shards
    }

    /// Fans the query out to every shard in parallel and unions the
    /// answers — `Partitioned-Containment-Search` at cluster granularity.
    ///
    /// # Panics
    /// Propagates the per-shard query panics (invalid size/threshold).
    #[must_use]
    pub fn query_with_size(
        &self,
        signature: &Signature,
        query_size: u64,
        t_star: f64,
    ) -> Vec<DomainId> {
        self.query_counted(signature, query_size, t_star).0
    }

    /// Approximate heap memory across all shards, in bytes.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.shards.iter().map(LshEnsemble::memory_bytes).sum()
    }

    /// True if `id` is indexed on any shard.
    #[must_use]
    pub fn contains(&self, id: DomainId) -> bool {
        self.shards.iter().any(|s| s.contains(id))
    }

    /// Number of staged inserts across all shards.
    #[must_use]
    pub fn staged_len(&self) -> usize {
        self.shards.iter().map(LshEnsemble::staged_len).sum()
    }

    /// Typed insert, routed by id: new domains land on shard
    /// `id % num_shards`, so routing is deterministic regardless of
    /// arrival order. Immediately queryable via the fan-out path.
    ///
    /// # Errors
    /// [`MutationError::DuplicateId`] if *any* shard holds the id;
    /// [`MutationError::Invalid`] on bad inputs.
    pub fn try_insert(
        &mut self,
        id: DomainId,
        size: u64,
        signature: &Signature,
    ) -> Result<(), MutationError> {
        if self.contains(id) {
            return Err(MutationError::DuplicateId(id));
        }
        let shard = id as usize % self.shards.len();
        self.shards[shard].try_insert(id, size, signature)
    }

    /// Typed removal: the owning shard is located (builder assignment is
    /// round-robin by arrival, so routing by id alone would miss
    /// bulk-built domains) and the id dropped from it.
    ///
    /// # Errors
    /// [`MutationError::UnknownId`] if no shard holds the id.
    pub fn try_remove(&mut self, id: DomainId) -> Result<(), MutationError> {
        let Some(shard) = self.shards.iter().position(|s| s.contains(id)) else {
            return Err(MutationError::UnknownId(id));
        };
        self.shards[shard].try_remove(id)
    }

    /// Seals each shard's staged delta into a per-shard segment.
    pub fn commit(&mut self) -> CommitReport {
        let merged = self.staged_len();
        let mut sealed = false;
        for shard in &mut self.shards {
            sealed |= LshEnsemble::commit(shard);
        }
        // Shards retain no sketches: domains cannot migrate between shards
        // or partitions, so boundary growth stays conservative instead.
        let stats = self.segment_stats();
        CommitReport {
            merged,
            rebalanced: false,
            sealed,
            segments: stats.segments,
            tombstones: stats.tombstones,
        }
    }

    /// Seals and then folds every shard's segment stack back into its
    /// base, erasing tombstones — the O(corpus) step, off the commit path.
    pub fn compact(&mut self) -> CommitReport {
        let merged = self.staged_len();
        let mut sealed = false;
        for shard in &mut self.shards {
            sealed |= LshEnsemble::commit(shard);
            shard.compact();
        }
        CommitReport {
            merged,
            rebalanced: false,
            sealed,
            segments: 0,
            tombstones: 0,
        }
    }

    /// Outstanding segments/tombstones summed over the shards.
    #[must_use]
    pub fn segment_stats(&self) -> SegmentStats {
        let mut out = SegmentStats::default();
        for shard in &self.shards {
            let s = shard.segment_stats();
            out.segments += s.segments;
            out.tombstones += s.tombstones;
        }
        out
    }

    /// The tier layout for merge planning: per-shard stacks are aligned
    /// by position (each commit seals at most one segment on every shard,
    /// so position `i` across shards came from the same commit epoch) and
    /// summed elementwise into one cluster-wide stack.
    #[must_use]
    pub fn segment_layout(&self) -> crate::SegmentLayout {
        let mut segments: Vec<usize> = Vec::new();
        let mut tombstones = 0;
        for shard in &self.shards {
            let layout = shard.segment_layout();
            if segments.len() < layout.segments.len() {
                segments.resize(layout.segments.len(), 0);
            }
            for (slot, entries) in segments.iter_mut().zip(&layout.segments) {
                *slot += entries;
            }
            tombstones += layout.tombstones;
        }
        crate::SegmentLayout {
            segments,
            tombstones,
            len: self.len(),
        }
    }

    /// Folds the listed segment positions on every shard (positions past
    /// a shard's own stack are skipped there). Returns total live entries
    /// folded across the shards.
    pub fn merge_segments(&mut self, segment_indices: &[usize]) -> usize {
        self.shards
            .iter_mut()
            .map(|s| s.merge_segments(segment_indices))
            .sum()
    }

    /// Instrumented fan-out query: sorted-unique ids plus probe counters
    /// summed across shards (each shard's query is already parallel over
    /// one thread here, matching the paper's one-ensemble-per-node model).
    pub(crate) fn query_counted(
        &self,
        signature: &Signature,
        query_size: u64,
        t_star: f64,
    ) -> (Vec<DomainId>, ProbeCounts) {
        let results: Vec<(Vec<DomainId>, ProbeCounts)> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| {
                    scope.spawn(move || shard.query_counted(signature, query_size, t_star, false))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard query panicked"))
                .collect()
        });
        let mut probe = ProbeCounts::default();
        let results: Vec<Vec<DomainId>> = results
            .into_iter()
            .map(|(ids, p)| {
                probe.probed += p.probed;
                probe.total += p.total;
                probe.candidates += p.candidates;
                ids
            })
            .collect();
        // Shards hold disjoint id sets (round-robin assignment), so a
        // k-way merge of sorted vectors suffices; ids stay sorted.
        (crate::batch::merge_sorted_disjoint(results), probe)
    }

    /// Batched instrumented fan-out: the shard threads are spawned ONCE
    /// for the whole batch — drawn from the process-wide
    /// [`lshe_minhash::lanes`] budget, so concurrent batches degrade to
    /// fewer lanes (down to a sequential shard loop on the calling
    /// thread) instead of multiplying `callers × shards` threads. Each
    /// shard sweeps every query partition-outer with its own scratch, and
    /// the per-shard answers are merged per query. Identical per-query
    /// results to looping [`query_counted`](Self::query_counted) — the
    /// fan-out cost is simply paid once per batch instead of once per
    /// query.
    pub(crate) fn batch_query_counted(
        &self,
        items: &[crate::batch::ThresholdItem<'_>],
    ) -> Vec<(Vec<DomainId>, ProbeCounts, u64)> {
        let sweep = |shard: &LshEnsemble| {
            shard.batch_sweep_chunk(items, &|_, ids, probe, nanos| (ids, probe, nanos))
        };
        let guard = lshe_minhash::lanes::acquire(self.shards.len().saturating_sub(1));
        let lanes = guard.lanes().min(self.shards.len());
        // Shard order must be preserved for the per-query merge; lanes
        // each take a contiguous run of shards (the calling thread works
        // the first run itself).
        let per_shard: Vec<Vec<(Vec<DomainId>, ProbeCounts, u64)>> = if lanes <= 1 {
            self.shards.iter().map(&sweep).collect()
        } else {
            let group = self.shards.len().div_ceil(lanes);
            let mut shard_groups = self.shards.chunks(group);
            let first = shard_groups.next().unwrap_or(&[]);
            let (first_out, rest): (Vec<_>, Vec<Vec<_>>) = std::thread::scope(|scope| {
                let handles: Vec<_> = shard_groups
                    .map(|shards| scope.spawn(|| shards.iter().map(&sweep).collect::<Vec<_>>()))
                    .collect();
                let first_out: Vec<_> = first.iter().map(sweep).collect();
                (
                    first_out,
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("shard batch panicked"))
                        .collect(),
                )
            });
            first_out
                .into_iter()
                .chain(rest.into_iter().flatten())
                .collect()
        };
        let mut columns: Vec<_> = per_shard.into_iter().map(Vec::into_iter).collect();
        (0..items.len())
            .map(|_| {
                let mut probe = ProbeCounts::default();
                let mut nanos = 0u64;
                let mut runs = Vec::with_capacity(columns.len());
                for column in &mut columns {
                    let (ids, p, n) = column.next().expect("each shard answers each query");
                    probe.probed += p.probed;
                    probe.total += p.total;
                    probe.candidates += p.candidates;
                    nanos += n;
                    runs.push(ids);
                }
                (crate::batch::merge_sorted_disjoint(runs), probe, nanos)
            })
            .collect()
    }
}

impl MutableIndex for ShardedEnsemble {
    fn insert(
        &mut self,
        id: DomainId,
        size: u64,
        signature: &Signature,
    ) -> Result<(), MutationError> {
        self.try_insert(id, size, signature)
    }

    fn remove(&mut self, id: DomainId) -> Result<(), MutationError> {
        self.try_remove(id)
    }

    fn commit(&mut self) -> CommitReport {
        ShardedEnsemble::commit(self)
    }

    fn staged_len(&self) -> usize {
        ShardedEnsemble::staged_len(self)
    }

    fn compact(&mut self) -> CommitReport {
        ShardedEnsemble::compact(self)
    }

    fn segment_stats(&self) -> SegmentStats {
        ShardedEnsemble::segment_stats(self)
    }

    fn segment_layout(&self) -> crate::SegmentLayout {
        ShardedEnsemble::segment_layout(self)
    }

    fn apply_merge(&mut self, task: &crate::MergeTask) -> crate::MergeOutcome {
        let entries_folded = match task {
            crate::MergeTask::Merge(idxs) => self.merge_segments(idxs),
            crate::MergeTask::Full => {
                let folded = self.len();
                ShardedEnsemble::compact(self);
                folded
            }
        };
        let stats = self.segment_stats();
        crate::MergeOutcome {
            entries_folded,
            segments: stats.segments,
            tombstones: stats.tombstones,
        }
    }
}

impl DomainIndex for ShardedEnsemble {
    fn search(&self, query: &Query<'_>) -> Result<SearchOutcome, QueryError> {
        let num_perm = self.shards[0].config().num_perm;
        query.validate_for(num_perm)?;
        let QueryMode::Threshold(t_star) = query.mode() else {
            return Err(QueryError::Unsupported(
                "top-k needs retained sketches; use ShardedRanked".into(),
            ));
        };
        let started = std::time::Instant::now();
        let (ids, probe) = self.query_counted(query.signature(), query.effective_size(), t_star);
        Ok(outcome_from_ids(ids, probe, started))
    }

    fn search_batch(&self, queries: &[Query<'_>]) -> Vec<Result<SearchOutcome, QueryError>> {
        let num_perm = self.shards[0].config().num_perm;
        crate::batch::split_and_run(
            queries,
            num_perm,
            |items| {
                self.batch_query_counted(items)
                    .into_iter()
                    .map(|(ids, probe, nanos)| {
                        crate::api::outcome_from_ids_timed(ids, probe, nanos)
                    })
                    .collect()
            },
            |_, _| {
                Err(QueryError::Unsupported(
                    "top-k needs retained sketches; use ShardedRanked".into(),
                ))
            },
        )
    }

    fn len(&self) -> usize {
        ShardedEnsemble::len(self)
    }

    fn memory_bytes(&self) -> usize {
        ShardedEnsemble::memory_bytes(self)
    }

    fn describe(&self) -> String {
        format!("Sharded LSH Ensemble ({} shards)", self.shards.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionStrategy;
    use lshe_minhash::MinHasher;

    #[allow(clippy::type_complexity)]
    fn entries(n: usize) -> (MinHasher, Vec<(DomainId, u64, Signature, Vec<u64>)>) {
        let h = MinHasher::new(256);
        let pool = MinHasher::synthetic_values(3, 10 * n);
        let out = (0..n)
            .map(|k| {
                let vals: Vec<u64> = pool[..10 * (k + 1)].to_vec();
                let sig = h.signature(vals.iter().copied());
                (k as DomainId, vals.len() as u64, sig, vals)
            })
            .collect();
        (h, out)
    }

    fn config() -> EnsembleConfig {
        EnsembleConfig {
            strategy: PartitionStrategy::EquiDepth { n: 4 },
            ..EnsembleConfig::default()
        }
    }

    #[test]
    fn sharded_matches_unsharded() {
        let (_, es) = entries(60);
        let mut sharded = ShardedEnsemble::builder(5, config());
        let mut single = crate::ensemble::LshEnsemble::builder_with(config());
        for (id, size, sig, _) in &es {
            sharded.add(*id, *size, sig.clone());
            single.add(*id, *size, sig.clone());
        }
        let sharded = sharded.build();
        let single = single.build();
        assert_eq!(sharded.num_shards(), 5);
        assert_eq!(sharded.len(), single.len());
        for k in [0usize, 15, 42, 59] {
            let (_, size, sig, _) = &es[k];
            for t in [0.3, 0.8, 1.0] {
                let a = sharded.query_with_size(sig, *size, t);
                let b = single.query_with_size(sig, *size, t);
                // Same algorithm, but shard-local partitioning differs from
                // global partitioning, so upper bounds — and therefore
                // tuning — can differ slightly. Exact matches must always
                // be found by both; and both candidate sets must contain
                // the query's own id.
                assert!(a.contains(&(k as DomainId)), "sharded missed self at t={t}");
                assert!(b.contains(&(k as DomainId)), "single missed self at t={t}");
            }
        }
    }

    #[test]
    fn merge_produces_sorted_unique_ids() {
        let (_, es) = entries(40);
        let mut sharded = ShardedEnsemble::builder(3, config());
        for (id, size, sig, _) in &es {
            sharded.add(*id, *size, sig.clone());
        }
        let sharded = sharded.build();
        let (_, size, sig, _) = &es[10];
        let got = sharded.query_with_size(sig, *size, 0.5);
        for w in got.windows(2) {
            assert!(w[0] < w[1], "not sorted/unique: {got:?}");
        }
    }

    #[test]
    fn round_robin_balances_shards() {
        let (_, es) = entries(50);
        let mut sharded = ShardedEnsemble::builder(5, config());
        for (id, size, sig, _) in &es {
            sharded.add(*id, *size, sig.clone());
        }
        let built = sharded.build();
        for s in built.shards() {
            assert_eq!(s.len(), 10);
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedEnsemble::builder(0, config());
    }

    #[test]
    fn mutations_route_by_id_and_stay_queryable() {
        let (h, es) = entries(30);
        let mut sharded = ShardedEnsemble::builder(3, config());
        for (id, size, sig, _) in &es {
            sharded.add(*id, *size, sig.clone());
        }
        let mut sharded = sharded.build();

        // Insert routes to id % num_shards.
        let vals = MinHasher::synthetic_values(999, 55);
        let sig = h.signature(vals.iter().copied());
        sharded.try_insert(100, 55, &sig).expect("insert");
        assert_eq!(sharded.len(), 31);
        assert!(sharded.shards()[100 % 3].contains(100));
        assert!(sharded.query_with_size(&sig, 55, 0.9).contains(&100));
        assert_eq!(
            sharded.try_insert(100, 55, &sig),
            Err(MutationError::DuplicateId(100))
        );

        // Remove finds domains wherever the builder placed them (arrival
        // round-robin, not id % shards): id 7 was the 8th add → shard 1.
        sharded.try_remove(7).expect("remove built domain");
        let (_, size7, sig7, _) = &es[7];
        assert!(!sharded.query_with_size(sig7, *size7, 1.0).contains(&7));
        assert_eq!(sharded.try_remove(7), Err(MutationError::UnknownId(7)));

        // Commit folds the staged insert; everything stays answerable.
        assert_eq!(sharded.staged_len(), 1);
        let report = sharded.commit();
        assert_eq!(report.merged, 1);
        assert!(!report.rebalanced);
        assert_eq!(sharded.staged_len(), 0);
        assert!(sharded.query_with_size(&sig, 55, 0.9).contains(&100));
        let (_, size8, sig8, _) = &es[8];
        assert!(sharded.query_with_size(sig8, *size8, 1.0).contains(&8));
    }
}
