//! Domain partitioning by cardinality (§5.4, Theorems 1–2).
//!
//! A partitioning groups domains into disjoint size classes; each class gets
//! its own dynamically tuned LSH whose threshold conversion uses the class's
//! upper bound — the tighter the bound, the fewer false positives (§5.3).
//!
//! Four constructions are provided:
//!
//! * [`Partitioning::equi_depth`] — equal domain counts per partition. By
//!   Theorem 2 this approximates the optimal (equi-`N^FP`) partitioning when
//!   sizes follow a power law, and it is the paper's recommended scheme.
//! * [`Partitioning::equi_width`] — equal size-interval widths, the
//!   degraded regime Figure 8 sweeps toward.
//! * [`Partitioning::morph`] — geometric interpolation between the two,
//!   the x-axis of Figure 8's robustness experiment.
//! * [`Partitioning::equi_fp`] — direct numeric equalisation of the
//!   false-positive bound `M_i = N·(u−l+1)/(2u)` (Eq. 16), the
//!   distribution-agnostic optimal construction of Theorem 1.

use crate::cost::fp_upper_bound;

/// One size class: inclusive size bounds plus the member domains, stored as
/// indices into the caller's size array (which the ensemble keeps aligned
/// with its domain ids).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Smallest member size.
    pub lower: u64,
    /// Largest member size (the `u` of every conversion formula).
    pub upper: u64,
    /// Member indices, ascending.
    pub members: Vec<u32>,
}

impl Partition {
    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the partition has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The Eq. 16 false-positive bound `M = N·(u−l+1)/(2u)` of this
    /// partition.
    #[must_use]
    pub fn fp_bound(&self) -> f64 {
        fp_upper_bound(self.members.len(), self.lower.max(1), self.upper.max(1))
    }
}

/// A complete partitioning of a corpus by domain size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    parts: Vec<Partition>,
}

/// How to partition a corpus; consumed by the ensemble builder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PartitionStrategy {
    /// One partition holding everything — this is exactly the paper's
    /// "MinHash LSH baseline" (dynamic tuning with the global upper bound).
    Single,
    /// Equal member counts (Theorem 2; the paper's default).
    EquiDepth {
        /// Number of partitions.
        n: usize,
    },
    /// Equal size-interval widths.
    EquiWidth {
        /// Number of partitions.
        n: usize,
    },
    /// Interpolation between equi-depth (`lambda = 0`) and equi-width
    /// (`lambda = 1`) — Figure 8's drift knob.
    Morph {
        /// Number of partitions.
        n: usize,
        /// Interpolation parameter in `[0, 1]`.
        lambda: f64,
    },
    /// Numeric equalisation of the Eq. 16 false-positive bound
    /// (Theorem 1's optimal construction, distribution-agnostic).
    EquiFp {
        /// Number of partitions.
        n: usize,
    },
}

impl PartitionStrategy {
    /// Applies the strategy to a size array.
    #[must_use]
    pub fn partition(&self, sizes: &[u64]) -> Partitioning {
        match *self {
            Self::Single => Partitioning::single(sizes),
            Self::EquiDepth { n } => Partitioning::equi_depth(sizes, n),
            Self::EquiWidth { n } => Partitioning::equi_width(sizes, n),
            Self::Morph { n, lambda } => Partitioning::morph(sizes, n, lambda),
            Self::EquiFp { n } => Partitioning::equi_fp(sizes, n),
        }
    }
}

impl Partitioning {
    /// Everything in one partition (the unpartitioned baseline).
    ///
    /// # Panics
    /// Panics if `sizes` is empty or contains a zero size.
    #[must_use]
    pub fn single(sizes: &[u64]) -> Self {
        Self::equi_depth(sizes, 1)
    }

    fn ids_sorted_by_size(sizes: &[u64]) -> Vec<u32> {
        assert!(!sizes.is_empty(), "cannot partition an empty corpus");
        assert!(
            sizes.iter().all(|&s| s > 0),
            "domain sizes must be positive"
        );
        let mut ids: Vec<u32> = (0..sizes.len() as u32).collect();
        ids.sort_unstable_by_key(|&i| (sizes[i as usize], i));
        ids
    }

    fn from_sorted_chunks(sizes: &[u64], chunks: Vec<Vec<u32>>) -> Self {
        let parts = chunks
            .into_iter()
            .filter(|c| !c.is_empty())
            .map(|mut members| {
                let lower = sizes[members[0] as usize];
                let upper = sizes[*members.last().expect("non-empty") as usize];
                members.sort_unstable();
                Partition {
                    lower,
                    upper,
                    members,
                }
            })
            .collect();
        Self { parts }
    }

    /// Equal member counts per partition (§5.4, Theorem 2).
    ///
    /// If `n` exceeds the number of domains, fewer partitions are produced.
    ///
    /// # Panics
    /// Panics if `n == 0`, `sizes` is empty, or any size is zero.
    #[must_use]
    pub fn equi_depth(sizes: &[u64], n: usize) -> Self {
        assert!(n > 0, "need at least one partition");
        let ids = Self::ids_sorted_by_size(sizes);
        let len = ids.len();
        let chunks = (0..n)
            .map(|k| ids[k * len / n..(k + 1) * len / n].to_vec())
            .collect();
        Self::from_sorted_chunks(sizes, chunks)
    }

    /// Equal size-interval widths. Intervals that contain no domain are
    /// dropped.
    ///
    /// # Panics
    /// Panics if `n == 0`, `sizes` is empty, or any size is zero.
    #[must_use]
    pub fn equi_width(sizes: &[u64], n: usize) -> Self {
        assert!(n > 0, "need at least one partition");
        let ids = Self::ids_sorted_by_size(sizes);
        let min = sizes[ids[0] as usize];
        let max = sizes[*ids.last().expect("non-empty") as usize];
        let cuts: Vec<f64> = (1..n)
            .map(|k| min as f64 + (max - min) as f64 * k as f64 / n as f64)
            .collect();
        Self::from_cuts(sizes, &ids, &cuts)
    }

    /// Interpolates between equi-depth (`lambda = 0`) and equi-width
    /// (`lambda = 1`) cut points.
    ///
    /// Interpolation is geometric (in log-size space): on a power-law
    /// corpus the equi-width cuts are orders of magnitude above the
    /// equi-depth cuts, so a linear blend would jump to the equi-width
    /// regime at tiny `lambda`; blending exponents instead gives the
    /// gradual degradation ladder Figure 8 sweeps.
    ///
    /// # Panics
    /// Panics if `lambda` is outside `[0, 1]`, plus the usual input checks.
    #[must_use]
    pub fn morph(sizes: &[u64], n: usize, lambda: f64) -> Self {
        assert!(n > 0, "need at least one partition");
        assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0, 1]");
        let ids = Self::ids_sorted_by_size(sizes);
        let len = ids.len();
        let min = sizes[ids[0] as usize];
        let max = sizes[*ids.last().expect("non-empty") as usize];
        let cuts: Vec<f64> = (1..n)
            .map(|k| {
                let depth_cut = (sizes[ids[k * len / n] as usize] as f64).max(1.0);
                let width_cut = (min as f64 + (max - min) as f64 * k as f64 / n as f64).max(1.0);
                ((1.0 - lambda) * depth_cut.ln() + lambda * width_cut.ln()).exp()
            })
            .collect();
        Self::from_cuts(sizes, &ids, &cuts)
    }

    /// Splits sorted ids at ascending size cut points (a domain of size `s`
    /// lands in the first partition whose cut exceeds `s`).
    fn from_cuts(sizes: &[u64], sorted_ids: &[u32], cuts: &[f64]) -> Self {
        let mut chunks: Vec<Vec<u32>> = vec![Vec::new(); cuts.len() + 1];
        for &id in sorted_ids {
            let s = sizes[id as usize] as f64;
            // cuts may be non-monotone after interpolation; use the count of
            // cuts strictly below s, clamped, which is monotone regardless.
            let k = cuts.iter().filter(|&&c| c < s).count();
            chunks[k].push(id);
        }
        Self::from_sorted_chunks(sizes, chunks)
    }

    /// Equalises the Eq. 16 false-positive bound across partitions — the
    /// distribution-agnostic optimal construction guaranteed by Theorem 1.
    ///
    /// Implementation: binary search on the per-partition budget `c`; a
    /// greedy sweep packs sorted domains into a partition until its
    /// `M = N·(u−l+1)/(2u)` would exceed `c`. The resulting partition count
    /// decreases monotonically in `c`, so the search converges to the
    /// smallest budget that needs at most `n` partitions.
    ///
    /// # Panics
    /// Panics if `n == 0`, `sizes` is empty, or any size is zero.
    #[must_use]
    pub fn equi_fp(sizes: &[u64], n: usize) -> Self {
        assert!(n > 0, "need at least one partition");
        let ids = Self::ids_sorted_by_size(sizes);
        if n == 1 {
            return Self::from_sorted_chunks(sizes, vec![ids]);
        }
        // Sweep: number of partitions needed under budget c (and chunks).
        let sweep = |c: f64| -> Vec<Vec<u32>> {
            let mut chunks: Vec<Vec<u32>> = Vec::new();
            let mut cur: Vec<u32> = Vec::new();
            let mut lower = 0u64;
            for &id in &ids {
                let s = sizes[id as usize];
                if cur.is_empty() {
                    lower = s;
                    cur.push(id);
                    continue;
                }
                let m = fp_upper_bound(cur.len() + 1, lower, s.max(lower));
                if m > c {
                    chunks.push(std::mem::take(&mut cur));
                    lower = s;
                }
                cur.push(id);
            }
            if !cur.is_empty() {
                chunks.push(cur);
            }
            chunks
        };
        // The total M of the single partition upper-bounds any useful c.
        let everything = fp_upper_bound(
            ids.len(),
            sizes[ids[0] as usize],
            sizes[*ids.last().expect("non-empty") as usize],
        );
        let (mut lo, mut hi) = (0.0f64, everything.max(1.0));
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if sweep(mid).len() > n {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let chunks = sweep(hi);
        Self::from_sorted_chunks(sizes, chunks)
    }

    /// The partitions, ascending by size range.
    #[must_use]
    pub fn parts(&self) -> &[Partition] {
        &self.parts
    }

    /// Number of (non-empty) partitions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True if there are no partitions (cannot occur via constructors).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Index of the partition that should absorb a *new* domain of size
    /// `s`: the first partition whose upper bound is ≥ `s`, or the last
    /// partition when `s` exceeds every bound (dynamic data, §6.2).
    #[must_use]
    pub fn route(&self, s: u64) -> usize {
        self.parts
            .iter()
            .position(|p| s <= p.upper)
            .unwrap_or(self.parts.len() - 1)
    }

    /// Population standard deviation of partition member counts — the
    /// x-axis of Figure 8.
    #[must_use]
    pub fn member_count_std_dev(&self) -> f64 {
        let counts: Vec<usize> = self.parts.iter().map(Partition::len).collect();
        if counts.is_empty() {
            return 0.0;
        }
        let n = counts.len() as f64;
        let mean = counts.iter().map(|&c| c as f64).sum::<f64>() / n;
        (counts
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n)
            .sqrt()
    }

    /// The largest per-partition Eq. 16 bound — the cost the optimal
    /// partitioning minimises (Eq. 9 with `M_i` in place of `N^FP_i`).
    #[must_use]
    pub fn max_fp_bound(&self) -> f64 {
        self.parts
            .iter()
            .map(Partition::fp_bound)
            .fold(0.0, f64::max)
    }

    /// Checks structural invariants; used by tests and debug assertions.
    ///
    /// # Panics
    /// Panics (with a description) if a member is duplicated or missing, a
    /// partition's bounds don't cover its members, or partitions are out of
    /// order.
    pub fn validate(&self, sizes: &[u64]) {
        let mut seen = vec![false; sizes.len()];
        let mut prev_upper = 0u64;
        for p in &self.parts {
            assert!(!p.is_empty(), "empty partition survived construction");
            assert!(p.lower <= p.upper, "inverted bounds");
            assert!(
                p.lower >= prev_upper,
                "partitions out of order: {} < {}",
                p.lower,
                prev_upper
            );
            prev_upper = p.upper;
            for &id in &p.members {
                assert!(!seen[id as usize], "domain {id} in two partitions");
                seen[id as usize] = true;
                let s = sizes[id as usize];
                assert!(
                    (p.lower..=p.upper).contains(&s),
                    "domain {id} (size {s}) outside [{}, {}]",
                    p.lower,
                    p.upper
                );
            }
        }
        assert!(seen.iter().all(|&b| b), "domain missing from partitioning");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn power_law_sizes(n: usize, seed: u64) -> Vec<u64> {
        // Deterministic approximate power law without pulling in datagen:
        // size = floor(min * (max/min)^(u^3)) gives a bottom-heavy spread.
        let mut out = Vec::with_capacity(n);
        let mut stream = lshe_minhash::hash::SeedStream::new(seed);
        for _ in 0..n {
            let u = stream.next_f64();
            let s = (10.0 * (10_000.0f64 / 10.0).powf(u * u * u)).floor() as u64;
            out.push(s.max(10));
        }
        out
    }

    #[test]
    fn equi_depth_balances_counts() {
        let sizes = power_law_sizes(1000, 1);
        let p = Partitioning::equi_depth(&sizes, 8);
        p.validate(&sizes);
        assert_eq!(p.len(), 8);
        for part in p.parts() {
            assert!((120..=130).contains(&part.len()), "count {}", part.len());
        }
    }

    #[test]
    fn single_covers_everything() {
        let sizes = power_law_sizes(100, 2);
        let p = Partitioning::single(&sizes);
        p.validate(&sizes);
        assert_eq!(p.len(), 1);
        assert_eq!(p.parts()[0].len(), 100);
        assert_eq!(p.parts()[0].upper, *sizes.iter().max().expect("non-empty"));
    }

    #[test]
    fn equi_width_covers_everything() {
        let sizes = power_law_sizes(500, 3);
        let p = Partitioning::equi_width(&sizes, 8);
        p.validate(&sizes);
        assert!(p.len() <= 8);
        let total: usize = p.parts().iter().map(Partition::len).sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn equi_width_skews_counts_on_power_law() {
        // On a power law, the first width interval swallows almost all
        // domains — that's why Figure 8's accuracy degrades toward width.
        let sizes = power_law_sizes(2000, 4);
        let p = Partitioning::equi_width(&sizes, 8);
        assert!(
            p.parts()[0].len() > 1000,
            "first width bucket holds {}",
            p.parts()[0].len()
        );
    }

    #[test]
    fn morph_endpoints_match_parents() {
        let sizes = power_law_sizes(800, 5);
        let depth = Partitioning::morph(&sizes, 8, 0.0);
        let width = Partitioning::morph(&sizes, 8, 1.0);
        depth.validate(&sizes);
        width.validate(&sizes);
        // λ = 0 should balance counts like equi-depth (cut-based variant
        // can differ slightly on duplicate sizes).
        let spread = depth.member_count_std_dev();
        assert!(spread < 40.0, "λ=0 spread {spread}");
        // λ = 1 must match equi-width exactly.
        let ew = Partitioning::equi_width(&sizes, 8);
        assert_eq!(width.parts().len(), ew.parts().len());
        for (a, b) in width.parts().iter().zip(ew.parts()) {
            assert_eq!(a.members, b.members);
        }
    }

    #[test]
    fn morph_std_dev_increases_with_lambda() {
        let sizes = power_law_sizes(3000, 6);
        let mut prev = -1.0;
        for k in 0..=4 {
            let lambda = f64::from(k) / 4.0;
            let p = Partitioning::morph(&sizes, 8, lambda);
            p.validate(&sizes);
            let sd = p.member_count_std_dev();
            assert!(
                sd >= prev - 15.0, // interpolation is not strictly monotone
                "λ={lambda}: sd {sd} after {prev}"
            );
            prev = sd;
        }
        let depth_sd = Partitioning::morph(&sizes, 8, 0.0).member_count_std_dev();
        let width_sd = Partitioning::morph(&sizes, 8, 1.0).member_count_std_dev();
        assert!(width_sd > depth_sd * 3.0, "{width_sd} vs {depth_sd}");
    }

    #[test]
    fn equi_fp_equalises_bounds() {
        let sizes = power_law_sizes(2000, 7);
        let p = Partitioning::equi_fp(&sizes, 8);
        p.validate(&sizes);
        assert!(p.len() <= 8);
        let bounds: Vec<f64> = p.parts().iter().map(Partition::fp_bound).collect();
        let max = bounds.iter().copied().fold(0.0, f64::max);
        let min = bounds.iter().copied().fold(f64::INFINITY, f64::min);
        // Perfect equality is impossible with discrete domains; within 3×.
        assert!(
            max / min.max(1e-9) < 3.0,
            "fp bounds too uneven: {bounds:?}"
        );
    }

    #[test]
    fn equi_fp_beats_equi_width_on_cost() {
        let sizes = power_law_sizes(2000, 8);
        let fp = Partitioning::equi_fp(&sizes, 8).max_fp_bound();
        let width = Partitioning::equi_width(&sizes, 8).max_fp_bound();
        assert!(fp <= width, "equi-fp {fp} vs equi-width {width}");
    }

    #[test]
    fn equi_depth_approximates_equi_fp_on_power_law() {
        // Theorem 2's claim, checked numerically: on power-law sizes the
        // equi-depth max-M is within a small factor of the equi-fp max-M.
        let sizes = power_law_sizes(5000, 9);
        let depth = Partitioning::equi_depth(&sizes, 8).max_fp_bound();
        let opt = Partitioning::equi_fp(&sizes, 8).max_fp_bound();
        assert!(
            depth <= opt * 2.5,
            "equi-depth {depth} far from optimal {opt}"
        );
    }

    #[test]
    fn route_picks_covering_partition() {
        let sizes = vec![10, 20, 30, 40, 50, 60, 70, 80];
        let p = Partitioning::equi_depth(&sizes, 4);
        // Partitions: [10,20], [30,40], [50,60], [70,80].
        assert_eq!(p.route(15), 0);
        assert_eq!(p.route(30), 1);
        assert_eq!(p.route(65), 3);
        assert_eq!(p.route(1_000), 3); // overflow routes to the last
        assert_eq!(p.route(1), 0); // underflow routes to the first
    }

    #[test]
    fn n_larger_than_corpus_degrades_gracefully() {
        let sizes = vec![5, 6, 7];
        let p = Partitioning::equi_depth(&sizes, 10);
        p.validate(&sizes);
        assert!(p.len() <= 3);
    }

    #[test]
    fn duplicate_sizes_stay_valid() {
        let sizes = vec![10; 100];
        for n in [1, 2, 8] {
            let p = Partitioning::equi_depth(&sizes, n);
            p.validate(&sizes);
            let q = Partitioning::equi_width(&sizes, n);
            q.validate(&sizes);
        }
    }

    #[test]
    #[should_panic(expected = "sizes must be positive")]
    fn zero_size_rejected() {
        let _ = Partitioning::equi_depth(&[0, 1], 1);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_rejected() {
        let _ = Partitioning::equi_depth(&[1, 2], 0);
    }
}
