//! Batched query execution plumbing shared by every backend's
//! [`DomainIndex::search_batch`](crate::DomainIndex::search_batch)
//! override.
//!
//! The paper's deployment (§6.3) answers heavy multi-user traffic, and
//! the standard lever at that scale is amortization: probe each
//! partition once per *batch* while its forest is hot, reuse the dedup
//! scratch across queries, and pay the thread fan-out once per batch
//! instead of once per query. This module holds the backend-agnostic
//! pieces — the worker-lane chunking, the per-batch split of valid
//! threshold items from top-k and malformed queries, and the disjoint
//! sorted-run merge the sharded backends use — so each index only writes
//! its partition-outer sweep.
//!
//! Everything here is *semantics-preserving*: a batched execution must
//! return, per query, exactly the hits and deterministic
//! [`QueryStats`](crate::QueryStats) fields the looped single-query path
//! would (`wall_micros` is the one field that reports timing rather than
//! the answer, and under batching it carries the execution time
//! attributed to that query). The conformance and property suites pin
//! this equivalence for every backend.

use crate::api::{Query, QueryError, QueryMode, SearchOutcome};
use lshe_lsh::DomainId;
use lshe_minhash::Signature;

/// Runs `run` over contiguous chunks of `items` across worker lanes
/// spawned once per batch — the process-wide
/// [`lshe_minhash::lanes`] harness, which floors tiny batches to inline
/// execution, runs the first chunk on the calling thread, and draws
/// extra lanes from one shared budget so concurrent batches degrade
/// gracefully instead of multiplying threads across callers. `run` must
/// be a pure function of its chunk, so the chunking can never change
/// results.
pub(crate) use lshe_minhash::lanes::run_chunked as chunked;

/// One pre-validated threshold query of a batch: the borrowed signature,
/// the effective query cardinality, and the containment threshold.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ThresholdItem<'a> {
    /// The query signature (borrowed from the caller's [`Query`]).
    pub signature: &'a Signature,
    /// `|Q|` — supplied or estimated, exactly as the single path sees it.
    pub size: u64,
    /// The containment threshold `t*`.
    pub t_star: f64,
}

/// Splits a batch into per-query validation errors, top-k queries, and
/// runnable threshold items; runs `run_thresholds` ONCE over all the
/// threshold items (the amortized path) and `run_top_k` per top-k query;
/// reassembles everything in request order.
///
/// Validation runs per query with [`Query::validate_for`], so a
/// malformed query yields its [`QueryError`] in position without
/// affecting any other query — the same typed-error-never-a-panic
/// contract as [`DomainIndex::search`](crate::DomainIndex::search).
pub(crate) fn split_and_run<'q>(
    queries: &[Query<'q>],
    num_perm: usize,
    run_thresholds: impl FnOnce(&[ThresholdItem<'_>]) -> Vec<SearchOutcome>,
    mut run_top_k: impl FnMut(&Query<'q>, usize) -> Result<SearchOutcome, QueryError>,
) -> Vec<Result<SearchOutcome, QueryError>> {
    let mut results: Vec<Option<Result<SearchOutcome, QueryError>>> =
        Vec::with_capacity(queries.len());
    let mut items = Vec::new();
    let mut positions = Vec::new();
    for (i, query) in queries.iter().enumerate() {
        if let Err(e) = query.validate_for(num_perm) {
            results.push(Some(Err(e)));
            continue;
        }
        match query.mode() {
            QueryMode::Threshold(t_star) => {
                positions.push(i);
                items.push(ThresholdItem {
                    signature: query.signature(),
                    size: query.effective_size(),
                    t_star,
                });
                results.push(None);
            }
            QueryMode::TopK(k) => results.push(Some(run_top_k(query, k))),
        }
    }
    // Skip the amortized dispatch entirely when nothing runs through it
    // (an all-top-k or all-invalid batch): sharded backends would
    // otherwise spawn their per-shard threads for an empty sweep.
    let outcomes = if items.is_empty() {
        Vec::new()
    } else {
        run_thresholds(&items)
    };
    debug_assert_eq!(outcomes.len(), positions.len(), "one outcome per item");
    for (pos, outcome) in positions.into_iter().zip(outcomes) {
        results[pos] = Some(Ok(outcome));
    }
    results
        .into_iter()
        .map(|r| r.expect("every batch slot filled"))
        .collect()
}

/// Merges per-shard sorted id runs into one sorted unique list. Shards
/// hold disjoint id sets, so a pairwise sorted merge suffices — this is
/// the exact merge the single-query sharded path performs, factored out
/// so the batched path cannot drift from it. The `lshe-cluster`
/// coordinator reuses it to union per-shard wire results, hence `pub`.
///
/// Inputs MUST be disjoint: a duplicate id across runs means two shards
/// claim the same domain (a mis-placed split, or one container served
/// twice), and the union would silently under-count. Debug builds assert
/// on it; release builds keep the id once, matching the historical
/// behaviour.
#[must_use]
pub fn merge_sorted_disjoint(mut runs: Vec<Vec<DomainId>>) -> Vec<DomainId> {
    let mut merged = if runs.is_empty() {
        Vec::new()
    } else {
        runs.swap_remove(0)
    };
    for r in runs {
        let mut out = Vec::with_capacity(merged.len() + r.len());
        let (mut i, mut j) = (0, 0);
        while i < merged.len() && j < r.len() {
            match merged[i].cmp(&r[j]) {
                std::cmp::Ordering::Less => {
                    out.push(merged[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(r[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    debug_assert!(
                        false,
                        "merge_sorted_disjoint: id {} appears in two runs — shard inputs must be disjoint",
                        merged[i]
                    );
                    out.push(merged[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&merged[i..]);
        out.extend_from_slice(&r[j..]);
        merged = out;
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_matches_manual_union() {
        let merged = merge_sorted_disjoint(vec![vec![1, 4, 9], vec![2, 5], vec![3, 8, 10]]);
        assert_eq!(merged, vec![1, 2, 3, 4, 5, 8, 9, 10]);
        assert_eq!(merge_sorted_disjoint(Vec::new()), Vec::<DomainId>::new());
        assert_eq!(merge_sorted_disjoint(vec![vec![], vec![2]]), vec![2]);
    }

    #[test]
    fn merge_empty_shard_result_is_transparent() {
        // One shard answered nothing (e.g. no candidates): the union is
        // exactly the other shards' ids, in order.
        assert_eq!(
            merge_sorted_disjoint(vec![vec![3, 7], vec![], vec![1, 5]]),
            vec![1, 3, 5, 7]
        );
    }

    #[test]
    fn merge_single_shard_is_identity() {
        assert_eq!(merge_sorted_disjoint(vec![vec![2, 4, 6]]), vec![2, 4, 6]);
    }

    #[test]
    fn merge_all_empty_yields_empty() {
        assert_eq!(
            merge_sorted_disjoint(vec![vec![], vec![], vec![]]),
            Vec::<DomainId>::new()
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "shard inputs must be disjoint")]
    fn merge_rejects_duplicate_ids_across_runs() {
        // Id 4 claimed by two runs: a mis-placed split. Debug builds must
        // refuse rather than silently under-count the union.
        let _ = merge_sorted_disjoint(vec![vec![1, 4], vec![4, 9]]);
    }
}
