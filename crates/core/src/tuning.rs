//! Per-query `(b, r)` tuning of the dynamic LSH (§5.5, Eq. 22–26).
//!
//! Each partition's LSH Forest can be queried at any `(b ≤ b_max,
//! r ≤ r_max)`. For a query of size `q`, a partition with upper bound `u`,
//! and containment threshold `t*`, the probability that a domain with
//! containment `t` becomes a candidate is
//!
//! ```text
//! P(t | x, q, b, r) = 1 − (1 − ŝ_{x,q}(t)^r)^b        (Eq. 22)
//! ```
//!
//! The tuner numerically integrates the false-positive and false-negative
//! probability masses (Eq. 23–24) with `x` approximated by the partition
//! upper bound `u` (Eq. 26), and picks the grid point minimising their sum.
//! Because both integrals depend on `(x, q)` only through the ratio
//! `x / q`, results are memoised on a quantised log-ratio — the paper's
//! "pre-computed FP and FN" table, built lazily.

use lshe_minhash::hash::FastHashMap;
use parking_lot::RwLock;

/// Number of trapezoid intervals per integral. The integrand is smooth and
/// bounded by 1; 128 intervals keep the quadrature error orders of
/// magnitude below the decision boundaries between grid points.
const INTEGRATION_STEPS: usize = 128;

/// Probability of candidacy as a function of containment `t`, for a domain
/// of size `x = ratio·q` (Eq. 22). `ratio = x/q`.
///
/// # Panics
/// Panics if `b`/`r` are zero or `ratio` is not positive.
#[must_use]
pub fn candidate_probability_containment(t: f64, ratio: f64, b: u32, r: u32) -> f64 {
    assert!(b > 0 && r > 0, "banding parameters must be positive");
    assert!(ratio > 0.0, "size ratio must be positive");
    let denom = ratio + 1.0 - t;
    if denom <= 0.0 {
        return 1.0;
    }
    let s = (t / denom).clamp(0.0, 1.0);
    1.0 - (1.0 - s.powi(r as i32)).powi(b as i32)
}

fn trapezoid(lo: f64, hi: f64, f: impl Fn(f64) -> f64) -> f64 {
    if hi <= lo {
        return 0.0;
    }
    let h = (hi - lo) / INTEGRATION_STEPS as f64;
    let mut acc = 0.5 * (f(lo) + f(hi));
    for i in 1..INTEGRATION_STEPS {
        acc += f(lo + h * i as f64);
    }
    acc * h
}

/// False-positive probability mass (Eq. 23): candidates whose containment
/// falls below `t*`, integrated up to the reachable maximum `min(t*, x/q)`.
#[must_use]
pub fn false_positive_area(ratio: f64, t_star: f64, b: u32, r: u32) -> f64 {
    let hi = t_star.min(ratio);
    trapezoid(0.0, hi, |t| {
        candidate_probability_containment(t, ratio, b, r)
    })
}

/// False-negative probability mass (Eq. 24): non-candidates whose
/// containment meets `t*`, integrated over `[t*, min(1, x/q)]` (zero when
/// the partition cannot reach the threshold at all).
#[must_use]
pub fn false_negative_area(ratio: f64, t_star: f64, b: u32, r: u32) -> f64 {
    let hi = ratio.min(1.0);
    if hi < t_star {
        return 0.0;
    }
    trapezoid(t_star, hi, |t| {
        1.0 - candidate_probability_containment(t, ratio, b, r)
    })
}

/// A tuned banding configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunedParams {
    /// Number of prefix trees to consult.
    pub b: u32,
    /// Prefix depth.
    pub r: u32,
}

/// The `(b, r)` optimiser with its lazy memo table.
///
/// One tuner is shared by all partitions of an ensemble; it is cheap to
/// create and thread-safe (reads take a shared lock, inserts an exclusive
/// one).
#[derive(Debug)]
pub struct Tuner {
    b_max: u32,
    r_max: u32,
    /// (quantised ln ratio, quantised t*) → optimum.
    cache: RwLock<FastHashMap<(i32, u16), TunedParams>>,
}

impl Tuner {
    /// Quantisation step for `ln(x/q)`: 0.5% relative error in the ratio,
    /// far below the granularity at which the integer grid optimum moves.
    const LOG_RATIO_STEP: f64 = 0.005;

    /// Creates a tuner for the `(1..=b_max, 1..=r_max)` grid.
    ///
    /// # Panics
    /// Panics if either maximum is zero.
    #[must_use]
    pub fn new(b_max: u32, r_max: u32) -> Self {
        assert!(b_max > 0 && r_max > 0, "grid must be non-empty");
        Self {
            b_max,
            r_max,
            cache: RwLock::new(FastHashMap::default()),
        }
    }

    /// Largest `b` in the grid.
    #[must_use]
    pub fn b_max(&self) -> u32 {
        self.b_max
    }

    /// Largest `r` in the grid.
    #[must_use]
    pub fn r_max(&self) -> u32 {
        self.r_max
    }

    /// Number of memoised optima so far.
    #[must_use]
    pub fn cache_len(&self) -> usize {
        self.cache.read().len()
    }

    /// Exhaustive grid minimisation of `FP + FN` (Eq. 26), uncached.
    #[must_use]
    pub fn optimize_uncached(&self, ratio: f64, t_star: f64) -> TunedParams {
        assert!(ratio > 0.0, "size ratio must be positive");
        assert!((0.0..=1.0).contains(&t_star), "threshold must be in [0, 1]");
        let mut best = TunedParams { b: 1, r: 1 };
        let mut best_cost = f64::INFINITY;
        for r in 1..=self.r_max {
            for b in 1..=self.b_max {
                let cost = false_positive_area(ratio, t_star, b, r)
                    + false_negative_area(ratio, t_star, b, r);
                if cost < best_cost {
                    best_cost = cost;
                    best = TunedParams { b, r };
                }
            }
        }
        best
    }

    /// Memoised optimisation: the partition upper bound `u` plays the role
    /// of `x` (Eq. 26), `q` is the query size.
    ///
    /// # Panics
    /// Panics on zero sizes or out-of-range threshold.
    #[must_use]
    pub fn optimize(&self, u: u64, q: u64, t_star: f64) -> TunedParams {
        assert!(u > 0 && q > 0, "sizes must be positive");
        let ratio = u as f64 / q as f64;
        let key = (
            (ratio.ln() / Self::LOG_RATIO_STEP).round() as i32,
            (t_star * 1000.0).round() as u16,
        );
        if let Some(&hit) = self.cache.read().get(&key) {
            return hit;
        }
        // Recompute at the quantised ratio so every query mapping to this
        // key gets a consistent answer.
        let snapped = (f64::from(key.0) * Self::LOG_RATIO_STEP).exp();
        let params = self.optimize_uncached(snapped, t_star);
        self.cache.write().insert(key, params);
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_curve_shape_fig3() {
        // Figure 3's setting: x = 10, q = 5, b = 256, r = 4, t* = 0.5.
        // The curve must rise steeply around the implied threshold.
        let ratio = 2.0;
        let p_low = candidate_probability_containment(0.1, ratio, 256, 4);
        let p_mid = candidate_probability_containment(0.5, ratio, 256, 4);
        let p_high = candidate_probability_containment(0.9, ratio, 256, 4);
        assert!(p_low < 0.35, "p(0.1) = {p_low}");
        assert!(p_high > 0.95, "p(0.9) = {p_high}");
        assert!(p_low < p_mid && p_mid < p_high);
    }

    #[test]
    fn probability_monotone_in_t() {
        let mut prev = 0.0;
        for i in 0..=50 {
            let t = f64::from(i) / 50.0;
            let p = candidate_probability_containment(t, 3.0, 32, 4);
            assert!(p >= prev - 1e-12);
            prev = p;
        }
    }

    #[test]
    fn areas_are_probability_masses() {
        for &(ratio, t) in &[(1.0f64, 0.5f64), (10.0, 0.3), (0.5, 0.8), (100.0, 0.99)] {
            for &(b, r) in &[(1u32, 1u32), (32, 8), (8, 2)] {
                let fp = false_positive_area(ratio, t, b, r);
                let fnn = false_negative_area(ratio, t, b, r);
                assert!((0.0..=1.0).contains(&fp), "fp {fp}");
                assert!((0.0..=1.0).contains(&fnn), "fn {fnn}");
            }
        }
    }

    #[test]
    fn fn_zero_when_partition_cannot_reach_threshold() {
        // ratio = x/q = 0.3 < t* = 0.5: no domain here can satisfy t*.
        assert_eq!(false_negative_area(0.3, 0.5, 16, 4), 0.0);
    }

    #[test]
    fn more_bands_trade_fn_for_fp() {
        let (ratio, t) = (2.0, 0.5);
        let fp_few = false_positive_area(ratio, t, 2, 4);
        let fp_many = false_positive_area(ratio, t, 32, 4);
        let fn_few = false_negative_area(ratio, t, 2, 4);
        let fn_many = false_negative_area(ratio, t, 32, 4);
        assert!(fp_many > fp_few, "fp: {fp_many} vs {fp_few}");
        assert!(fn_many < fn_few, "fn: {fn_many} vs {fn_few}");
    }

    #[test]
    fn optimum_beats_fixed_corners() {
        let tuner = Tuner::new(32, 8);
        for &(ratio, t) in &[(1.5f64, 0.5f64), (20.0, 0.8), (3.0, 0.2)] {
            let opt = tuner.optimize_uncached(ratio, t);
            let opt_cost = false_positive_area(ratio, t, opt.b, opt.r)
                + false_negative_area(ratio, t, opt.b, opt.r);
            for &(b, r) in &[(1u32, 1u32), (32u32, 8u32), (1, 8), (32, 1)] {
                let c = false_positive_area(ratio, t, b, r) + false_negative_area(ratio, t, b, r);
                assert!(
                    opt_cost <= c + 1e-12,
                    "ratio={ratio} t={t}: opt {opt_cost} vs ({b},{r}) {c}"
                );
            }
        }
    }

    #[test]
    fn higher_threshold_prefers_deeper_prefixes() {
        // Sharper thresholds need more selective bands (higher r, or fewer
        // bands). Compare selectivity via the implied Jaccard threshold.
        let tuner = Tuner::new(32, 8);
        let loose = tuner.optimize_uncached(2.0, 0.2);
        let sharp = tuner.optimize_uncached(2.0, 0.9);
        let sel = |p: TunedParams| (1.0 / f64::from(p.b)).powf(1.0 / f64::from(p.r));
        assert!(
            sel(sharp) > sel(loose),
            "sharp {sharp:?} vs loose {loose:?}"
        );
    }

    #[test]
    fn cached_matches_uncached_at_snapped_ratio() {
        let tuner = Tuner::new(32, 8);
        let p1 = tuner.optimize(1000, 50, 0.5);
        assert_eq!(tuner.cache_len(), 1);
        let p2 = tuner.optimize(1000, 50, 0.5);
        assert_eq!(p1, p2);
        assert_eq!(tuner.cache_len(), 1);
        // A within-quantum perturbation hits the same cache entry.
        let p3 = tuner.optimize(1001, 50, 0.5);
        assert_eq!(p1, p3);
        assert_eq!(tuner.cache_len(), 1);
    }

    #[test]
    fn tuner_respects_grid_bounds() {
        let tuner = Tuner::new(4, 2);
        for &(u, q, t) in &[(100u64, 10u64, 0.5f64), (10, 100, 0.9), (1000, 1, 0.1)] {
            let p = tuner.optimize(u, q, t);
            assert!(p.b >= 1 && p.b <= 4);
            assert!(p.r >= 1 && p.r <= 2);
        }
    }

    #[test]
    fn integral_matches_closed_form_for_r1_b1() {
        // With b = r = 1, P(t) = s(t) = t/(ratio+1-t). FP area over [0, t*]
        // has the closed form: ∫ t/(c - t) dt = -t - c·ln(c - t), with
        // c = ratio + 1.
        let (ratio, t_star) = (2.0f64, 0.6f64);
        let c = ratio + 1.0;
        let closed = -t_star - c * ((c - t_star).ln() - c.ln());
        let numeric = false_positive_area(ratio, t_star, 1, 1);
        assert!(
            (closed - numeric).abs() < 1e-4,
            "closed {closed} vs numeric {numeric}"
        );
    }

    #[test]
    #[should_panic(expected = "grid must be non-empty")]
    fn empty_grid_rejected() {
        let _ = Tuner::new(0, 8);
    }
}
