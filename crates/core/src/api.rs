//! The unified query surface: one object-safe trait over every index.
//!
//! The paper treats LSH Ensemble as *one* domain-search operator and
//! evaluates it against interchangeable alternatives — MinHash LSH, LSH
//! Forest, and Asymmetric Minwise Hashing (§6.1) — under identical query
//! rules. This module gives the workspace the same shape: a typed
//! [`Query`] (signature + size + [`QueryMode`]) goes in, a
//! [`SearchOutcome`] (hits + optional containment estimates + per-query
//! [`QueryStats`]) comes out, and every index — the ensemble, the ranked
//! and sharded variants, the baselines, and the exact ground-truth engine
//! — answers through the same [`DomainIndex`] trait.
//!
//! Because the trait is object safe, callers that must pick a backend at
//! runtime (the server's snapshot engine, the CLI, the experiment
//! harness) hold a `Box<dyn DomainIndex>` and never match on concrete
//! types.
//!
//! ```
//! use lshe_core::{DomainIndex, LshEnsemble, Query};
//! use lshe_minhash::MinHasher;
//!
//! let hasher = MinHasher::new(256);
//! let pool = MinHasher::synthetic_values(1, 300);
//! let mut builder = LshEnsemble::builder();
//! for (id, n) in [(0u32, 100usize), (1, 200), (2, 300)] {
//!     builder.add(id, n as u64, hasher.signature(pool[..n].iter().copied()));
//! }
//! let index: Box<dyn DomainIndex> = Box::new(builder.build());
//!
//! let sig = hasher.signature(pool[..100].iter().copied());
//! let outcome = index
//!     .search(&Query::threshold(&sig, 0.5).with_size(100))
//!     .expect("valid query");
//! assert!(outcome.hits.iter().any(|h| h.id == 0));
//! assert!(outcome.stats.partitions_probed <= outcome.stats.partitions_total);
//! ```

use crate::ensemble::{EnsembleConfig, LshEnsemble, PartitionStats};
use crate::ranked::{merge_unique, skew_exceeds, RankedIndex};
use crate::sharded::ShardedEnsemble;
use crate::tuning::Tuner;
use lshe_lsh::{DomainId, LshForest};
use lshe_minhash::Signature;
use std::sync::Arc;
use std::time::Instant;

/// Slack applied when pruning candidates by *estimated* containment:
/// estimates are noisy at roughly ±1/√m, so candidates whose estimate
/// falls just below the threshold are kept rather than dropped. Shared by
/// [`RankedIndex`], [`ShardedRanked`], and the serve layer.
pub const ESTIMATE_SLACK: f64 = 0.1;

/// What a query asks for: everything past a containment threshold, or the
/// `k` best domains by estimated containment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryMode {
    /// Threshold search (Eq. 2): all domains with `t(Q, X) ⪆ t*`.
    Threshold(f64),
    /// Top-k search: the `k` best domains by estimated containment.
    /// Requires a backend that retains per-domain sketches.
    TopK(usize),
}

/// A typed domain-search query, built in builder style:
///
/// ```
/// # use lshe_core::Query;
/// # use lshe_minhash::MinHasher;
/// let hasher = MinHasher::new(256);
/// let sig = hasher.signature(MinHasher::synthetic_values(1, 50));
/// let q = Query::threshold(&sig, 0.7).with_size(50).with_parallel(true);
/// assert_eq!(q.size(), Some(50));
/// ```
///
/// The signature is borrowed, so building a query never copies sketch
/// data. When no size is supplied the index estimates `|Q|` from the
/// signature (`approx(|Q|)`, §5.1).
#[derive(Debug, Clone)]
pub struct Query<'a> {
    signature: &'a Signature,
    size: Option<u64>,
    mode: QueryMode,
    parallel: bool,
    hashes: Option<&'a [u64]>,
}

impl<'a> Query<'a> {
    /// A threshold query at containment threshold `t_star`.
    #[must_use]
    pub fn threshold(signature: &'a Signature, t_star: f64) -> Self {
        Self {
            signature,
            size: None,
            mode: QueryMode::Threshold(t_star),
            parallel: false,
            hashes: None,
        }
    }

    /// A top-k query for the `k` best domains.
    #[must_use]
    pub fn top_k(signature: &'a Signature, k: usize) -> Self {
        Self {
            signature,
            size: None,
            mode: QueryMode::TopK(k),
            parallel: false,
            hashes: None,
        }
    }

    /// Sets the exact query cardinality `|Q|` (otherwise estimated from
    /// the signature).
    #[must_use]
    pub fn with_size(mut self, size: u64) -> Self {
        self.size = Some(size);
        self
    }

    /// Parallelism hint: ask the backend to fan the query out across its
    /// partitions/shards with one thread each. Backends without an
    /// internal parallel path ignore the hint.
    #[must_use]
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Attaches the query's raw universe hashes. Only exact (ground-truth)
    /// backends need them; sketch-based indexes ignore them.
    #[must_use]
    pub fn with_hashes(mut self, hashes: &'a [u64]) -> Self {
        self.hashes = Some(hashes);
        self
    }

    /// The query signature.
    #[must_use]
    pub fn signature(&self) -> &Signature {
        self.signature
    }

    /// The caller-supplied exact size, if any.
    #[must_use]
    pub fn size(&self) -> Option<u64> {
        self.size
    }

    /// The query mode.
    #[must_use]
    pub fn mode(&self) -> QueryMode {
        self.mode
    }

    /// The parallelism hint.
    #[must_use]
    pub fn parallel(&self) -> bool {
        self.parallel
    }

    /// The raw universe hashes, if attached.
    #[must_use]
    pub fn hashes(&self) -> Option<&[u64]> {
        self.hashes
    }

    /// The query cardinality: the supplied size, or the signature's
    /// estimate (never 0).
    #[must_use]
    pub fn effective_size(&self) -> u64 {
        self.size
            .unwrap_or_else(|| self.signature.cardinality().round().max(1.0) as u64)
    }

    /// Validates the query against an index of signature width `num_perm`.
    ///
    /// # Errors
    /// [`QueryError::Invalid`] on a width mismatch, an out-of-range
    /// threshold, `k == 0`, or an explicit size of 0.
    pub fn validate_for(&self, num_perm: usize) -> Result<(), QueryError> {
        if self.signature.len() != num_perm {
            return Err(QueryError::Invalid(format!(
                "signature width mismatch: query has {}, index expects {num_perm}",
                self.signature.len()
            )));
        }
        if self.size == Some(0) {
            return Err(QueryError::Invalid("query size must be positive".into()));
        }
        match self.mode {
            QueryMode::Threshold(t) if !(0.0..=1.0).contains(&t) => Err(QueryError::Invalid(
                format!("containment threshold must be in [0, 1], got {t}"),
            )),
            QueryMode::TopK(0) => Err(QueryError::Invalid("k must be positive".into())),
            _ => Ok(()),
        }
    }
}

/// Default equi-depth rebalance trigger: commit rebuilds partitions (and
/// shards) from retained sketches once the fullest partition holds more
/// than this multiple of the mean partition population. §6.2 argues plain
/// boundary growth stays *correct* indefinitely (upper bounds only grow,
/// so conversion stays conservative), but precision decays with skew —
/// this is the point where a sketch-retaining index pays for a rebuild.
pub const DEFAULT_REBALANCE_TRIGGER: f64 = 4.0;

/// Why a mutation could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutationError {
    /// The id is already indexed (ids must stay unique).
    DuplicateId(DomainId),
    /// The id is not indexed (removal of an unknown or already-removed
    /// domain).
    UnknownId(DomainId),
    /// The mutation itself is malformed (zero size, signature width
    /// mismatch).
    Invalid(String),
}

impl std::fmt::Display for MutationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DuplicateId(id) => write!(f, "duplicate domain id {id}"),
            Self::UnknownId(id) => write!(f, "unknown domain id {id}"),
            Self::Invalid(msg) => write!(f, "invalid mutation: {msg}"),
        }
    }
}

impl std::error::Error for MutationError {}

/// What one [`MutableIndex::commit`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommitReport {
    /// Staged inserts folded into the sorted runs by this commit.
    pub merged: usize,
    /// Whether the commit rebuilt partitions/shards from retained sketches
    /// because equi-depth skew passed the rebalance trigger.
    pub rebalanced: bool,
    /// Whether a non-empty staged delta was sealed into a segment.
    pub sealed: bool,
    /// Sealed segments outstanding after this commit (0 right after a
    /// rebalance or [`MutableIndex::compact`]).
    pub segments: usize,
    /// Tombstoned ids outstanding after this commit.
    pub tombstones: usize,
}

/// Outstanding tiered-mutation state: how far the index has drifted from
/// its compacted base layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegmentStats {
    /// Sealed segments awaiting compaction (summed across shards).
    pub segments: usize,
    /// Tombstoned ids awaiting compaction (summed across shards).
    pub tombstones: usize,
}

/// Compaction policy: fold segments into the base once the stack is this
/// deep. Each outstanding segment adds partitions to the query sweep, so
/// the stack is kept shallow.
pub const MAX_SEGMENTS: usize = 8;

/// Compaction policy: fold once tombstones exceed this fraction of the
/// live corpus (dead rows dilute every candidate set until erased).
pub const MAX_TOMBSTONE_RATIO: f64 = 0.25;

/// True if [`SegmentStats`] has drifted far enough that a compaction is
/// worth scheduling, per the default thresholds. Deployments with tuned
/// thresholds use [`crate::CompactionThresholds::exceeded`] directly.
#[must_use]
pub fn needs_compaction(stats: SegmentStats, len: usize) -> bool {
    crate::maintenance::CompactionThresholds::default().exceeded(stats, len)
}

/// The mutation surface over an index: dynamic data, §6.2.
///
/// Inserts are *staged* — immediately queryable through each forest's
/// unsorted tail, folded into the sorted runs by [`commit`](Self::commit).
/// Removes apply eagerly (the id disappears from queries at once). Ids
/// must stay unique; every mutation is validated and returns a typed
/// [`MutationError`] rather than panicking.
///
/// Backends that retain per-domain sketches ([`crate::RankedIndex`],
/// [`ShardedRanked`]) additionally *rebalance* on commit: when the fullest
/// partition drifts past the configured trigger multiple of the mean
/// population, the equi-depth partitioning (and shard assignment) is
/// rebuilt from the sketches, restoring the freshly-built layout. Plain
/// backends grow their boundary partitions conservatively instead — upper
/// bounds only grow, so threshold conversion never produces new false
/// negatives (the paper's dynamic-data argument).
///
/// The trait is object safe: the server's ingestion path holds
/// `&mut dyn MutableIndex`.
pub trait MutableIndex: DomainIndex {
    /// Stages one new domain. Immediately queryable.
    ///
    /// # Errors
    /// [`MutationError::DuplicateId`] if the id is already indexed,
    /// [`MutationError::Invalid`] on a zero size or a signature width
    /// mismatch.
    fn insert(
        &mut self,
        id: DomainId,
        size: u64,
        signature: &Signature,
    ) -> Result<(), MutationError>;

    /// Removes one domain. Takes effect immediately (no commit needed).
    ///
    /// # Errors
    /// [`MutationError::UnknownId`] if the id is not indexed.
    fn remove(&mut self, id: DomainId) -> Result<(), MutationError>;

    /// Seals the staged delta into an immutable segment — O(staged delta),
    /// never O(corpus). Sketch-retaining backends additionally rebalance
    /// (a full rebuild from sketches) when equi-depth skew passed their
    /// trigger; with the default trigger that stays the rare escape hatch,
    /// not the steady-state commit cost.
    fn commit(&mut self) -> CommitReport;

    /// Number of staged (not yet committed) inserts.
    fn staged_len(&self) -> usize;

    /// Folds every sealed segment back into the base and erases
    /// tombstoned rows — the O(corpus) step, off the commit path. Seals
    /// any staged delta first so nothing is lost. The default forwards to
    /// [`commit`](Self::commit) for backends without tiered state.
    fn compact(&mut self) -> CommitReport {
        self.commit()
    }

    /// Outstanding segment/tombstone counts. Defaults to zero for
    /// backends without tiered state.
    fn segment_stats(&self) -> SegmentStats {
        SegmentStats::default()
    }

    /// The tier layout a [`crate::MergePolicy`] plans against:
    /// per-segment entry counts plus tombstone backlog. The default
    /// (backends without tiered state) reports segments of unknown (zero)
    /// size from [`segment_stats`](Self::segment_stats).
    fn segment_layout(&self) -> crate::SegmentLayout {
        let stats = self.segment_stats();
        crate::SegmentLayout {
            segments: vec![0; stats.segments],
            tombstones: stats.tombstones,
            len: self.len(),
        }
    }

    /// Executes one planned [`crate::MergeTask`] incrementally:
    /// [`MergeTask::Merge`](crate::MergeTask::Merge) folds only the listed
    /// segments into one new sealed segment (O(folded entries), base
    /// untouched), [`MergeTask::Full`](crate::MergeTask::Full) behaves
    /// like [`compact`](Self::compact). The default treats every task as
    /// a full compaction — tiered backends override the partial path.
    fn apply_merge(&mut self, task: &crate::MergeTask) -> crate::MergeOutcome {
        let _ = task;
        let folded = self.len();
        let report = self.compact();
        crate::MergeOutcome {
            entries_folded: folded,
            segments: report.segments,
            tombstones: report.tombstones,
        }
    }
}

/// Why a query could not be answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query itself is malformed (bad threshold, zero k/size, wrong
    /// signature width).
    Invalid(String),
    /// The backend cannot answer this query shape (e.g. top-k on an index
    /// that retains no sketches, or an exact search without raw values).
    Unsupported(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Invalid(msg) => write!(f, "invalid query: {msg}"),
            Self::Unsupported(msg) => write!(f, "unsupported query: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// One answer: the domain id, plus the estimated containment `t̂(Q, X)`
/// when the backend retains enough state to compute one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// The candidate domain.
    pub id: DomainId,
    /// Estimated (or, for exact backends, true) containment, when known.
    pub estimate: Option<f64>,
}

/// Per-query execution counters, for observability and tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryStats {
    /// Partitions whose LSH was actually consulted (skip-pruned ones are
    /// excluded; for top-k the maximum over descent passes).
    pub partitions_probed: usize,
    /// Total partitions across the index (summed over shards).
    pub partitions_total: usize,
    /// Raw candidates generated by the LSH before dedup/post-filtering.
    pub candidates: usize,
    /// Hits surviving dedup and any estimate post-filter (= `hits.len()`).
    pub survivors: usize,
    /// Execution time of the search, in microseconds. For a single
    /// [`DomainIndex::search`] this is plain wall time; under
    /// [`DomainIndex::search_batch`] it is the execution time *attributed
    /// to this query* within the batch (its probes, dedup, and ranking),
    /// so per-query cost stays meaningful when many queries interleave.
    pub wall_micros: u64,
}

/// The result of one [`DomainIndex::search`].
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The answer set. Backends with estimates sort by estimate
    /// (descending, ties by id); others sort by id (ascending).
    pub hits: Vec<SearchHit>,
    /// Execution counters for this query.
    pub stats: QueryStats,
}

impl SearchOutcome {
    /// Assembles an outcome from finished hits and probe counters, by the
    /// shared convention: `survivors = hits.len()`, wall time measured
    /// from `started`. Every backend builds its outcome through here.
    #[must_use]
    pub fn new(
        hits: Vec<SearchHit>,
        partitions_probed: usize,
        partitions_total: usize,
        candidates: usize,
        started: Instant,
    ) -> Self {
        let survivors = hits.len();
        Self {
            hits,
            stats: QueryStats {
                partitions_probed,
                partitions_total,
                candidates,
                survivors,
                wall_micros: started.elapsed().as_micros() as u64,
            },
        }
    }

    /// The hit ids, in outcome order.
    #[must_use]
    pub fn ids(&self) -> Vec<DomainId> {
        self.hits.iter().map(|h| h.id).collect()
    }

    /// The hits as `(id, estimate)` pairs, in outcome order.
    #[must_use]
    pub fn into_pairs(self) -> Vec<(DomainId, Option<f64>)> {
        self.hits.into_iter().map(|h| (h.id, h.estimate)).collect()
    }
}

/// Internal probe counters threaded out of the instrumented query paths.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ProbeCounts {
    /// Partitions consulted.
    pub probed: usize,
    /// Partitions in the index.
    pub total: usize,
    /// Raw candidates before dedup.
    pub candidates: usize,
}

/// Builds a [`SearchOutcome`] from finished hits plus probe counters
/// (crate-internal shorthand over [`SearchOutcome::new`]).
pub(crate) fn outcome_from_hits(
    hits: Vec<SearchHit>,
    probe: ProbeCounts,
    started: Instant,
) -> SearchOutcome {
    SearchOutcome::new(hits, probe.probed, probe.total, probe.candidates, started)
}

/// Builds a [`SearchOutcome`] from plain (unestimated) candidate ids.
pub(crate) fn outcome_from_ids(
    ids: Vec<DomainId>,
    probe: ProbeCounts,
    started: Instant,
) -> SearchOutcome {
    let hits = ids
        .into_iter()
        .map(|id| SearchHit { id, estimate: None })
        .collect();
    outcome_from_hits(hits, probe, started)
}

/// Builds a [`SearchOutcome`] with an explicit execution time in
/// nanoseconds — the batched paths accumulate per-query time across the
/// partition-outer sweep instead of bracketing one `Instant`.
pub(crate) fn outcome_from_hits_timed(
    hits: Vec<SearchHit>,
    probe: ProbeCounts,
    nanos: u64,
) -> SearchOutcome {
    let survivors = hits.len();
    SearchOutcome {
        hits,
        stats: QueryStats {
            partitions_probed: probe.probed,
            partitions_total: probe.total,
            candidates: probe.candidates,
            survivors,
            wall_micros: nanos / 1_000,
        },
    }
}

/// [`outcome_from_hits_timed`] over plain candidate ids.
pub(crate) fn outcome_from_ids_timed(
    ids: Vec<DomainId>,
    probe: ProbeCounts,
    nanos: u64,
) -> SearchOutcome {
    let hits = ids
        .into_iter()
        .map(|id| SearchHit { id, estimate: None })
        .collect();
    outcome_from_hits_timed(hits, probe, nanos)
}

/// The shared top-k strategy: descend through containment thresholds
/// (1.0, 0.9, …, 0.0), querying the backend via `query_at`, until at
/// least `k` distinct candidates accumulate. Probe counters follow the
/// top-k convention — candidates sum across passes, partitions probed is
/// the per-pass maximum (so it stays ≤ total).
pub(crate) fn top_k_descend(
    k: usize,
    mut query_at: impl FnMut(f64) -> (Vec<DomainId>, ProbeCounts),
) -> (Vec<DomainId>, ProbeCounts) {
    let mut seen: Vec<DomainId> = Vec::new();
    let mut probe = ProbeCounts::default();
    for step in (0..=10u32).rev() {
        let t = f64::from(step) / 10.0;
        let (cands, p) = query_at(t);
        probe.probed = probe.probed.max(p.probed);
        probe.total = p.total;
        probe.candidates += p.candidates;
        // per-pass results are sorted; merge-dedup against `seen`.
        seen = merge_unique(&seen, &cands);
        if seen.len() >= k || step == 0 {
            break;
        }
    }
    (seen, probe)
}

/// One query surface over every index in the workspace.
///
/// The trait is object safe (`Box<dyn DomainIndex>` is how the server,
/// the CLI, and the benches hold their backend) and `Send + Sync`, so a
/// boxed index can be shared across worker threads behind an `Arc`.
pub trait DomainIndex: std::fmt::Debug + Send + Sync {
    /// Answers one query.
    ///
    /// # Errors
    /// [`QueryError::Invalid`] for malformed queries and
    /// [`QueryError::Unsupported`] for query shapes the backend cannot
    /// answer — never a panic.
    fn search(&self, query: &Query<'_>) -> Result<SearchOutcome, QueryError>;

    /// Answers a batch of queries, one result per query in request order.
    ///
    /// The default implementation is the plain loop over
    /// [`search`](Self::search). Backends with a real batched execution
    /// path override it to amortize work across the batch: partitions and
    /// shards are probed once per batch (while their forests are hot),
    /// dedup scratch is reused across queries, and thread fan-out happens
    /// once per batch instead of once per query.
    ///
    /// Overrides are *semantically identical* to the loop: each query
    /// yields exactly the hits and deterministic [`QueryStats`] fields the
    /// single-query path would (`wall_micros` reports the execution time
    /// attributed to that query). A malformed or unsupported query yields
    /// its [`QueryError`] in position without affecting the other queries
    /// — never a panic, never a whole-batch failure.
    fn search_batch(&self, queries: &[Query<'_>]) -> Vec<Result<SearchOutcome, QueryError>> {
        queries.iter().map(|q| self.search(q)).collect()
    }

    /// Number of indexed domains.
    fn len(&self) -> usize;

    /// True if the index holds no domains.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap memory of the index, in bytes.
    fn memory_bytes(&self) -> usize;

    /// One-line human-readable description (used as the series label by
    /// the experiment harness).
    fn describe(&self) -> String;
}

impl<T: DomainIndex + ?Sized> DomainIndex for Arc<T> {
    fn search(&self, query: &Query<'_>) -> Result<SearchOutcome, QueryError> {
        (**self).search(query)
    }

    fn search_batch(&self, queries: &[Query<'_>]) -> Vec<Result<SearchOutcome, QueryError>> {
        (**self).search_batch(queries)
    }

    fn len(&self) -> usize {
        (**self).len()
    }

    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }

    fn describe(&self) -> String {
        (**self).describe()
    }
}

// --------------------------------------------------------------- ForestIndex

/// A single LSH Forest behind the unified surface: the dynamic-LSH
/// building block (§5.5) promoted to a standalone backend, with threshold
/// conversion through the *global* maximum domain size — i.e. MinHash LSH
/// over one forest, without partitioning.
///
/// Unlike [`baseline_minhash_lsh`](crate::baseline_minhash_lsh) (a
/// single-partition ensemble), this adapter exposes the forest directly
/// and stays mutable: [`insert`](Self::insert) then
/// [`commit`](Self::commit), exactly the forest's own lifecycle.
#[derive(Debug)]
pub struct ForestIndex {
    forest: LshForest,
    tuner: Tuner,
    config: EnsembleConfig,
    max_size: u64,
}

impl ForestIndex {
    /// An empty forest-backed index with the given configuration
    /// (`strategy` is ignored — a forest has one partition).
    ///
    /// # Panics
    /// Panics on an invalid configuration (`b_max·r_max > num_perm`).
    #[must_use]
    pub fn new(config: EnsembleConfig) -> Self {
        // Reuse the ensemble's validation by constructing a builder.
        let _ = crate::ensemble::LshEnsembleBuilder::new(config);
        Self {
            forest: LshForest::new(config.b_max, config.r_max),
            tuner: Tuner::new(config.b_max as u32, config.r_max as u32),
            config,
            max_size: 0,
        }
    }

    /// Inserts one domain; immediately queryable (staged-tail scan).
    ///
    /// # Panics
    /// Panics if `size == 0` or the signature width differs from the
    /// configuration.
    pub fn insert(&mut self, id: DomainId, size: u64, signature: &Signature) {
        assert!(size > 0, "domain size must be positive");
        assert_eq!(
            signature.len(),
            self.config.num_perm,
            "signature width mismatch"
        );
        self.max_size = self.max_size.max(size);
        self.forest.insert(id, signature);
    }

    /// Folds staged inserts into the sorted runs.
    pub fn commit(&mut self) {
        self.forest.commit();
    }

    /// The global size upper bound used for threshold conversion.
    #[must_use]
    pub fn max_size(&self) -> u64 {
        self.max_size
    }

    /// One threshold probe against the forest, filling `buf` with the
    /// sorted-unique candidates — the single shared core of
    /// [`search`](DomainIndex::search) and
    /// [`search_batch`](DomainIndex::search_batch), so the two can never
    /// drift. Outcome assembly stays with the callers: the single path
    /// moves the buffer out, the batched path clones it so one buffer's
    /// capacity serves the whole batch.
    fn probe_threshold(
        &self,
        signature: &Signature,
        size: u64,
        t_star: f64,
        buf: &mut Vec<DomainId>,
    ) -> ProbeCounts {
        buf.clear();
        if self.forest.is_empty() {
            return ProbeCounts::default();
        }
        let params = self.tuner.optimize(self.max_size, size, t_star);
        self.forest
            .query_into(signature, params.b as usize, params.r as usize, buf);
        let candidates = buf.len();
        buf.sort_unstable();
        buf.dedup();
        ProbeCounts {
            probed: 1,
            total: 1,
            candidates,
        }
    }
}

impl DomainIndex for ForestIndex {
    fn search(&self, query: &Query<'_>) -> Result<SearchOutcome, QueryError> {
        query.validate_for(self.config.num_perm)?;
        let QueryMode::Threshold(t_star) = query.mode() else {
            return Err(QueryError::Unsupported(
                "top-k needs retained sketches; use a RankedIndex".into(),
            ));
        };
        let started = Instant::now();
        let mut buf = Vec::new();
        let probe =
            self.probe_threshold(query.signature(), query.effective_size(), t_star, &mut buf);
        Ok(outcome_from_ids(buf, probe, started))
    }

    fn search_batch(&self, queries: &[Query<'_>]) -> Vec<Result<SearchOutcome, QueryError>> {
        crate::batch::split_and_run(
            queries,
            self.config.num_perm,
            |items| {
                // Single forest: no fan-out to amortize, but the probe
                // buffer and the tuner's memo table stay hot across the
                // whole batch.
                let mut buf: Vec<DomainId> = Vec::new();
                items
                    .iter()
                    .map(|item| {
                        let started = Instant::now();
                        let probe =
                            self.probe_threshold(item.signature, item.size, item.t_star, &mut buf);
                        outcome_from_ids(buf.clone(), probe, started)
                    })
                    .collect()
            },
            |_, _| {
                Err(QueryError::Unsupported(
                    "top-k needs retained sketches; use a RankedIndex".into(),
                ))
            },
        )
    }

    fn len(&self) -> usize {
        self.forest.len()
    }

    fn memory_bytes(&self) -> usize {
        self.forest.memory_bytes()
    }

    fn describe(&self) -> String {
        format!("LSH Forest ({}×{})", self.config.b_max, self.config.r_max)
    }
}

// ------------------------------------------------------------- ShardedRanked

/// A [`ShardedEnsemble`] paired with the retained sketches of a
/// [`RankedIndex`]: the paper's §6.3 fan-out/union topology *with*
/// containment estimates and top-k — the backend the server uses for
/// `--shards N`.
///
/// The sketches are shared (`Arc`), not copied: the shards borrow them at
/// build time and the estimate pass looks them up per candidate.
#[derive(Debug)]
pub struct ShardedRanked {
    shards: ShardedEnsemble,
    ranked: Arc<RankedIndex>,
    config: EnsembleConfig,
    rebalance_trigger: f64,
}

impl ShardedRanked {
    /// Splits the ranked index's domains round-robin across `num_shards`
    /// freshly built shards (zero-copy: signatures are borrowed from the
    /// retained sketches).
    ///
    /// # Panics
    /// Panics if `num_shards == 0` or the ranked index holds fewer domains
    /// than shards.
    #[must_use]
    pub fn build(ranked: Arc<RankedIndex>, num_shards: usize, config: EnsembleConfig) -> Self {
        let entries = ranked.sketch_entries();
        let ids: Vec<DomainId> = entries.iter().map(|&(id, _, _)| id).collect();
        let sizes: Vec<u64> = entries.iter().map(|&(_, size, _)| size).collect();
        let sigs: Vec<&Signature> = entries.iter().map(|&(_, _, sig)| sig).collect();
        let shards = ShardedEnsemble::build_from_parts(num_shards, config, &ids, &sizes, &sigs);
        drop(entries);
        Self {
            shards,
            ranked,
            config,
            rebalance_trigger: DEFAULT_REBALANCE_TRIGGER,
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.num_shards()
    }

    /// The underlying shards.
    #[must_use]
    pub fn shards(&self) -> &ShardedEnsemble {
        &self.shards
    }

    /// True if `id` is currently indexed.
    #[must_use]
    pub fn contains(&self, id: DomainId) -> bool {
        self.ranked.contains(id)
    }

    /// Sets the equi-depth skew multiple past which a commit rebuilds the
    /// shard assignment (and the ranked index's partitioning) from the
    /// retained sketches. Values ≤ 1.0 rebalance on every post-mutation
    /// commit; the default is [`DEFAULT_REBALANCE_TRIGGER`].
    pub fn set_rebalance_trigger(&mut self, trigger: f64) {
        self.rebalance_trigger = trigger;
        Arc::make_mut(&mut self.ranked).set_rebalance_trigger(trigger);
    }

    /// Typed insert: retains the sketch (copy-on-write on the shared
    /// ranked index) and routes the domain to shard `id % num_shards`.
    ///
    /// # Errors
    /// As [`RankedIndex::try_insert`].
    pub fn try_insert(
        &mut self,
        id: DomainId,
        size: u64,
        signature: &Signature,
    ) -> Result<(), MutationError> {
        Arc::make_mut(&mut self.ranked).try_insert(id, size, signature)?;
        self.shards.try_insert(id, size, signature)
    }

    /// Typed removal from both the sketch store and the owning shard.
    ///
    /// # Errors
    /// [`MutationError::UnknownId`] if the id is not indexed.
    pub fn try_remove(&mut self, id: DomainId) -> Result<(), MutationError> {
        Arc::make_mut(&mut self.ranked).try_remove(id)?;
        self.shards.try_remove(id)
    }

    /// Folds staged inserts on every shard (and in the ranked index), then
    /// rebuilds the whole shard assignment from the retained sketches when
    /// partition-population skew passed the trigger — restoring exactly
    /// the layout a fresh [`build`](Self::build) on the current corpus
    /// would produce.
    pub fn commit(&mut self) -> CommitReport {
        let merged = self.shards.staged_len();
        let ranked_report = Arc::make_mut(&mut self.ranked).commit();
        let shard_report = self.shards.commit();
        let rebalanced = self.maybe_rebalance();
        let stats = self.segment_stats();
        CommitReport {
            merged,
            rebalanced: rebalanced || ranked_report.rebalanced,
            sealed: shard_report.sealed,
            segments: stats.segments,
            tombstones: stats.tombstones,
        }
    }

    /// Forces the O(corpus) merge on every tier: seals any staged delta,
    /// then rebuilds the shard assignment from the retained sketches (the
    /// same path a triggered rebalance takes), leaving zero outstanding
    /// segments and tombstones. Falls back to per-shard in-place folding
    /// when the corpus is smaller than the shard count.
    pub fn compact(&mut self) -> CommitReport {
        let merged = self.shards.staged_len();
        let ranked_report = Arc::make_mut(&mut self.ranked).compact();
        let shard_report = self.shards.commit();
        let rebalanced = if self.ranked.len() < self.shards.num_shards() {
            self.shards.compact();
            false
        } else {
            let entries = self.ranked.sketch_entries();
            let ids: Vec<DomainId> = entries.iter().map(|&(id, _, _)| id).collect();
            let sizes: Vec<u64> = entries.iter().map(|&(_, size, _)| size).collect();
            let sigs: Vec<&Signature> = entries.iter().map(|&(_, _, sig)| sig).collect();
            let rebuilt = ShardedEnsemble::build_from_parts(
                self.shards.num_shards(),
                self.config,
                &ids,
                &sizes,
                &sigs,
            );
            drop((entries, ids, sizes, sigs));
            self.shards = rebuilt;
            true
        };
        let stats = self.segment_stats();
        CommitReport {
            merged,
            rebalanced: rebalanced || ranked_report.rebalanced,
            sealed: shard_report.sealed,
            segments: stats.segments,
            tombstones: stats.tombstones,
        }
    }

    /// Outstanding segments/tombstones summed over the query-side shards.
    #[must_use]
    pub fn segment_stats(&self) -> SegmentStats {
        self.shards.segment_stats()
    }

    /// Number of staged inserts on the query (shard) side.
    #[must_use]
    pub fn staged_len(&self) -> usize {
        self.shards.staged_len()
    }

    fn maybe_rebalance(&mut self) -> bool {
        // Base partitions only: sealed segments are transient and must not
        // read as drift (see `RankedIndex::maybe_rebalance`).
        let stats: Vec<PartitionStats> = self
            .shards
            .shards()
            .iter()
            .flat_map(LshEnsemble::base_partition_stats)
            .collect();
        if !skew_exceeds(&stats, self.shards.len(), self.rebalance_trigger) {
            return false;
        }
        if self.ranked.len() < self.shards.num_shards() {
            return false; // cannot split fewer domains than shards
        }
        let entries = self.ranked.sketch_entries();
        let ids: Vec<DomainId> = entries.iter().map(|&(id, _, _)| id).collect();
        let sizes: Vec<u64> = entries.iter().map(|&(_, size, _)| size).collect();
        let sigs: Vec<&Signature> = entries.iter().map(|&(_, _, sig)| sig).collect();
        let rebuilt = ShardedEnsemble::build_from_parts(
            self.shards.num_shards(),
            self.config,
            &ids,
            &sizes,
            &sigs,
        );
        drop((entries, ids, sizes, sigs));
        self.shards = rebuilt;
        true
    }
}

impl MutableIndex for ShardedRanked {
    fn insert(
        &mut self,
        id: DomainId,
        size: u64,
        signature: &Signature,
    ) -> Result<(), MutationError> {
        self.try_insert(id, size, signature)
    }

    fn remove(&mut self, id: DomainId) -> Result<(), MutationError> {
        self.try_remove(id)
    }

    fn commit(&mut self) -> CommitReport {
        ShardedRanked::commit(self)
    }

    fn staged_len(&self) -> usize {
        ShardedRanked::staged_len(self)
    }

    fn compact(&mut self) -> CommitReport {
        ShardedRanked::compact(self)
    }

    fn segment_stats(&self) -> SegmentStats {
        ShardedRanked::segment_stats(self)
    }

    fn segment_layout(&self) -> crate::SegmentLayout {
        self.shards.segment_layout()
    }

    fn apply_merge(&mut self, task: &crate::MergeTask) -> crate::MergeOutcome {
        let entries_folded = match task {
            crate::MergeTask::Merge(idxs) => {
                // Both tiers fold: the shards answer queries, the ranked
                // sketch store keeps its own (positionally parallel)
                // stack from shrinking without bound.
                Arc::make_mut(&mut self.ranked).merge_segments(idxs);
                self.shards.merge_segments(idxs)
            }
            crate::MergeTask::Full => {
                let folded = self.ranked.len();
                ShardedRanked::compact(self);
                folded
            }
        };
        let stats = self.segment_stats();
        crate::MergeOutcome {
            entries_folded,
            segments: stats.segments,
            tombstones: stats.tombstones,
        }
    }
}

impl ShardedRanked {
    /// Attaches estimates from the retained sketches, prunes below
    /// `t_star − ESTIMATE_SLACK`, sorts by estimate descending.
    fn rank_and_prune(
        &self,
        ids: Vec<DomainId>,
        signature: &Signature,
        q: u64,
        t_star: f64,
    ) -> Vec<SearchHit> {
        let mut hits: Vec<SearchHit> = self
            .ranked
            .rank_candidates(ids, signature, q)
            .into_iter()
            .filter(|h| h.estimated_containment >= t_star - ESTIMATE_SLACK)
            .map(|h| SearchHit {
                id: h.id,
                estimate: Some(h.estimated_containment),
            })
            .collect();
        // rank_candidates already sorts descending; keep as-is.
        hits.shrink_to_fit();
        hits
    }

    /// The shared top-k descent, fanned out across the shards per pass —
    /// one code path for [`search`](DomainIndex::search) and
    /// [`search_batch`](DomainIndex::search_batch) so they can never
    /// drift.
    fn top_k_outcome(&self, query: &Query<'_>, k: usize) -> SearchOutcome {
        let started = Instant::now();
        let q = query.effective_size();
        let (seen, probe) =
            top_k_descend(k, |t| self.shards.query_counted(query.signature(), q, t));
        let mut hits: Vec<SearchHit> = self
            .ranked
            .rank_candidates(seen, query.signature(), q)
            .into_iter()
            .map(|h| SearchHit {
                id: h.id,
                estimate: Some(h.estimated_containment),
            })
            .collect();
        hits.truncate(k);
        outcome_from_hits(hits, probe, started)
    }
}

impl DomainIndex for ShardedRanked {
    fn search(&self, query: &Query<'_>) -> Result<SearchOutcome, QueryError> {
        query.validate_for(self.ranked.ensemble().config().num_perm)?;
        let started = Instant::now();
        let q = query.effective_size();
        match query.mode() {
            QueryMode::Threshold(t_star) => {
                let (ids, probe) = self.shards.query_counted(query.signature(), q, t_star);
                let hits = self.rank_and_prune(ids, query.signature(), q, t_star);
                Ok(outcome_from_hits(hits, probe, started))
            }
            QueryMode::TopK(k) => Ok(self.top_k_outcome(query, k)),
        }
    }

    fn search_batch(&self, queries: &[Query<'_>]) -> Vec<Result<SearchOutcome, QueryError>> {
        crate::batch::split_and_run(
            queries,
            self.ranked.ensemble().config().num_perm,
            |items| {
                // One shard fan-out for the whole batch, then per-query
                // ranking from the shared sketches.
                items
                    .iter()
                    .zip(self.shards.batch_query_counted(items))
                    .map(|(item, (ids, probe, mut nanos))| {
                        let started = Instant::now();
                        let hits = self.rank_and_prune(ids, item.signature, item.size, item.t_star);
                        nanos += started.elapsed().as_nanos() as u64;
                        crate::api::outcome_from_hits_timed(hits, probe, nanos)
                    })
                    .collect()
            },
            |query, k| Ok(self.top_k_outcome(query, k)),
        )
    }

    fn len(&self) -> usize {
        self.shards.len()
    }

    fn memory_bytes(&self) -> usize {
        // The sketches are shared with the ranked index, but this backend
        // keeps them alive, so count both the shards and the sketch heap.
        self.shards.memory_bytes() + self.ranked.sketch_memory_bytes()
    }

    fn describe(&self) -> String {
        format!(
            "Sharded LSH Ensemble ({} shards, ranked)",
            self.shards.num_shards()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::LshEnsemble;
    use crate::partition::PartitionStrategy;
    use crate::ranked::RankedIndexBuilder;
    use lshe_minhash::MinHasher;

    fn nested(n: usize) -> (MinHasher, Vec<(DomainId, u64, Signature)>) {
        let h = MinHasher::new(256);
        let pool = MinHasher::synthetic_values(5, 25 * n);
        let entries = (0..n)
            .map(|k| {
                let vals = &pool[..25 * (k + 1)];
                (
                    k as DomainId,
                    vals.len() as u64,
                    h.signature(vals.iter().copied()),
                )
            })
            .collect();
        (h, entries)
    }

    fn config(parts: usize) -> EnsembleConfig {
        EnsembleConfig {
            strategy: PartitionStrategy::EquiDepth { n: parts },
            ..EnsembleConfig::default()
        }
    }

    #[test]
    fn query_builder_roundtrip() {
        let h = MinHasher::new(256);
        let sig = h.signature(MinHasher::synthetic_values(1, 40));
        let hashes = [1u64, 2, 3];
        let q = Query::threshold(&sig, 0.7)
            .with_size(40)
            .with_parallel(true)
            .with_hashes(&hashes);
        assert_eq!(q.size(), Some(40));
        assert_eq!(q.effective_size(), 40);
        assert!(q.parallel());
        assert_eq!(q.hashes(), Some(&hashes[..]));
        assert_eq!(q.mode(), QueryMode::Threshold(0.7));
        assert!(q.validate_for(256).is_ok());
    }

    #[test]
    fn query_size_estimated_when_absent() {
        let h = MinHasher::new(256);
        let sig = h.signature(MinHasher::synthetic_values(1, 100));
        let q = Query::threshold(&sig, 0.5);
        let est = q.effective_size();
        assert!((80..=120).contains(&est), "estimate {est} far from 100");
    }

    #[test]
    fn validation_catches_bad_queries() {
        let h = MinHasher::new(64);
        let sig = h.signature([1u64, 2, 3]);
        assert!(matches!(
            Query::threshold(&sig, 0.5).validate_for(256),
            Err(QueryError::Invalid(_))
        ));
        assert!(matches!(
            Query::threshold(&sig, 1.5).validate_for(64),
            Err(QueryError::Invalid(_))
        ));
        assert!(matches!(
            Query::top_k(&sig, 0).validate_for(64),
            Err(QueryError::Invalid(_))
        ));
        assert!(matches!(
            Query::threshold(&sig, 0.5).with_size(0).validate_for(64),
            Err(QueryError::Invalid(_))
        ));
    }

    #[test]
    fn forest_index_finds_self_and_reports_stats() {
        let (h, entries) = nested(12);
        let mut idx = ForestIndex::new(EnsembleConfig::default());
        for (id, size, sig) in &entries {
            idx.insert(*id, *size, sig);
        }
        idx.commit();
        assert_eq!(DomainIndex::len(&idx), 12);
        assert!(idx.memory_bytes() > 0);
        assert_eq!(idx.max_size(), 300);
        let (_, size, sig) = &entries[4];
        let out = idx
            .search(&Query::threshold(sig, 0.8).with_size(*size))
            .expect("search");
        assert!(out.hits.iter().any(|hit| hit.id == 4));
        assert_eq!(out.stats.partitions_total, 1);
        assert_eq!(out.stats.partitions_probed, 1);
        assert!(out.stats.candidates >= out.stats.survivors);
        assert_eq!(out.stats.survivors, out.hits.len());
        // Top-k is unsupported without sketches.
        assert!(matches!(
            idx.search(&Query::top_k(sig, 3).with_size(*size)),
            Err(QueryError::Unsupported(_))
        ));
        let _ = h;
    }

    #[test]
    fn empty_forest_index_returns_nothing() {
        let idx = ForestIndex::new(EnsembleConfig::default());
        let h = MinHasher::new(256);
        let sig = h.signature([1u64, 2, 3]);
        let out = idx
            .search(&Query::threshold(&sig, 0.5).with_size(3))
            .expect("search");
        assert!(out.hits.is_empty());
        assert!(DomainIndex::is_empty(&idx));
    }

    #[test]
    fn sharded_ranked_threshold_and_topk() {
        let (_, entries) = nested(24);
        let mut b = RankedIndexBuilder::new(config(4));
        for (id, size, sig) in &entries {
            b.add(*id, *size, sig.clone());
        }
        let ranked = Arc::new(b.build());
        let idx = ShardedRanked::build(Arc::clone(&ranked), 3, config(2));
        assert_eq!(idx.num_shards(), 3);
        assert_eq!(DomainIndex::len(&idx), 24);

        let (_, size, sig) = &entries[7];
        let out = idx
            .search(&Query::threshold(sig, 0.8).with_size(*size))
            .expect("search");
        assert!(out.hits.iter().any(|h| h.id == 7), "self hit missing");
        for h in &out.hits {
            let e = h.estimate.expect("sharded-ranked attaches estimates");
            assert!((0.0..=1.0).contains(&e));
        }
        for w in out.hits.windows(2) {
            assert!(w[0].estimate >= w[1].estimate, "not sorted by estimate");
        }
        assert!(out.stats.partitions_probed <= out.stats.partitions_total);

        let top = idx
            .search(&Query::top_k(sig, 5).with_size(*size))
            .expect("topk");
        assert_eq!(top.hits.len(), 5);
        assert_eq!(top.hits[0].id, 7, "self match must rank first");
    }

    #[test]
    fn sharded_ranked_mutation_is_cow_and_rebalances() {
        let (h, entries) = nested(24);
        let mut b = RankedIndexBuilder::new(config(4));
        for (id, size, sig) in &entries {
            b.add(*id, *size, sig.clone());
        }
        let ranked = Arc::new(b.build());
        let mut idx = ShardedRanked::build(Arc::clone(&ranked), 3, config(2));

        // Insert + remove through the trait; the shared ranked index must
        // stay untouched (copy-on-write).
        let vals = MinHasher::synthetic_values(31, 75);
        let sig = h.signature(vals.iter().copied());
        MutableIndex::insert(&mut idx, 400, 75, &sig).expect("insert");
        assert!(idx.contains(400));
        assert!(!ranked.contains(400), "shared Arc mutated in place");
        MutableIndex::remove(&mut idx, 2).expect("remove");
        assert!(ranked.contains(2), "shared Arc mutated in place");
        assert_eq!(idx.len(), 24);

        // Staged insert immediately visible with an estimate.
        let out = idx
            .search(&Query::threshold(&sig, 0.9).with_size(75))
            .expect("search");
        let own = out.hits.iter().find(|hh| hh.id == 400).expect("self hit");
        assert!(own.estimate.expect("estimate") > 0.9);

        // Typed duplicate/unknown errors.
        assert_eq!(
            idx.try_insert(400, 75, &sig),
            Err(MutationError::DuplicateId(400))
        );
        assert_eq!(idx.try_remove(2), Err(MutationError::UnknownId(2)));

        // Forced rebalance reproduces a fresh build on the final corpus.
        idx.set_rebalance_trigger(0.0);
        let report = MutableIndex::commit(&mut idx);
        assert_eq!(report.merged, 1);
        assert!(report.rebalanced);
        assert_eq!(MutableIndex::staged_len(&idx), 0);
        let fresh = {
            let mut b = RankedIndexBuilder::new(config(4));
            for (id, size, sig) in &entries {
                if *id != 2 {
                    b.add(*id, *size, sig.clone());
                }
            }
            b.add(400, 75, h.signature(vals.iter().copied()));
            ShardedRanked::build(Arc::new(b.build()), 3, config(2))
        };
        for (qid, qsize, qsig) in entries.iter().filter(|(id, _, _)| *id != 2) {
            let a = idx
                .search(&Query::threshold(qsig, 0.7).with_size(*qsize))
                .expect("mutated");
            let b = fresh
                .search(&Query::threshold(qsig, 0.7).with_size(*qsize))
                .expect("fresh");
            assert_eq!(a.hits, b.hits, "divergence at query {qid}");
        }
    }

    #[test]
    fn arc_and_box_dispatch() {
        let (_, entries) = nested(8);
        let mut b = LshEnsemble::builder_with(config(2));
        for (id, size, sig) in &entries {
            b.add(*id, *size, sig.clone());
        }
        let arc: Arc<LshEnsemble> = Arc::new(b.build());
        let boxed: Box<dyn DomainIndex> = Box::new(Arc::clone(&arc));
        assert_eq!(boxed.len(), 8);
        assert!(!boxed.is_empty());
        assert!(boxed.memory_bytes() > 0);
        let (_, size, sig) = &entries[2];
        let out = boxed
            .search(&Query::threshold(sig, 0.9).with_size(*size))
            .expect("search");
        assert!(out.ids().contains(&2));
    }

    #[test]
    fn query_error_display() {
        let e = QueryError::Invalid("k must be positive".into());
        assert!(e.to_string().contains("invalid query"));
        let e = QueryError::Unsupported("no sketches".into());
        assert!(e.to_string().contains("unsupported query"));
    }
}
