//! The false-positive cost model of §5.3 (Propositions 1–2).
//!
//! Filtering a partition `[l, u]` at the conservative Jaccard threshold
//! `s* = ŝ_{u,q}(t*)` admits domains whose containment lies in `[t_x, t*)`.
//! Assuming containment uniform on `[0, 1]` and sizes uniform within the
//! partition, the expected number of such false positives is bounded by
//!
//! ```text
//! N^FP_{l,u} ≤ N_{l,u} · (u − l + 1) / (2u)          (Eq. 13 / Eq. 16)
//! ```
//!
//! This bound is what the optimal partitioner equalises across partitions
//! (Theorem 1) and what Theorem 2 shows is equalised by equi-depth
//! partitioning under a power law.

use crate::convert::effective_threshold;

/// Probability that a domain of size `x` in partition `[l, u]` is a false
/// positive under query size `q` and threshold `t_star` (Eq. 11 extended to
/// the five cases of the Proposition 2 proof).
///
/// The containment of `X` is assumed uniform on `[0, min(1, x/q)]`; the
/// domain is a false positive when its containment falls in
/// `[t_x, min(t*, x/q))`.
///
/// # Panics
/// Panics on zero sizes, `x > u`, or out-of-range threshold.
#[must_use]
pub fn fp_probability(t_star: f64, x: u64, u: u64, q: u64) -> f64 {
    assert!(x > 0 && u > 0 && q > 0, "sizes must be positive");
    assert!(x <= u, "domain size must not exceed the partition bound");
    assert!((0.0..=1.0).contains(&t_star), "threshold must be in [0, 1]");
    if t_star == 0.0 {
        return 0.0; // every candidate is a true positive at t* = 0
    }
    let tx = effective_threshold(t_star, x, u, q);
    let max_t = (x as f64 / q as f64).min(1.0); // containment cannot exceed x/q
                                                // The FP window is [t_x, t*) clipped to the reachable containment range.
    let window = (t_star.min(max_t) - tx).max(0.0);
    // Containment uniform on [0, max_t] ⇒ probability = window / max_t,
    // which at max_t = 1 reduces to the paper's (t* − t_x)/t*·t*  = t*−t_x …
    // the paper normalises by t* (uniform over [0,1] conditioned on being
    // below t*); we keep the unconditional form and normalise by max_t.
    if max_t <= 0.0 {
        0.0
    } else {
        (window / max_t).clamp(0.0, 1.0)
    }
}

/// Upper bound on the expected number of false positives in a partition of
/// `n` domains with size bounds `[l, u]` (Eq. 16):
/// `M = n · (u − l + 1) / (2u)`.
///
/// # Panics
/// Panics if `l == 0` or `l > u`.
#[must_use]
pub fn fp_upper_bound(n: usize, l: u64, u: u64) -> f64 {
    assert!(l > 0, "lower bound must be positive");
    assert!(l <= u, "partition range must be non-empty");
    n as f64 * ((u - l + 1) as f64) / (2.0 * u as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp_probability_zero_at_partition_top() {
        // x = u ⇒ t_x = t* ⇒ the FP window vanishes.
        assert!(fp_probability(0.5, 100, 100, 10) < 1e-12);
    }

    #[test]
    fn fp_probability_grows_as_x_shrinks_below_u() {
        let mut prev = 0.0;
        for x in [100u64, 80, 60, 40, 20] {
            let p = fp_probability(0.5, x, 100, 10);
            assert!(p >= prev, "x={x}: {p} < {prev}");
            prev = p;
        }
    }

    #[test]
    fn fp_probability_zero_threshold() {
        assert_eq!(fp_probability(0.0, 50, 100, 10), 0.0);
    }

    #[test]
    fn fp_probability_in_unit_interval() {
        for t in [0.1, 0.5, 0.9, 1.0] {
            for &(x, u, q) in &[
                (1u64, 1000u64, 1u64),
                (10, 20, 100),
                (5, 5, 5),
                (3, 900, 30),
            ] {
                let p = fp_probability(t, x, u, q);
                assert!((0.0..=1.0).contains(&p), "t={t} x={x} u={u} q={q}: {p}");
            }
        }
    }

    #[test]
    fn fp_probability_case_small_domain_below_effective_threshold() {
        // Case 3/5 of the proof: when x/q < t_x the window clips to zero.
        // x = 1, q = 100, u = 1000, t* = 0.9: max_t = 0.01,
        // t_x = 101·0.9/1100 ≈ 0.083 > max_t ⇒ probability 0.
        assert_eq!(fp_probability(0.9, 1, 1000, 100), 0.0);
    }

    #[test]
    fn eq16_bound_dominates_expected_fp_under_uniform_sizes() {
        // Monte-Carlo check of Proposition 2: average fp_probability over
        // sizes uniform in [l, u] must stay below the closed-form bound
        // when u ≫ q (the tight case the paper analyses).
        let (l, u, q, t) = (200u64, 1000u64, 5u64, 0.5);
        let n = 2000usize;
        let mean: f64 = (0..n)
            .map(|i| {
                let x = l + (u - l) * i as u64 / (n as u64 - 1);
                fp_probability(t, x, u, q)
            })
            .sum::<f64>()
            / n as f64;
        let bound = fp_upper_bound(n, l, u) / n as f64;
        assert!(
            mean <= bound + 1e-9,
            "mean fp {mean} exceeds per-domain bound {bound}"
        );
    }

    #[test]
    fn fp_upper_bound_shrinks_with_narrower_partitions() {
        // Eq. 16 at full width [1, u] ≈ n/2; a thin top slice is far less.
        let wide = fp_upper_bound(1000, 1, 1000);
        let thin = fp_upper_bound(1000, 900, 1000);
        assert!(wide > 490.0 && wide < 510.0);
        assert!(thin < 60.0);
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn oversized_x_rejected() {
        let _ = fp_probability(0.5, 101, 100, 10);
    }
}
