//! The two baselines of the paper's evaluation (§6.1), implemented under
//! the same "fair comparison" rules the paper applies:
//!
//! > "all the indexes including MinHash LSH and Asymmetric Minwise Hashing
//! > are implemented to use the dynamic LSH algorithm for containment
//! > search described in Section 5.5, and the upper bound of domain sizes
//! > is used to convert containment threshold to Jaccard similarity
//! > threshold as described in Section 5.1."
//!
//! * [`baseline_minhash_lsh`] — the *MinHash LSH baseline*: exactly an LSH
//!   Ensemble with a single partition (global upper bound, dynamic tuning).
//! * [`AsymIndex`] — *Asymmetric Minwise Hashing*: signatures padded to the
//!   corpus maximum `M`, one dynamic LSH, conversion through `M` (Eq. 31).
//! * [`AsymPartitionedIndex`] — the §6.1 ablation: Asymmetric Minwise
//!   Hashing *inside each partition* (padding to the partition bound).

use crate::api::{
    outcome_from_ids, DomainIndex, ProbeCounts, Query, QueryError, QueryMode, SearchOutcome,
};
use crate::ensemble::{EnsembleConfig, LshEnsemble, LshEnsembleBuilder};
use crate::partition::{PartitionStrategy, Partitioning};
use crate::tuning::Tuner;
use lshe_asym::{pad_signature, PaddingSampler};
use lshe_lsh::{DomainId, LshForest};
use lshe_minhash::hash::FastHashSet;
use lshe_minhash::Signature;

/// Builds the paper's MinHash LSH baseline: a single-partition ensemble.
/// The only difference from a partitioned ensemble is that the threshold
/// conversion and tuning see the *global* maximum domain size.
#[must_use]
pub fn baseline_minhash_lsh(config: &EnsembleConfig) -> LshEnsembleBuilder {
    LshEnsemble::builder_with(EnsembleConfig {
        strategy: PartitionStrategy::Single,
        ..*config
    })
}

/// The pre-`DomainIndex` query interface, kept for the experiment harness
/// and downstream callers. Every [`DomainIndex`] gets it for free via the
/// blanket bridge below, so the two surfaces can never drift apart.
///
/// The bridge can only express signature-driven threshold queries: a
/// backend needing more (e.g. the exact index, which wants the raw query
/// values) returns a typed error through [`DomainIndex::search`] and
/// therefore **panics** here with that error's message — use
/// [`DomainIndex`] directly for such backends.
pub trait ContainmentSearch: Sync {
    /// Candidate ids for a query signature of (estimated or exact) size
    /// `query_size` at containment threshold `t_star`, sorted ascending.
    ///
    /// # Panics
    /// Via the blanket bridge: panics if the underlying [`DomainIndex`]
    /// cannot answer a plain threshold query (see the trait docs).
    fn search(&self, signature: &Signature, query_size: u64, t_star: f64) -> Vec<DomainId>;

    /// Human-readable label for reports.
    fn label(&self) -> String;
}

impl<T: DomainIndex + ?Sized> ContainmentSearch for T {
    fn search(&self, signature: &Signature, query_size: u64, t_star: f64) -> Vec<DomainId> {
        let query = Query::threshold(signature, t_star).with_size(query_size);
        let mut ids = DomainIndex::search(self, &query)
            .unwrap_or_else(|e| panic!("ContainmentSearch bridge: {e}"))
            .ids();
        ids.sort_unstable();
        ids
    }

    fn label(&self) -> String {
        self.describe()
    }
}

/// Asymmetric Minwise Hashing over one dynamic LSH (padding to the global
/// maximum domain size).
#[derive(Debug)]
pub struct AsymIndex {
    forest: LshForest,
    tuner: Tuner,
    max_size: u64,
    num_perm: usize,
    len: usize,
}

/// Builder for [`AsymIndex`].
#[derive(Debug)]
pub struct AsymIndexBuilder {
    config: EnsembleConfig,
    sampler: PaddingSampler,
    entries: Vec<(DomainId, u64, Signature)>,
}

impl AsymIndexBuilder {
    /// Creates a builder; `config.strategy` is ignored (Asym is unpartitioned).
    #[must_use]
    pub fn new(config: EnsembleConfig) -> Self {
        Self {
            config,
            sampler: PaddingSampler::with_seed(PaddingSampler::DEFAULT_SEED),
            entries: Vec::new(),
        }
    }

    /// Stages one domain.
    ///
    /// # Panics
    /// Panics if `size == 0` or signature width mismatches.
    pub fn add(&mut self, id: DomainId, size: u64, signature: Signature) {
        assert!(size > 0, "domain size must be positive");
        assert_eq!(
            signature.len(),
            self.config.num_perm,
            "signature width mismatch"
        );
        self.entries.push((id, size, signature));
    }

    /// Number of staged domains.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is staged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Pads every signature to the corpus maximum and builds the index.
    ///
    /// # Panics
    /// Panics if the builder is empty.
    #[must_use]
    pub fn build(self) -> AsymIndex {
        assert!(!self.entries.is_empty(), "cannot build an empty index");
        let max_size = self
            .entries
            .iter()
            .map(|&(_, s, _)| s)
            .max()
            .expect("non-empty");
        let mut forest = LshForest::new(self.config.b_max, self.config.r_max);
        for (id, size, sig) in &self.entries {
            let padded = pad_signature(sig, u64::from(*id), *size, max_size, &self.sampler);
            forest.insert(*id, &padded);
        }
        forest.commit();
        AsymIndex {
            forest,
            tuner: Tuner::new(self.config.b_max as u32, self.config.r_max as u32),
            max_size,
            num_perm: self.config.num_perm,
            len: self.entries.len(),
        }
    }
}

impl AsymIndex {
    /// A builder with the default ensemble configuration.
    #[must_use]
    pub fn builder() -> AsymIndexBuilder {
        AsymIndexBuilder::new(EnsembleConfig::default())
    }

    /// The padding target `M` (corpus maximum size).
    #[must_use]
    pub fn max_size(&self) -> u64 {
        self.max_size
    }

    /// Number of indexed domains.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Containment query: the *unpadded* query signature against padded
    /// domains; tuning and threshold conversion use `M` (Eq. 31).
    ///
    /// # Panics
    /// Panics on zero query size, out-of-range threshold, or width mismatch.
    #[must_use]
    pub fn query_with_size(
        &self,
        signature: &Signature,
        query_size: u64,
        t_star: f64,
    ) -> Vec<DomainId> {
        assert!(query_size > 0, "query size must be positive");
        assert!((0.0..=1.0).contains(&t_star), "threshold must be in [0, 1]");
        assert_eq!(signature.len(), self.num_perm, "signature width mismatch");
        self.query_counted(signature, query_size, t_star).0
    }

    /// Instrumented query: sorted-unique ids plus probe counters. Both the
    /// inherent path and the [`DomainIndex`] impl funnel through here.
    fn query_counted(
        &self,
        signature: &Signature,
        query_size: u64,
        t_star: f64,
    ) -> (Vec<DomainId>, ProbeCounts) {
        let params = self.tuner.optimize(self.max_size, query_size, t_star);
        let mut buf = Vec::new();
        self.forest
            .query_into(signature, params.b as usize, params.r as usize, &mut buf);
        let candidates = buf.len();
        buf.sort_unstable();
        buf.dedup();
        (
            buf,
            ProbeCounts {
                probed: 1,
                total: 1,
                candidates,
            },
        )
    }
}

impl DomainIndex for AsymIndex {
    fn search(&self, query: &Query<'_>) -> Result<SearchOutcome, QueryError> {
        query.validate_for(self.num_perm)?;
        let QueryMode::Threshold(t_star) = query.mode() else {
            return Err(QueryError::Unsupported(
                "top-k needs retained sketches; use a RankedIndex".into(),
            ));
        };
        let started = std::time::Instant::now();
        let (ids, probe) = self.query_counted(query.signature(), query.effective_size(), t_star);
        Ok(outcome_from_ids(ids, probe, started))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn memory_bytes(&self) -> usize {
        self.forest.memory_bytes()
    }

    fn describe(&self) -> String {
        "Asym".to_owned()
    }
}

/// Asymmetric Minwise Hashing combined with equi-depth partitioning — the
/// variant §6.1 reports as giving "a slight improvement in precision" but
/// "no significant improvements in recall".
#[derive(Debug)]
pub struct AsymPartitionedIndex {
    partitions: Vec<AsymPartition>,
    tuner: Tuner,
    num_perm: usize,
    len: usize,
}

#[derive(Debug)]
struct AsymPartition {
    upper: u64,
    forest: LshForest,
}

impl AsymPartitionedIndex {
    /// Builds from staged `(id, size, signature)` entries with `n`
    /// equi-depth partitions; each partition pads to its own upper bound.
    ///
    /// # Panics
    /// Panics if `entries` is empty, `n == 0`, or widths mismatch.
    #[must_use]
    pub fn build(
        config: &EnsembleConfig,
        n: usize,
        entries: &[(DomainId, u64, Signature)],
    ) -> Self {
        assert!(!entries.is_empty(), "cannot build an empty index");
        let sampler = PaddingSampler::with_seed(PaddingSampler::DEFAULT_SEED);
        let sizes: Vec<u64> = entries.iter().map(|&(_, s, _)| s).collect();
        let partitioning = Partitioning::equi_depth(&sizes, n);
        let partitions = partitioning
            .parts()
            .iter()
            .map(|p| {
                let mut forest = LshForest::new(config.b_max, config.r_max);
                for &idx in &p.members {
                    let (id, size, ref sig) = entries[idx as usize];
                    let padded = pad_signature(sig, u64::from(id), size, p.upper, &sampler);
                    forest.insert(id, &padded);
                }
                forest.commit();
                AsymPartition {
                    upper: p.upper,
                    forest,
                }
            })
            .collect();
        Self {
            partitions,
            tuner: Tuner::new(config.b_max as u32, config.r_max as u32),
            num_perm: config.num_perm,
            len: entries.len(),
        }
    }

    /// Number of indexed domains.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Containment query across all partitions (padding-aware conversion
    /// with each partition's upper bound).
    ///
    /// # Panics
    /// Panics on invalid query inputs, as the other indexes.
    #[must_use]
    pub fn query_with_size(
        &self,
        signature: &Signature,
        query_size: u64,
        t_star: f64,
    ) -> Vec<DomainId> {
        assert!(query_size > 0, "query size must be positive");
        assert!((0.0..=1.0).contains(&t_star), "threshold must be in [0, 1]");
        assert_eq!(signature.len(), self.num_perm, "signature width mismatch");
        self.query_counted(signature, query_size, t_star).0
    }

    /// Instrumented query: sorted-unique ids plus probe counters.
    fn query_counted(
        &self,
        signature: &Signature,
        query_size: u64,
        t_star: f64,
    ) -> (Vec<DomainId>, ProbeCounts) {
        let mut probe = ProbeCounts {
            probed: 0,
            total: self.partitions.len(),
            candidates: 0,
        };
        let mut set = FastHashSet::default();
        let mut buf = Vec::new();
        for p in &self.partitions {
            if (p.upper as f64) < t_star * query_size as f64 {
                continue;
            }
            let params = self.tuner.optimize(p.upper, query_size, t_star);
            buf.clear();
            self.forest_query(p, signature, params.b as usize, params.r as usize, &mut buf);
            probe.probed += 1;
            probe.candidates += buf.len();
            set.extend(buf.iter().copied());
        }
        let mut v: Vec<DomainId> = set.into_iter().collect();
        v.sort_unstable();
        (v, probe)
    }

    fn forest_query(
        &self,
        p: &AsymPartition,
        sig: &Signature,
        b: usize,
        r: usize,
        out: &mut Vec<DomainId>,
    ) {
        p.forest.query_into(sig, b, r, out);
    }
}

impl DomainIndex for AsymPartitionedIndex {
    fn search(&self, query: &Query<'_>) -> Result<SearchOutcome, QueryError> {
        query.validate_for(self.num_perm)?;
        let QueryMode::Threshold(t_star) = query.mode() else {
            return Err(QueryError::Unsupported(
                "top-k needs retained sketches; use a RankedIndex".into(),
            ));
        };
        let started = std::time::Instant::now();
        let (ids, probe) = self.query_counted(query.signature(), query.effective_size(), t_star);
        Ok(outcome_from_ids(ids, probe, started))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn memory_bytes(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| p.forest.memory_bytes())
            .sum()
    }

    fn describe(&self) -> String {
        format!("Asym + partitioning ({})", self.partitions.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshe_minhash::MinHasher;

    #[allow(clippy::type_complexity)]
    fn nested_entries(n: usize) -> (MinHasher, Vec<(DomainId, u64, Signature)>, Vec<Vec<u64>>) {
        let h = MinHasher::new(256);
        let pool = MinHasher::synthetic_values(7, 20 * n);
        let mut entries = Vec::new();
        let mut values = Vec::new();
        for k in 0..n {
            let vals: Vec<u64> = pool[..20 * (k + 1)].to_vec();
            entries.push((
                k as DomainId,
                vals.len() as u64,
                h.signature(vals.iter().copied()),
            ));
            values.push(vals);
        }
        (h, entries, values)
    }

    #[test]
    fn baseline_is_single_partition() {
        let (_, entries, _) = nested_entries(20);
        let mut b = baseline_minhash_lsh(&EnsembleConfig::default());
        for (id, size, sig) in &entries {
            b.add(*id, *size, sig.clone());
        }
        let idx = b.build();
        assert_eq!(idx.num_partitions(), 1);
        assert_eq!(idx.label(), "MinHash LSH (baseline)");
    }

    #[test]
    fn asym_finds_contained_domain_at_low_skew() {
        // Low skew (sizes 20..100): padding is light, recall should hold.
        let (h, _, _) = nested_entries(1);
        let pool = MinHasher::synthetic_values(9, 100);
        let mut b = AsymIndex::builder();
        for k in 0..5u32 {
            let vals: Vec<u64> = pool[..20 * (k as usize + 1)].to_vec();
            b.add(k, vals.len() as u64, h.signature(vals.iter().copied()));
        }
        let idx = b.build();
        assert_eq!(idx.max_size(), 100);
        // Query = first 20 values: contained in all five domains.
        let q = h.signature(pool[..20].iter().copied());
        let got = idx.query_with_size(&q, 20, 0.5);
        assert!(got.contains(&0), "got {got:?}");
        assert!(got.len() >= 3, "low-skew recall too low: {got:?}");
    }

    #[test]
    fn asym_recall_collapses_at_high_skew() {
        // One giant domain forces heavy padding on everything else;
        // perfectly-contained small domains stop being candidates at high
        // thresholds (the appendix's Figure 10 effect).
        let h = MinHasher::new(256);
        let pool = MinHasher::synthetic_values(11, 60_000);
        let mut b = AsymIndex::builder();
        // 30 small domains of 40 values each, all containing the query.
        let query_vals: Vec<u64> = pool[..40].to_vec();
        for k in 0..30u32 {
            let mut vals = query_vals.clone();
            vals.extend(pool[40 + 40 * k as usize..40 + 40 * (k as usize + 1)].iter());
            b.add(k, vals.len() as u64, h.signature(vals.iter().copied()));
        }
        // The skew maker.
        b.add(999, 60_000, h.signature(pool.iter().copied()));
        let idx = b.build();
        let q = h.signature(query_vals.iter().copied());
        let got = idx.query_with_size(&q, 40, 0.9);
        // t(Q, X_k) = 40/40... wait: every X_k fully contains Q, so all 30
        // qualify; padded similarity is 40/60000 ≈ 0.0007 → recall ~ 0.
        assert!(
            got.len() <= 3,
            "expected near-total recall collapse, got {} hits",
            got.len()
        );
    }

    #[test]
    fn asym_partitioned_recovers_some_recall() {
        // Same corpus as the collapse test; partitioning pads only to each
        // partition's bound, so the small domains' padding is light again.
        let h = MinHasher::new(256);
        let pool = MinHasher::synthetic_values(11, 60_000);
        let mut entries = Vec::new();
        let query_vals: Vec<u64> = pool[..40].to_vec();
        for k in 0..30u32 {
            let mut vals = query_vals.clone();
            vals.extend(pool[40 + 40 * k as usize..40 + 40 * (k as usize + 1)].iter());
            entries.push((k, vals.len() as u64, h.signature(vals.iter().copied())));
        }
        entries.push((999, 60_000, h.signature(pool.iter().copied())));
        let idx = AsymPartitionedIndex::build(&EnsembleConfig::default(), 8, &entries);
        let q = h.signature(query_vals.iter().copied());
        let got = idx.query_with_size(&q, 40, 0.9);
        // The contrast with `asym_recall_collapses_at_high_skew` (≤ 3 hits)
        // is the point: per-partition padding restores a solid majority of
        // the 30 qualifying domains even though per-domain recall stays
        // probabilistic.
        assert!(
            got.len() >= 15,
            "partitioned Asym should keep recall here, got {}",
            got.len()
        );
    }

    #[test]
    fn labels_are_distinct() {
        let (_, entries, _) = nested_entries(10);
        let mut ab = AsymIndex::builder();
        for (id, size, sig) in &entries {
            ab.add(*id, *size, sig.clone());
        }
        let asym = ab.build();
        let part = AsymPartitionedIndex::build(&EnsembleConfig::default(), 4, &entries);
        assert_eq!(asym.label(), "Asym");
        assert!(part.label().starts_with("Asym + partitioning"));
    }

    #[test]
    #[should_panic(expected = "cannot build an empty index")]
    fn empty_asym_rejected() {
        let _ = AsymIndex::builder().build();
    }
}
