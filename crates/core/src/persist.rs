//! Binary persistence for the [`LshEnsemble`]: build once, serve from disk.
//!
//! Format (little-endian, primitives from `lshe_minhash::codec`):
//!
//! ```text
//! "LSHE" version:u8
//! num_perm:u32 b_max:u32 r_max:u32 strategy_tag:u8 strategy_args…
//! len:u64 partition_count:u64
//! per partition: lower:u64 upper:u64 forest_len:u64 forest_bytes
//! segment_count:u64
//! per segment: entry_count:u64, then per entry id:u32 size:u64 slots:u64×m
//! dead_count:u64
//! per tombstone: id:u32 tier:u8 (0 = base, 1 = segment) index:u32
//! ```
//!
//! Version 2 added the trailing segment stack and tombstone list (tiered
//! commits); a version-1 payload decodes as a fully compacted index. Sealed
//! segments persist as their raw entry triples — partitioning a segment is
//! deterministic, so the decoder replays [`build_segment`] and reconstructs
//! bit-identical forests, which keeps the byte form canonical.
//!
//! The tuner's memo table is deliberately *not* persisted — it is a cache,
//! rebuilt lazily, and excluding it keeps the byte form canonical.
//!
//! [`build_segment`]: crate::ensemble
use crate::ensemble::{DeadSlot, EnsembleConfig, LshEnsemble};
use crate::partition::PartitionStrategy;
use lshe_lsh::{DomainId, LshForest};
use lshe_minhash::codec::{CodecError, Decoder, Encoder};
use lshe_minhash::Signature;

/// Envelope tag for ensemble payloads.
pub const MAGIC: [u8; 4] = *b"LSHE";
/// Current format version.
pub const VERSION: u8 = 2;

pub(crate) fn encode_strategy(enc: &mut Encoder, strategy: PartitionStrategy) {
    match strategy {
        PartitionStrategy::Single => enc.put_u8(0),
        PartitionStrategy::EquiDepth { n } => {
            enc.put_u8(1);
            enc.put_u64(n as u64);
        }
        PartitionStrategy::EquiWidth { n } => {
            enc.put_u8(2);
            enc.put_u64(n as u64);
        }
        PartitionStrategy::Morph { n, lambda } => {
            enc.put_u8(3);
            enc.put_u64(n as u64);
            enc.put_f64(lambda);
        }
        PartitionStrategy::EquiFp { n } => {
            enc.put_u8(4);
            enc.put_u64(n as u64);
        }
    }
}

/// Appends the tiered-mutation tail (segment stack + tombstone list) —
/// shared between v1-style ensemble payloads and the v2 store's
/// `Segments` section.
pub(crate) fn encode_segments(
    enc: &mut Encoder,
    segments: &[crate::ensemble::SealedSegment],
    dead: &[(DomainId, DeadSlot)],
) {
    enc.put_u64(segments.len() as u64);
    for seg in segments {
        enc.put_u64(seg.entries.len() as u64);
        for (id, size, sig) in &seg.entries {
            enc.put_u32(*id);
            enc.put_u64(*size);
            for &slot in sig.slots() {
                enc.put_u64(slot);
            }
        }
    }
    enc.put_u64(dead.len() as u64);
    for &(id, slot) in dead {
        enc.put_u32(id);
        match slot {
            DeadSlot::Base(p) => {
                enc.put_u8(0);
                enc.put_u32(p);
            }
            DeadSlot::Seg(s) => {
                enc.put_u8(1);
                enc.put_u32(s);
            }
        }
    }
}

/// Decodes [`encode_segments`]' output: per-segment raw entry triples plus
/// the tombstone list, validated against the owning index's shape.
///
/// # Errors
/// [`CodecError`] on truncation or structural inconsistency.
#[allow(clippy::type_complexity)]
pub(crate) fn decode_segments(
    dec: &mut Decoder<'_>,
    num_perm: usize,
    part_count: usize,
) -> Result<
    (
        Vec<Vec<(DomainId, u64, Signature)>>,
        Vec<(DomainId, DeadSlot)>,
    ),
    CodecError,
> {
    let seg_count = dec.get_u64("segment count")? as usize;
    let mut segment_entries = Vec::new();
    for _ in 0..seg_count {
        let entry_count = dec.get_u64("segment entry count")? as usize;
        if entry_count == 0 {
            return Err(CodecError::Corrupt("empty sealed segment"));
        }
        if entry_count.saturating_mul(12 + 8 * num_perm) > dec.remaining() {
            return Err(CodecError::Corrupt("segment payload exceeds input"));
        }
        let mut entries = Vec::with_capacity(entry_count);
        for _ in 0..entry_count {
            let id = dec.get_u32("segment entry id")?;
            let size = dec.get_u64("segment entry size")?;
            if size == 0 {
                return Err(CodecError::Corrupt("zero-size segment entry"));
            }
            let mut slots = Vec::with_capacity(num_perm);
            for _ in 0..num_perm {
                slots.push(dec.get_u64("segment entry slot")?);
            }
            entries.push((id, size, Signature::from_slots(slots)));
        }
        segment_entries.push(entries);
    }
    let dead_count = dec.get_u64("tombstone count")? as usize;
    if dead_count.saturating_mul(9) > dec.remaining() {
        return Err(CodecError::Corrupt("tombstone payload exceeds input"));
    }
    let mut dead = Vec::with_capacity(dead_count);
    for _ in 0..dead_count {
        let id = dec.get_u32("tombstone id")?;
        let tier = dec.get_u8("tombstone tier")?;
        let idx = dec.get_u32("tombstone index")?;
        let slot = match tier {
            0 if (idx as usize) < part_count => DeadSlot::Base(idx),
            1 if (idx as usize) < seg_count => DeadSlot::Seg(idx),
            0 | 1 => return Err(CodecError::Corrupt("tombstone index out of range")),
            _ => return Err(CodecError::Corrupt("unknown tombstone tier")),
        };
        dead.push((id, slot));
    }
    Ok((segment_entries, dead))
}

pub(crate) fn decode_strategy(dec: &mut Decoder<'_>) -> Result<PartitionStrategy, CodecError> {
    let tag = dec.get_u8("strategy tag")?;
    Ok(match tag {
        0 => PartitionStrategy::Single,
        1 => PartitionStrategy::EquiDepth {
            n: dec.get_u64("strategy n")? as usize,
        },
        2 => PartitionStrategy::EquiWidth {
            n: dec.get_u64("strategy n")? as usize,
        },
        3 => PartitionStrategy::Morph {
            n: dec.get_u64("strategy n")? as usize,
            lambda: dec.get_f64("strategy lambda")?,
        },
        4 => PartitionStrategy::EquiFp {
            n: dec.get_u64("strategy n")? as usize,
        },
        _ => return Err(CodecError::Corrupt("unknown strategy tag")),
    })
}

impl LshEnsemble {
    /// Serialises the ensemble. Staged inserts are committed first (the
    /// byte form is always the canonical committed state).
    #[must_use]
    pub fn to_bytes(&mut self) -> Vec<u8> {
        self.commit();
        self.to_bytes_committed()
    }

    /// Serialises a *committed* ensemble from a shared reference.
    ///
    /// # Panics
    /// Panics if staged inserts exist (they live outside the base forests
    /// and the segment stack, so serialising them here would silently drop
    /// them) — call [`commit`](Self::commit) or use
    /// [`to_bytes`](Self::to_bytes).
    #[must_use]
    pub fn to_bytes_committed(&self) -> Vec<u8> {
        assert_eq!(
            self.staged_len(),
            0,
            "commit staged inserts before serialising"
        );
        let config = *self.config();
        let mut enc = Encoder::with_capacity(64 + self.memory_bytes());
        enc.envelope(MAGIC, VERSION);
        enc.put_u32(config.num_perm as u32);
        enc.put_u32(config.b_max as u32);
        enc.put_u32(config.r_max as u32);
        encode_strategy(&mut enc, config.strategy);
        enc.put_u64(self.len() as u64);
        let parts = self.raw_partitions();
        enc.put_u64(parts.len() as u64);
        for (lower, upper, forest) in parts {
            enc.put_u64(lower);
            enc.put_u64(upper);
            let fb = forest.to_bytes();
            enc.put_u64(fb.len() as u64);
            // Raw append: the forest bytes are themselves an envelope.
            for b in fb {
                enc.put_u8(b);
            }
        }
        encode_segments(&mut enc, self.raw_segments(), self.raw_dead());
        enc.finish()
    }

    /// Deserialises an ensemble.
    ///
    /// # Errors
    /// [`CodecError`] on truncation, tag/version mismatch, or structural
    /// inconsistencies.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut dec = Decoder::new(bytes);
        let version = dec.envelope(MAGIC)?;
        if version > VERSION {
            return Err(CodecError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let num_perm = dec.get_u32("num_perm")? as usize;
        let b_max = dec.get_u32("b_max")? as usize;
        let r_max = dec.get_u32("r_max")? as usize;
        let strategy = decode_strategy(&mut dec)?;
        let len = dec.get_u64("len")? as usize;
        let part_count = dec.get_u64("partition count")? as usize;
        if num_perm == 0 || b_max == 0 || r_max == 0 || b_max * r_max > num_perm {
            return Err(CodecError::Corrupt("inconsistent configuration"));
        }
        let mut partitions = Vec::with_capacity(part_count);
        for _ in 0..part_count {
            let lower = dec.get_u64("partition lower")?;
            let upper = dec.get_u64("partition upper")?;
            if lower > upper {
                return Err(CodecError::Corrupt("inverted partition bounds"));
            }
            let fb_len = dec.get_u64("forest byte length")? as usize;
            if fb_len > dec.remaining() {
                return Err(CodecError::Corrupt("forest payload exceeds input"));
            }
            let mut fb = Vec::with_capacity(fb_len);
            for _ in 0..fb_len {
                fb.push(dec.get_u8("forest bytes")?);
            }
            let forest = LshForest::from_bytes(&fb)?;
            if forest.b_max() != b_max || forest.r_max() != r_max {
                return Err(CodecError::Corrupt("forest dims disagree with config"));
            }
            partitions.push((lower, upper, forest));
        }
        // Version 1 predates tiered commits: no segment stack, no
        // tombstones — exactly a compacted index.
        let (segment_entries, dead) = if version >= 2 {
            decode_segments(&mut dec, num_perm, part_count)?
        } else {
            (Vec::new(), Vec::new())
        };
        if !dec.is_exhausted() {
            return Err(CodecError::Corrupt("trailing bytes after ensemble"));
        }
        let ensemble = Self::from_raw_partitions(
            EnsembleConfig {
                num_perm,
                b_max,
                r_max,
                strategy,
            },
            partitions,
            len,
            segment_entries,
            dead,
        );
        // Subsumes v1's per-partition sum check: live ids (base rows, plus
        // segment entries, minus tombstones) must agree with the recorded
        // length — catching duplicate ids and tampered lengths alike.
        if ensemble.id_count() != len {
            return Err(CodecError::Corrupt("partition sizes do not sum to len"));
        }
        Ok(ensemble)
    }

    /// Writes the serialised ensemble to a file.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn save_to(&mut self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads an ensemble from a file written by [`save_to`](Self::save_to).
    ///
    /// # Errors
    /// I/O errors, or [`CodecError`] (wrapped as `InvalidData`) on corrupt
    /// content.
    pub fn load_from(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshe_minhash::{MinHasher, Signature};

    fn sample_ensemble(n: usize) -> (MinHasher, LshEnsemble, Vec<(u32, u64, Signature)>) {
        let h = MinHasher::new(256);
        let pool = MinHasher::synthetic_values(77, 20 * n);
        let mut builder = LshEnsemble::builder_with(EnsembleConfig {
            strategy: PartitionStrategy::EquiDepth { n: 4 },
            ..EnsembleConfig::default()
        });
        let mut entries = Vec::new();
        for k in 0..n {
            let vals: Vec<u64> = pool[..20 * (k + 1)].to_vec();
            let sig = h.signature(vals.iter().copied());
            builder.add(k as u32, vals.len() as u64, sig.clone());
            entries.push((k as u32, vals.len() as u64, sig));
        }
        (h, builder.build(), entries)
    }

    #[test]
    fn roundtrip_preserves_queries() {
        let (_, mut ens, entries) = sample_ensemble(40);
        let bytes = ens.to_bytes();
        let restored = LshEnsemble::from_bytes(&bytes).expect("decode");
        assert_eq!(restored.len(), ens.len());
        assert_eq!(restored.num_partitions(), ens.num_partitions());
        assert_eq!(restored.config(), ens.config());
        for (_, size, sig) in entries.iter().step_by(7) {
            for t in [0.2, 0.6, 1.0] {
                assert_eq!(
                    ens.query_with_size(sig, *size, t),
                    restored.query_with_size(sig, *size, t),
                    "t = {t}"
                );
            }
        }
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let (_, mut ens, _) = sample_ensemble(20);
        let bytes = ens.to_bytes();
        let mut restored = LshEnsemble::from_bytes(&bytes).expect("decode");
        assert_eq!(restored.to_bytes(), bytes);
    }

    #[test]
    fn to_bytes_commits_staged_inserts() {
        let (h, mut ens, _) = sample_ensemble(20);
        let vals = MinHasher::synthetic_values(5_000, 64);
        let sig = h.signature(vals.iter().copied());
        ens.insert(9_999, 64, &sig);
        let bytes = ens.to_bytes(); // must not panic; commits internally
        let restored = LshEnsemble::from_bytes(&bytes).expect("decode");
        assert!(restored.query_with_size(&sig, 64, 0.9).contains(&9_999));
    }

    #[test]
    fn mutated_ensemble_roundtrips_with_id_routing_intact() {
        let (h, mut ens, entries) = sample_ensemble(24);
        // Mutate: remove a few built domains, add a fresh one.
        ens.try_remove(3).expect("remove");
        ens.try_remove(17).expect("remove");
        let vals = MinHasher::synthetic_values(321, 90);
        let sig = h.signature(vals.iter().copied());
        ens.try_insert(777, 90, &sig).expect("insert");
        let bytes = ens.to_bytes();
        let mut restored = LshEnsemble::from_bytes(&bytes).expect("decode");
        assert_eq!(restored.len(), 23);
        // The rebuilt id map routes further mutations correctly.
        assert!(!restored.contains(3) && !restored.contains(17));
        assert!(restored.contains(777));
        assert_eq!(
            restored.try_insert(777, 90, &sig),
            Err(crate::MutationError::DuplicateId(777))
        );
        restored.try_remove(777).expect("remove decoded insert");
        assert!(!restored.query_with_size(&sig, 90, 0.9).contains(&777));
        let (_, size5, sig5) = &entries[5];
        assert!(restored.query_with_size(sig5, *size5, 1.0).contains(&5));
    }

    #[test]
    fn fully_emptied_ensemble_roundtrips() {
        let (_, mut ens, _) = sample_ensemble(6);
        for k in 0..6u32 {
            ens.try_remove(k).expect("remove");
        }
        assert!(ens.is_empty());
        let bytes = ens.to_bytes();
        let restored = LshEnsemble::from_bytes(&bytes).expect("decode empty");
        assert!(restored.is_empty());
        assert_eq!(restored.num_partitions(), ens.num_partitions());
    }

    #[test]
    fn save_load_file_roundtrip() {
        let (_, mut ens, entries) = sample_ensemble(15);
        let path = std::env::temp_dir().join("lshe_persist_test.idx");
        ens.save_to(&path).expect("write");
        let restored = LshEnsemble::load_from(&path).expect("read");
        let (_, size, sig) = &entries[3];
        assert_eq!(
            ens.query_with_size(sig, *size, 0.5),
            restored.query_with_size(sig, *size, 0.5)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_file_is_invalid_data() {
        let path = std::env::temp_dir().join("lshe_persist_corrupt.idx");
        std::fs::write(&path, b"not an index").expect("write");
        let err = LshEnsemble::load_from(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_rejected() {
        let (_, mut ens, _) = sample_ensemble(10);
        let bytes = ens.to_bytes();
        for cut in [0usize, 4, 10, 30, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                LshEnsemble::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn strategy_roundtrips_all_variants() {
        for strategy in [
            PartitionStrategy::Single,
            PartitionStrategy::EquiDepth { n: 9 },
            PartitionStrategy::EquiWidth { n: 3 },
            PartitionStrategy::Morph { n: 5, lambda: 0.37 },
            PartitionStrategy::EquiFp { n: 7 },
        ] {
            let mut enc = Encoder::default();
            encode_strategy(&mut enc, strategy);
            let bytes = enc.finish();
            let mut dec = Decoder::new(&bytes);
            assert_eq!(decode_strategy(&mut dec).expect("decode"), strategy);
        }
    }

    #[test]
    fn len_mismatch_rejected() {
        let (_, mut ens, _) = sample_ensemble(10);
        let mut bytes = ens.to_bytes();
        // len sits after the envelope (5) + three u32 (12) + strategy
        // (tag 1 + u64 8) = offset 26; bump it.
        bytes[26] ^= 1;
        assert!(matches!(
            LshEnsemble::from_bytes(&bytes).unwrap_err(),
            CodecError::Corrupt(_)
        ));
    }
}
