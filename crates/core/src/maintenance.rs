//! Maintenance planning: merge policies that turn segment/tombstone
//! layout into typed merge tasks, scheduled off the commit path.
//!
//! PR 9 made commits O(staged delta) by sealing deltas into immutable
//! segments, but deciding *when* (and *what*) to fold back into the base
//! stayed a hard-coded threshold check that triggered a full O(corpus)
//! rebuild. This module extracts that decision into a [`MergePolicy`]:
//!
//! * [`Tiered`] — the original behaviour: once the stack (or tombstone
//!   backlog) crosses the thresholds, fold *everything* into the base.
//! * [`Leveled`] — segments are assigned to size-exponential levels
//!   (level `L` holds segments of up to `level0_entries · fanout^L`
//!   entries); when a level holds `fanout` segments they are folded into
//!   one segment of the next level. Each entry is rewritten O(log corpus)
//!   times over its lifetime instead of being caught in periodic
//!   O(corpus) full rebuilds.
//!
//! A [`MaintenancePlanner`] wraps a policy behind one call the serving
//! layer's maintenance thread drives: observe the [`SegmentLayout`], plan
//! [`MergeTask`]s, execute them via
//! [`MutableIndex::apply_merge`](crate::MutableIndex::apply_merge),
//! re-plan until quiescent.

use crate::api::SegmentStats;

/// Hard ceiling on modelled levels — `level0_entries · fanout^32`
/// overflows any real corpus long before this.
const MAX_LEVELS: usize = 32;

/// Default leveled fanout: segments per level before the level overflows
/// and is folded into the next.
pub const DEFAULT_FANOUT: usize = 4;

/// Default level-0 capacity in entries: segments at most this large sit
/// in level 0. Sized to a typical commit batch so fresh seals start at
/// the bottom of the hierarchy.
pub const DEFAULT_LEVEL0_ENTRIES: usize = 128;

/// Compaction trigger thresholds, previously the hard-coded constants
/// [`crate::MAX_SEGMENTS`] / [`crate::MAX_TOMBSTONE_RATIO`]. Now carried
/// explicitly so deployments can tune them (`lshe serve
/// --compact-segments N --compact-tombstone-pct P`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionThresholds {
    /// Fold once this many sealed segments are outstanding.
    pub max_segments: usize,
    /// Fold once tombstones exceed this fraction of the live corpus.
    pub max_tombstone_ratio: f64,
}

impl Default for CompactionThresholds {
    fn default() -> Self {
        Self {
            max_segments: crate::MAX_SEGMENTS,
            max_tombstone_ratio: crate::MAX_TOMBSTONE_RATIO,
        }
    }
}

impl CompactionThresholds {
    /// True if the segment stack or tombstone backlog crossed these
    /// thresholds — the configurable form of
    /// [`crate::needs_compaction`].
    #[must_use]
    pub fn exceeded(&self, stats: SegmentStats, len: usize) -> bool {
        stats.segments >= self.max_segments
            || stats.tombstones as f64 > self.max_tombstone_ratio * len.max(1) as f64
    }
}

/// The observable tier state a policy plans against: per-segment entry
/// counts (physical, oldest segment first) plus the tombstone backlog
/// and live corpus size.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SegmentLayout {
    /// Physical entry count of each sealed segment, oldest first. For
    /// sharded backends, elementwise sums across the shard stacks.
    pub segments: Vec<usize>,
    /// Tombstoned ids awaiting erasure.
    pub tombstones: usize,
    /// Live corpus size.
    pub len: usize,
}

impl SegmentLayout {
    /// The layout's [`SegmentStats`] summary.
    #[must_use]
    pub fn stats(&self) -> SegmentStats {
        SegmentStats {
            segments: self.segments.len(),
            tombstones: self.tombstones,
        }
    }
}

/// One unit of background maintenance work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeTask {
    /// Fold the listed segments (indices into the current stack, as
    /// observed in the [`SegmentLayout`]) into one new sealed segment —
    /// O(folded entries), the base partitions are untouched.
    Merge(Vec<usize>),
    /// Fold every segment and tombstone into the base partitioning — the
    /// O(corpus) full compaction.
    Full,
}

/// What one executed [`MergeTask`] did, for write-amplification
/// accounting and `/stats` reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MergeOutcome {
    /// Live entries rewritten by this merge (the fold cost; multiply by
    /// the per-entry byte width for fold bytes).
    pub entries_folded: usize,
    /// Sealed segments outstanding after the merge.
    pub segments: usize,
    /// Tombstones outstanding after the merge.
    pub tombstones: usize,
}

/// A merge-scheduling policy: observes the tier layout, plans tasks.
///
/// Policies are stateless with respect to the index — every plan is a
/// pure function of the observed [`SegmentLayout`], so the planner can
/// re-plan after each executed task until the layout is quiescent.
pub trait MergePolicy: Send + Sync {
    /// The policy's wire name (`/stats.maintenance.policy`).
    fn name(&self) -> &'static str;

    /// Plans the next round of tasks for `layout`. An empty plan means
    /// the layout is quiescent under this policy.
    fn plan(&self, layout: &SegmentLayout) -> Vec<MergeTask>;

    /// The steady-state segment-count bound the policy converges to for
    /// a corpus of `len` *physical* entries — live domains plus
    /// tombstoned rows still resident in segments (the `/stats`
    /// `segment_bound`): once plans drain, the stack holds at most this
    /// many segments.
    fn segment_bound(&self, len: usize) -> usize;
}

/// The original policy: nothing until the thresholds trip, then one full
/// fold. Simple, but every trigger rewrites the whole corpus.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tiered {
    /// Trigger thresholds.
    pub thresholds: CompactionThresholds,
}

impl MergePolicy for Tiered {
    fn name(&self) -> &'static str {
        "tiered"
    }

    fn plan(&self, layout: &SegmentLayout) -> Vec<MergeTask> {
        if self.thresholds.exceeded(layout.stats(), layout.len) {
            vec![MergeTask::Full]
        } else {
            Vec::new()
        }
    }

    fn segment_bound(&self, _len: usize) -> usize {
        self.thresholds.max_segments
    }
}

/// Size-exponential leveling: level `L` holds segments of up to
/// `level0_entries · fanout^L` entries; when a level accumulates
/// `fanout` segments they fold into one segment of the next level. Write
/// amplification is O(log corpus) per entry. The tombstone threshold
/// still forces a full fold — erasing dead base rows needs one.
#[derive(Debug, Clone, Copy)]
pub struct Leveled {
    /// Segments per level before the level overflows (≥ 2).
    pub fanout: usize,
    /// Level-0 segment capacity in entries.
    pub level0_entries: usize,
    /// Trigger thresholds; `max_tombstone_ratio` forces a full fold,
    /// `max_segments` bounds how deep any single level may grow beyond
    /// the fanout before an overflow merge is forced regardless.
    pub thresholds: CompactionThresholds,
}

impl Default for Leveled {
    fn default() -> Self {
        Self {
            fanout: DEFAULT_FANOUT,
            level0_entries: DEFAULT_LEVEL0_ENTRIES,
            thresholds: CompactionThresholds::default(),
        }
    }
}

impl Leveled {
    /// A leveled policy with default fanout/level-0 capacity and the
    /// given trigger thresholds.
    #[must_use]
    pub fn with_thresholds(thresholds: CompactionThresholds) -> Self {
        Self {
            thresholds,
            ..Self::default()
        }
    }

    /// The level a segment of `entries` entries belongs to.
    #[must_use]
    pub fn level_of(&self, entries: usize) -> usize {
        let mut cap = self.level0_entries.max(1);
        let mut level = 0;
        while entries > cap && level < MAX_LEVELS {
            cap = cap.saturating_mul(self.fanout.max(2));
            level += 1;
        }
        level
    }

    /// Levels needed to hold a corpus of `len` entries.
    #[must_use]
    pub fn levels_for(&self, len: usize) -> usize {
        self.level_of(len) + 1
    }

    /// Per-level (segment count, entry total) occupancy, level 0 first.
    /// Trailing empty levels are trimmed.
    #[must_use]
    pub fn occupancy(&self, layout: &SegmentLayout) -> Vec<(usize, usize)> {
        let mut levels: Vec<(usize, usize)> = Vec::new();
        for &entries in &layout.segments {
            let level = self.level_of(entries);
            if levels.len() <= level {
                levels.resize(level + 1, (0, 0));
            }
            levels[level].0 += 1;
            levels[level].1 += entries;
        }
        levels
    }
}

impl MergePolicy for Leveled {
    fn name(&self) -> &'static str {
        "leveled"
    }

    fn plan(&self, layout: &SegmentLayout) -> Vec<MergeTask> {
        // Dead base rows can only be erased by a full fold; past the
        // tombstone threshold that wins over any level overflow.
        let tombstones = layout.tombstones as f64;
        if tombstones > self.thresholds.max_tombstone_ratio * layout.len.max(1) as f64 {
            return vec![MergeTask::Full];
        }
        // Lowest overflowing level folds first: overflow at level L
        // produces a level-(L+1) segment, which may cascade on re-plan.
        let fanout = self.fanout.max(2);
        let mut by_level: Vec<Vec<usize>> = Vec::new();
        for (idx, &entries) in layout.segments.iter().enumerate() {
            let level = self.level_of(entries);
            if by_level.len() <= level {
                by_level.resize(level + 1, Vec::new());
            }
            by_level[level].push(idx);
        }
        for members in &by_level {
            if members.len() >= fanout {
                return vec![MergeTask::Merge(members.clone())];
            }
        }
        Vec::new()
    }

    fn segment_bound(&self, len: usize) -> usize {
        // At most fanout−1 segments rest per level once plans drain.
        (self.fanout.max(2) - 1) * self.levels_for(len)
    }
}

/// Which merge policy to run — the `--merge-policy` CLI surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergePolicyKind {
    /// Threshold-triggered full folds (the original behaviour).
    Tiered,
    /// Size-exponential leveled merging (the default).
    #[default]
    Leveled,
}

impl MergePolicyKind {
    /// Builds the policy with the given trigger thresholds.
    #[must_use]
    pub fn build(self, thresholds: CompactionThresholds) -> Box<dyn MergePolicy> {
        match self {
            Self::Tiered => Box::new(Tiered { thresholds }),
            Self::Leveled => Box::new(Leveled::with_thresholds(thresholds)),
        }
    }
}

impl std::str::FromStr for MergePolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "tiered" => Ok(Self::Tiered),
            "leveled" => Ok(Self::Leveled),
            other => Err(format!(
                "unknown merge policy {other:?} (expected \"tiered\" or \"leveled\")"
            )),
        }
    }
}

impl std::fmt::Display for MergePolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Tiered => "tiered",
            Self::Leveled => "leveled",
        })
    }
}

/// Drives a [`MergePolicy`] to quiescence: the serving layer's
/// maintenance thread holds one of these and calls
/// [`plan`](Self::plan) after every commit (and after every executed
/// task) until the plan comes back empty.
pub struct MaintenancePlanner {
    policy: Box<dyn MergePolicy>,
}

impl std::fmt::Debug for MaintenancePlanner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaintenancePlanner")
            .field("policy", &self.policy.name())
            .finish()
    }
}

impl MaintenancePlanner {
    /// A planner over an explicit policy.
    #[must_use]
    pub fn new(policy: Box<dyn MergePolicy>) -> Self {
        Self { policy }
    }

    /// A planner for `kind` with the given thresholds.
    #[must_use]
    pub fn for_kind(kind: MergePolicyKind, thresholds: CompactionThresholds) -> Self {
        Self::new(kind.build(thresholds))
    }

    /// The wrapped policy's name.
    #[must_use]
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Plans the next round of tasks (empty = quiescent).
    #[must_use]
    pub fn plan(&self, layout: &SegmentLayout) -> Vec<MergeTask> {
        self.policy.plan(layout)
    }

    /// The policy's steady-state segment bound for a corpus of `len`.
    #[must_use]
    pub fn segment_bound(&self, len: usize) -> usize {
        self.policy.segment_bound(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(segments: &[usize], tombstones: usize, len: usize) -> SegmentLayout {
        SegmentLayout {
            segments: segments.to_vec(),
            tombstones,
            len,
        }
    }

    #[test]
    fn tiered_plans_full_only_past_thresholds() {
        let policy = Tiered::default();
        assert!(policy.plan(&layout(&[10; 7], 0, 1000)).is_empty());
        assert_eq!(
            policy.plan(&layout(&[10; 8], 0, 1000)),
            vec![MergeTask::Full]
        );
        assert_eq!(
            policy.plan(&layout(&[10], 400, 1000)),
            vec![MergeTask::Full]
        );
    }

    #[test]
    fn leveled_assigns_size_exponential_levels() {
        let policy = Leveled::default();
        assert_eq!(policy.level_of(1), 0);
        assert_eq!(policy.level_of(DEFAULT_LEVEL0_ENTRIES), 0);
        assert_eq!(policy.level_of(DEFAULT_LEVEL0_ENTRIES + 1), 1);
        assert_eq!(policy.level_of(DEFAULT_LEVEL0_ENTRIES * DEFAULT_FANOUT), 1);
        assert_eq!(
            policy.level_of(DEFAULT_LEVEL0_ENTRIES * DEFAULT_FANOUT + 1),
            2
        );
    }

    #[test]
    fn leveled_merges_the_lowest_overflowing_level() {
        let policy = Leveled::default();
        // Three small segments: under the fanout, quiescent.
        assert!(policy.plan(&layout(&[50, 60, 70], 0, 1000)).is_empty());
        // Four small segments overflow level 0; the big one stays put.
        let plan = policy.plan(&layout(&[5000, 50, 60, 70, 80], 0, 10_000));
        assert_eq!(plan, vec![MergeTask::Merge(vec![1, 2, 3, 4])]);
    }

    #[test]
    fn leveled_cascades_to_quiescence_under_the_bound() {
        let policy = Leveled::default();
        // Simulate folding by entry arithmetic: repeatedly apply the plan
        // until quiescent; the stack must land under the policy bound.
        let mut segs: Vec<usize> = vec![64; 40];
        let len: usize = segs.iter().sum();
        let mut folds = 0;
        loop {
            let plan = policy.plan(&layout(&segs, 0, len));
            let Some(task) = plan.first() else { break };
            match task {
                MergeTask::Merge(idxs) => {
                    let merged: usize = idxs.iter().map(|&i| segs[i]).sum();
                    let mut keep: Vec<usize> = segs
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| !idxs.contains(i))
                        .map(|(_, &e)| e)
                        .collect();
                    keep.push(merged);
                    segs = keep;
                }
                MergeTask::Full => panic!("no tombstones, full fold unexpected"),
            }
            folds += 1;
            assert!(folds < 100, "planner failed to converge");
        }
        assert!(segs.len() <= policy.segment_bound(len));
    }

    #[test]
    fn leveled_full_folds_on_tombstone_pressure() {
        let policy = Leveled::default();
        assert_eq!(
            policy.plan(&layout(&[10, 20], 500, 1000)),
            vec![MergeTask::Full]
        );
    }

    #[test]
    fn thresholds_match_the_legacy_constants() {
        let t = CompactionThresholds::default();
        for (segments, tombstones, len) in [
            (0usize, 0usize, 100usize),
            (8, 0, 100),
            (0, 26, 100),
            (7, 25, 100),
        ] {
            let stats = SegmentStats {
                segments,
                tombstones,
            };
            assert_eq!(
                t.exceeded(stats, len),
                crate::needs_compaction(stats, len),
                "{stats:?}"
            );
        }
    }

    #[test]
    fn kind_parses_and_builds() {
        assert_eq!(
            "tiered".parse::<MergePolicyKind>(),
            Ok(MergePolicyKind::Tiered)
        );
        assert_eq!(
            "leveled".parse::<MergePolicyKind>(),
            Ok(MergePolicyKind::Leveled)
        );
        assert!("lvl".parse::<MergePolicyKind>().is_err());
        let planner =
            MaintenancePlanner::for_kind(MergePolicyKind::Leveled, CompactionThresholds::default());
        assert_eq!(planner.policy_name(), "leveled");
    }
}
