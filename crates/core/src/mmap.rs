//! The memory-mapped index backend: `DomainIndex` over a v2 store file.
//!
//! [`pack_ranked`] streams a committed [`RankedIndex`] into an
//! `lshe-store` v2 container — partition bounds, forest tree columns, and
//! the retained sketches, each in its own checksummed 64-byte-aligned
//! section. [`MmapIndex`] opens such a file and answers
//! [`search`](crate::DomainIndex::search)/
//! [`search_batch`](crate::DomainIndex::search_batch) *in place*: the
//! partition skip-prune, per-query `(b, r)` tuning, prefix-tree probing,
//! and containment ranking all run against borrowed mapped memory, so
//! opening a multi-gigabyte corpus costs milliseconds and no decode-time
//! heap.
//!
//! The backend replicates the heap path bit for bit — same candidate
//! sets, same probe counters, same estimates, same ordering — which the
//! conformance suite pins by running it side by side with `RankedIndex`
//! over identical corpora.

use crate::api::{
    outcome_from_hits, outcome_from_hits_timed, DomainIndex, ProbeCounts, Query, QueryError,
    QueryMode, SearchHit, SearchOutcome, ESTIMATE_SLACK,
};
use crate::ensemble::EnsembleConfig;
use crate::partition::PartitionStrategy;
use crate::ranked::{RankedHit, RankedIndex};
use crate::tuning::Tuner;
use lshe_lsh::forest::truncate_slot;
use lshe_lsh::DomainId;
use lshe_minhash::codec::{CodecError, Decoder, Encoder};
use lshe_minhash::hash::FastHashSet;
use lshe_minhash::{containment_from_jaccard, Signature};
use lshe_store::{Packer, PartitionView, SectionKind, SketchesView, Store, StoreError};
use std::path::Path;

// ------------------------------------------------------------------ errors

/// Why a v2 store could not be opened as an index.
#[derive(Debug)]
pub enum MmapIndexError {
    /// The container layer failed: I/O, structure, or checksums.
    Store(StoreError),
    /// A codec-encoded section (the meta blob) failed to decode.
    Codec {
        /// The section being decoded.
        section: &'static str,
        /// The underlying codec failure.
        source: CodecError,
    },
}

impl std::fmt::Display for MmapIndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Store(e) => write!(f, "{e}"),
            Self::Codec { section, source } => {
                write!(f, "section \"{section}\": {source}")
            }
        }
    }
}

impl std::error::Error for MmapIndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Store(e) => Some(e),
            Self::Codec { source, .. } => Some(source),
        }
    }
}

impl From<StoreError> for MmapIndexError {
    fn from(e: StoreError) -> Self {
        Self::Store(e)
    }
}

// ----------------------------------------------------------------- packing

/// Streams a committed [`RankedIndex`] into `packer` as the index
/// sections of a v2 store (meta, partition bounds/lens, tree columns,
/// sketches). The caller owns the packer so it can append further
/// sections (the serve layer adds domain records) before
/// [`Packer::finish`].
///
/// # Errors
/// Propagates write failure.
///
/// # Panics
/// Panics if the index has staged (uncommitted) inserts — the byte form
/// is always the canonical committed state, exactly as v1 persistence.
pub fn pack_ranked(index: &RankedIndex, packer: &mut Packer) -> std::io::Result<()> {
    pack_ranked_with(index, packer, index.ensemble().min_next_id())
}

/// [`pack_ranked`] with an explicit id-allocator high-water mark, recorded
/// in the `Segments` section so `next_id` survives a pack → open
/// round-trip even when the largest id ever issued was since removed and
/// compacted away. Serving layers that own an allocator pass their mark;
/// [`pack_ranked`] falls back to the ensemble's own floor.
///
/// # Errors
/// Propagates write failure.
///
/// # Panics
/// As [`pack_ranked`].
pub fn pack_ranked_with(
    index: &RankedIndex,
    packer: &mut Packer,
    next_id: u32,
) -> std::io::Result<()> {
    let ensemble = index.ensemble();
    assert_eq!(
        ensemble.staged_len(),
        0,
        "pack_ranked on an index with staged inserts; commit first"
    );
    let config = *ensemble.config();
    let parts = ensemble.raw_partitions();

    let mut enc = Encoder::default();
    enc.put_u32(config.num_perm as u32);
    enc.put_u32(config.b_max as u32);
    enc.put_u32(config.r_max as u32);
    crate::persist::encode_strategy(&mut enc, config.strategy);
    enc.put_u64(ensemble.len() as u64);
    enc.put_u64(parts.len() as u64);
    packer.begin_section(SectionKind::Meta)?;
    packer.write(&enc.finish())?;
    packer.end_section();

    packer.begin_section(SectionKind::PartitionBounds)?;
    for &(lower, upper, _) in &parts {
        packer.write_u64s(&[lower, upper])?;
    }
    packer.end_section();

    packer.begin_section(SectionKind::PartitionLens)?;
    for &(_, _, forest) in &parts {
        packer.write_u64s(&[forest.len() as u64])?;
    }
    packer.end_section();

    packer.begin_section(SectionKind::TreeKeys)?;
    for &(_, _, forest) in &parts {
        for (keys, _) in forest.committed_trees() {
            packer.write_u32s(keys)?;
        }
    }
    packer.end_section();

    packer.begin_section(SectionKind::TreeIds)?;
    for &(_, _, forest) in &parts {
        for (_, ids) in forest.committed_trees() {
            packer.write_u32s(ids)?;
        }
    }
    packer.end_section();

    let entries = index.sketch_entries();
    packer.begin_section(SectionKind::SketchIds)?;
    for &(id, _, _) in &entries {
        packer.write_u32s(&[id])?;
    }
    packer.end_section();

    packer.begin_section(SectionKind::SketchSizes)?;
    for &(_, size, _) in &entries {
        packer.write_u64s(&[size])?;
    }
    packer.end_section();

    packer.begin_section(SectionKind::SketchSlots)?;
    for &(_, _, sig) in &entries {
        packer.write_u64s(sig.slots())?;
    }
    packer.end_section();

    // Tiered-mutation tail: the segment stack round-trips verbatim (sealed
    // entry triples + tombstones), plus the id-allocator high-water mark.
    // Additive section — pre-segment readers skip it.
    let mut enc = Encoder::default();
    crate::persist::encode_segments(&mut enc, ensemble.raw_segments(), ensemble.raw_dead());
    enc.put_u32(next_id);
    packer.begin_section(SectionKind::Segments)?;
    packer.write(&enc.finish())?;
    packer.end_section();
    Ok(())
}

/// Packs a [`RankedIndex`] into a standalone v2 store file (index
/// sections only — no domain records) and finishes it.
///
/// # Errors
/// Propagates file I/O failure.
///
/// # Panics
/// As [`pack_ranked`].
pub fn pack_ranked_to(index: &RankedIndex, path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut packer = Packer::create(path)?;
    pack_ranked(index, &mut packer)?;
    packer.finish()
}

// ----------------------------------------------------------------- backend

/// One partition's shape and element offsets into the shared tree
/// columns.
#[derive(Debug, Clone, Copy)]
struct PartMeta {
    lower: u64,
    upper: u64,
    /// Domains in this partition (rows per tree).
    rows: usize,
    /// Element offset of this partition's keys in the TreeKeys section.
    key_off: usize,
    /// Element offset of this partition's ids in the TreeIds section.
    id_off: usize,
}

/// A read-only [`DomainIndex`] served directly from a mapped v2 store.
///
/// Holds only metadata on the heap (a few dozen bytes per partition);
/// every key, id, and sketch slot stays in the mapping. Queries replicate
/// the [`RankedIndex`] pipeline exactly: partition skip-prune →
/// per-query tuned `(b, r)` → prefix-tree equal-range probes → hash-set
/// dedup → containment ranking over the mapped sketches.
#[derive(Debug)]
pub struct MmapIndex {
    store: Store,
    config: EnsembleConfig,
    tuner: Tuner,
    len: usize,
    parts: Vec<PartMeta>,
    /// Sealed segments replayed onto the heap from the `Segments` section
    /// (deterministic rebuild from the stored entry triples — identical
    /// forests to the heap index that was packed). Small by construction:
    /// segments hold recent deltas, the mapped base holds the corpus.
    segments: Vec<crate::ensemble::SealedSegment>,
    /// Tombstones: mapped base rows (and segment entries) whose ids are
    /// dead. Queries filter candidates by sketch liveness while any exist.
    dead: Vec<(DomainId, crate::ensemble::DeadSlot)>,
    /// Persisted id-allocator high-water mark.
    next_id: u32,
}

impl Clone for MmapIndex {
    /// Clones the backend. The mapping is shared; the tuner's memo cache
    /// starts empty in the clone (it refills lazily).
    fn clone(&self) -> Self {
        Self {
            store: self.store.clone(),
            config: self.config,
            tuner: Tuner::new(self.config.b_max as u32, self.config.r_max as u32),
            len: self.len,
            parts: self.parts.clone(),
            segments: self.segments.clone(),
            dead: self.dead.clone(),
            next_id: self.next_id,
        }
    }
}

fn corrupt(section: &'static str, detail: &'static str) -> MmapIndexError {
    MmapIndexError::Store(StoreError::Corrupt { section, detail })
}

impl MmapIndex {
    /// Opens a packed index file with structural validation only (headers,
    /// table, bounds, cross-section counts) — O(sections + partitions),
    /// not O(file). Use [`open_verified`](Self::open_verified) to also
    /// checksum every payload.
    ///
    /// # Errors
    /// [`MmapIndexError`] on I/O, structural, or consistency failure.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, MmapIndexError> {
        Self::from_store(Store::open(path)?)
    }

    /// Opens a packed index file and verifies every section checksum — the
    /// serving path, where a damaged file must fail loudly at boot instead
    /// of answering queries from corrupt memory.
    ///
    /// # Errors
    /// As [`open`](Self::open), plus
    /// [`StoreError::SectionChecksum`] naming any damaged section.
    pub fn open_verified(path: impl AsRef<Path>) -> Result<Self, MmapIndexError> {
        let store = Store::open(path)?;
        store.verify()?;
        Self::from_store(store)
    }

    /// Builds the backend over an already-opened [`Store`], validating
    /// cross-section consistency.
    ///
    /// # Errors
    /// [`MmapIndexError`] when sections are missing, fail to decode, or
    /// disagree with each other.
    pub fn from_store(store: Store) -> Result<Self, MmapIndexError> {
        let meta = store.bytes(SectionKind::Meta)?;
        let mut dec = Decoder::new(meta);
        let codec = |source: CodecError| MmapIndexError::Codec {
            section: "meta",
            source,
        };
        let num_perm = dec.get_u32("num_perm").map_err(codec)? as usize;
        let b_max = dec.get_u32("b_max").map_err(codec)? as usize;
        let r_max = dec.get_u32("r_max").map_err(codec)? as usize;
        let strategy = crate::persist::decode_strategy(&mut dec).map_err(codec)?;
        let len = dec.get_u64("len").map_err(codec)? as usize;
        let part_count = dec.get_u64("partition count").map_err(codec)? as usize;
        if !dec.is_exhausted() {
            return Err(corrupt("meta", "trailing bytes after metadata"));
        }
        if num_perm == 0 || b_max == 0 || r_max == 0 || b_max * r_max > num_perm {
            return Err(corrupt("meta", "inconsistent configuration"));
        }

        let bounds = store.u64s(SectionKind::PartitionBounds)?;
        if bounds.len() != part_count * 2 {
            return Err(corrupt("partition bounds", "count disagrees with meta"));
        }
        let lens = store.u64s(SectionKind::PartitionLens)?;
        if lens.len() != part_count {
            return Err(corrupt("partition lens", "count disagrees with meta"));
        }
        let mut parts = Vec::with_capacity(part_count);
        let (mut key_off, mut id_off, mut total) = (0usize, 0usize, 0usize);
        for (i, &rows64) in lens.iter().enumerate() {
            let (lower, upper) = (bounds[i * 2], bounds[i * 2 + 1]);
            if lower > upper {
                return Err(corrupt("partition bounds", "inverted partition bounds"));
            }
            let rows = usize::try_from(rows64)
                .map_err(|_| corrupt("partition lens", "partition length exceeds address space"))?;
            parts.push(PartMeta {
                lower,
                upper,
                rows,
                key_off,
                id_off,
            });
            key_off += rows * b_max * r_max;
            id_off += rows * b_max;
            total += rows;
        }
        // Tiered-mutation tail (absent on pre-segment files → compacted).
        let (segment_entries, dead, next_id) = if store.has(SectionKind::Segments) {
            let blob = store.bytes(SectionKind::Segments)?;
            let mut sdec = Decoder::new(blob);
            let scodec = |source: CodecError| MmapIndexError::Codec {
                section: "segments",
                source,
            };
            let (entries, dead) =
                crate::persist::decode_segments(&mut sdec, num_perm, part_count).map_err(scodec)?;
            let next_id = sdec.get_u32("next id").map_err(scodec)?;
            if !sdec.is_exhausted() {
                return Err(corrupt("segments", "trailing bytes after segments"));
            }
            (entries, dead, next_id)
        } else {
            (Vec::new(), Vec::new(), 0)
        };
        let seg_entry_total: usize = segment_entries.iter().map(Vec::len).sum();
        let dead_seg = dead
            .iter()
            .filter(|(_, s)| matches!(s, crate::ensemble::DeadSlot::Seg(_)))
            .count();
        let dead_base = dead.len() - dead_seg;
        // Base rows are physical: live base domains plus tombstoned rows
        // not yet compacted away. Live segment entries (total minus their
        // tombstones) make up the rest of `len`.
        let seg_live = seg_entry_total
            .checked_sub(dead_seg)
            .ok_or_else(|| corrupt("segments", "more segment tombstones than entries"))?;
        if total + seg_live != len + dead_base {
            return Err(corrupt(
                "partition lens",
                "partition sizes do not sum to len",
            ));
        }
        let tree_keys = store.u32s(SectionKind::TreeKeys)?;
        if tree_keys.len() != key_off {
            return Err(corrupt("tree keys", "length disagrees with partition lens"));
        }
        let tree_ids = store.u32s(SectionKind::TreeIds)?;
        if tree_ids.len() != id_off {
            return Err(corrupt("tree ids", "length disagrees with partition lens"));
        }

        let sketch_ids = store.u32s(SectionKind::SketchIds)?;
        if sketch_ids.len() != len {
            return Err(corrupt("sketch ids", "count disagrees with meta len"));
        }
        if !sketch_ids.windows(2).all(|w| w[0] < w[1]) {
            return Err(corrupt("sketch ids", "ids are not strictly ascending"));
        }
        let sketch_sizes = store.u64s(SectionKind::SketchSizes)?;
        if sketch_sizes.len() != len {
            return Err(corrupt("sketch sizes", "count disagrees with meta len"));
        }
        let sketch_slots = store.u64s(SectionKind::SketchSlots)?;
        if sketch_slots.len() != len * num_perm {
            return Err(corrupt("sketch slots", "length disagrees with meta len"));
        }

        let config = EnsembleConfig {
            num_perm,
            b_max,
            r_max,
            strategy,
        };
        // Replay each segment's deterministic seal — identical partitions
        // and forests to the heap index that was packed.
        let segments = segment_entries
            .into_iter()
            .map(|entries| crate::ensemble::build_segment(&config, entries))
            .collect();
        // Files without the section predate the allocator mark: the best
        // floor is one past the largest live id.
        let next_id = if store.has(SectionKind::Segments) {
            next_id
        } else {
            sketch_ids.last().map_or(0, |&id| id + 1)
        };
        Ok(Self {
            store,
            config,
            tuner: Tuner::new(b_max as u32, r_max as u32),
            len,
            parts,
            segments,
            dead,
            next_id,
        })
    }

    /// The configuration the packed index was built with.
    #[must_use]
    pub fn config(&self) -> &EnsembleConfig {
        &self.config
    }

    /// The underlying store (for section-level diagnostics and the serve
    /// layer's record sections).
    #[must_use]
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Number of partitions.
    #[must_use]
    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    /// Per-partition summaries, matching
    /// [`LshEnsemble::partition_stats`](crate::LshEnsemble::partition_stats)
    /// for the packed corpus.
    #[must_use]
    pub fn partition_stats(&self) -> Vec<crate::PartitionStats> {
        let mut stats: Vec<crate::PartitionStats> = self
            .parts
            .iter()
            .map(|p| crate::PartitionStats {
                lower: p.lower,
                upper: p.upper,
                count: p.rows,
            })
            .collect();
        for seg in &self.segments {
            stats.extend(seg.partitions.iter().map(|p| crate::PartitionStats {
                lower: p.lower,
                upper: p.upper,
                count: p.forest.len(),
            }));
        }
        stats
    }

    /// Outstanding segments/tombstones carried by the packed file.
    #[must_use]
    pub fn segment_stats(&self) -> crate::SegmentStats {
        crate::SegmentStats {
            segments: self.segments.len(),
            tombstones: self.dead.len(),
        }
    }

    /// The id-allocator high-water mark persisted at pack time (one past
    /// the largest id ever issued — including since-removed ids, so a
    /// re-issued id can never alias a tombstoned one).
    #[must_use]
    pub fn next_id_hint(&self) -> u32 {
        self.next_id
    }

    /// Borrowed sketch columns, assembled fresh from the mapping.
    fn sketches(&self) -> SketchesView<'_> {
        let ids = self.store.u32s(SectionKind::SketchIds).expect("validated");
        let sizes = self
            .store
            .u64s(SectionKind::SketchSizes)
            .expect("validated");
        let slots = self
            .store
            .u64s(SectionKind::SketchSlots)
            .expect("validated");
        SketchesView::new(ids, sizes, slots, self.config.num_perm).expect("validated at open")
    }

    fn check_query(&self, signature: &Signature, query_size: u64, t_star: f64) {
        assert!(query_size > 0, "query size must be positive");
        assert!(
            (0.0..=1.0).contains(&t_star),
            "containment threshold must be in [0, 1]"
        );
        assert_eq!(
            signature.len(),
            self.config.num_perm,
            "signature width mismatch"
        );
    }

    /// Probes one partition into `out`; returns whether it was consulted
    /// (false = skip-pruned). Mirrors `LshEnsemble::query_partition` +
    /// `LshForest::query_into` over the mapped columns.
    #[allow(clippy::too_many_arguments)]
    fn query_partition(
        &self,
        pm: &PartMeta,
        tree_keys: &[u32],
        tree_ids: &[u32],
        prefix: &mut Vec<u32>,
        signature: &Signature,
        query_size: u64,
        t_star: f64,
        out: &mut Vec<DomainId>,
    ) -> bool {
        if (pm.upper as f64) < t_star * query_size as f64 {
            return false;
        }
        let params = self.tuner.optimize(pm.upper, query_size, t_star);
        let (b, r) = (params.b as usize, params.r as usize);
        let (b_max, r_max) = (self.config.b_max, self.config.r_max);
        let view = PartitionView::new(
            &tree_keys[pm.key_off..pm.key_off + pm.rows * b_max * r_max],
            &tree_ids[pm.id_off..pm.id_off + pm.rows * b_max],
            b_max,
            r_max,
            pm.rows,
        )
        .expect("validated at open");
        let slots = signature.slots();
        for t in 0..b {
            let start = t * r_max;
            prefix.clear();
            prefix.extend(slots[start..start + r].iter().map(|&v| truncate_slot(v)));
            view.tree(t).probe_into(prefix, out);
        }
        true
    }

    /// Instrumented containment sweep: sorted-unique candidate ids plus
    /// probe counters, identical to `LshEnsemble::query_counted` over the
    /// same corpus.
    fn query_counted(
        &self,
        signature: &Signature,
        query_size: u64,
        t_star: f64,
    ) -> (Vec<DomainId>, ProbeCounts) {
        self.check_query(signature, query_size, t_star);
        let tree_keys = self.store.u32s(SectionKind::TreeKeys).expect("validated");
        let tree_ids = self.store.u32s(SectionKind::TreeIds).expect("validated");
        let sketches = self.sketches();
        let mut probe = ProbeCounts {
            probed: 0,
            total: self.parts.len()
                + self
                    .segments
                    .iter()
                    .map(|s| s.partitions.len())
                    .sum::<usize>(),
            candidates: 0,
        };
        let mut buf: Vec<DomainId> = Vec::new();
        let mut prefix: Vec<u32> = Vec::with_capacity(self.config.r_max);
        for pm in &self.parts {
            let before = buf.len();
            let probed = self.query_partition(
                pm,
                tree_keys,
                tree_ids,
                &mut prefix,
                signature,
                query_size,
                t_star,
                &mut buf,
            );
            if probed {
                self.filter_tombstoned(&sketches, &mut buf, before);
            }
            probe.probed += usize::from(probed);
            probe.candidates += buf.len() - before;
        }
        // Heap-replayed segment partitions: same skip-prune, tuning, and
        // probing as the heap index's segment sweep.
        for seg in &self.segments {
            for p in &seg.partitions {
                if (p.upper as f64) < t_star * query_size as f64 {
                    continue;
                }
                let before = buf.len();
                let params = self.tuner.optimize(p.upper, query_size, t_star);
                p.forest
                    .query_into(signature, params.b as usize, params.r as usize, &mut buf);
                self.filter_tombstoned(&sketches, &mut buf, before);
                probe.probed += 1;
                probe.candidates += buf.len() - before;
            }
        }
        let mut set: FastHashSet<DomainId> = FastHashSet::default();
        set.extend(buf);
        let mut v: Vec<DomainId> = set.into_iter().collect();
        v.sort_unstable();
        (v, probe)
    }

    /// Drops candidates appended past `from` whose ids are tombstoned.
    /// A sketch exists exactly for the live ids (the heap index filters on
    /// its id → slot map; the sketch sections are that map's image), so
    /// liveness is a mapped binary search. No-op while nothing is dead —
    /// a re-inserted id is live in its new tier even though stale rows for
    /// it remain in the base, and those rows must NOT be dropped.
    fn filter_tombstoned(&self, sketches: &SketchesView<'_>, buf: &mut Vec<DomainId>, from: usize) {
        if self.dead.is_empty() {
            return;
        }
        let mut w = from;
        for i in from..buf.len() {
            if sketches.lookup(buf[i]).is_some() {
                buf[w] = buf[i];
                w += 1;
            }
        }
        buf.truncate(w);
    }

    /// Ranks candidates by estimated containment against the mapped
    /// sketches — same estimator, ordering, and tie-break as
    /// `RankedIndex::rank`.
    ///
    /// # Panics
    /// Panics if a candidate id has no sketch (impossible in a file that
    /// passed open-time validation and checksum verification, exactly as
    /// the heap index panics on an id it never retained).
    fn rank(
        &self,
        sketches: &SketchesView<'_>,
        candidates: Vec<DomainId>,
        signature: &Signature,
        q: u64,
    ) -> Vec<RankedHit> {
        let q_slots = signature.slots();
        let m = self.config.num_perm;
        let mut hits: Vec<RankedHit> = candidates
            .into_iter()
            .map(|id| {
                let (x, slots) = sketches.lookup(id).expect("candidate id has no sketch");
                let equal = q_slots.iter().zip(slots).filter(|(a, b)| a == b).count();
                let s = equal as f64 / m as f64;
                RankedHit {
                    id,
                    estimated_containment: containment_from_jaccard(s, x as f64, q as f64),
                }
            })
            .collect();
        hits.sort_by(|a, b| {
            b.estimated_containment
                .partial_cmp(&a.estimated_containment)
                .expect("no NaN")
                .then(a.id.cmp(&b.id))
        });
        hits
    }

    fn query_ranked_counted(
        &self,
        signature: &Signature,
        query_size: u64,
        t_star: f64,
    ) -> (Vec<RankedHit>, ProbeCounts) {
        let (raw, probe) = self.query_counted(signature, query_size, t_star);
        let sketches = self.sketches();
        let mut hits = self.rank(&sketches, raw, signature, query_size);
        hits.retain(|h| h.estimated_containment >= t_star - ESTIMATE_SLACK);
        (hits, probe)
    }

    fn query_top_k_counted(
        &self,
        signature: &Signature,
        query_size: u64,
        k: usize,
    ) -> (Vec<RankedHit>, ProbeCounts) {
        assert!(k > 0, "k must be positive");
        let (seen, probe) =
            crate::api::top_k_descend(k, |t| self.query_counted(signature, query_size, t));
        let sketches = self.sketches();
        let mut hits = self.rank(&sketches, seen, signature, query_size);
        hits.truncate(k);
        (hits, probe)
    }
}

fn to_search_hits(hits: Vec<RankedHit>) -> Vec<SearchHit> {
    hits.into_iter()
        .map(|h| SearchHit {
            id: h.id,
            estimate: Some(h.estimated_containment),
        })
        .collect()
}

impl DomainIndex for MmapIndex {
    fn search(&self, query: &Query<'_>) -> Result<SearchOutcome, QueryError> {
        query.validate_for(self.config.num_perm)?;
        let started = std::time::Instant::now();
        let q = query.effective_size();
        // The parallel hint is accepted and ignored: partitions are swept
        // sequentially over the mapping (hint semantics permit this; the
        // answer is identical either way).
        let (hits, probe) = match query.mode() {
            QueryMode::Threshold(t_star) => self.query_ranked_counted(query.signature(), q, t_star),
            QueryMode::TopK(k) => self.query_top_k_counted(query.signature(), q, k),
        };
        Ok(outcome_from_hits(to_search_hits(hits), probe, started))
    }

    fn search_batch(&self, queries: &[Query<'_>]) -> Vec<Result<SearchOutcome, QueryError>> {
        crate::batch::split_and_run(
            queries,
            self.config.num_perm,
            |items| {
                // Fan the batch across worker lanes; each lane runs the
                // exact single-query pipeline, so batch ≡ looped.
                crate::batch::chunked(items, |chunk| {
                    chunk
                        .iter()
                        .map(|item| {
                            let started = std::time::Instant::now();
                            let (raw, probe) =
                                self.query_counted(item.signature, item.size, item.t_star);
                            let sketches = self.sketches();
                            let mut hits = self.rank(&sketches, raw, item.signature, item.size);
                            hits.retain(|h| {
                                h.estimated_containment >= item.t_star - ESTIMATE_SLACK
                            });
                            let nanos = started.elapsed().as_nanos() as u64;
                            outcome_from_hits_timed(to_search_hits(hits), probe, nanos)
                        })
                        .collect()
                })
            },
            |query, k| {
                let started = std::time::Instant::now();
                let (hits, probe) =
                    self.query_top_k_counted(query.signature(), query.effective_size(), k);
                Ok(outcome_from_hits(to_search_hits(hits), probe, started))
            },
        )
    }

    fn len(&self) -> usize {
        self.len
    }

    fn memory_bytes(&self) -> usize {
        // Heap footprint is metadata only — the corpus lives in the
        // mapping (page cache), which is the whole point.
        std::mem::size_of::<Self>() + self.parts.len() * std::mem::size_of::<PartMeta>()
    }

    fn describe(&self) -> String {
        let base = match self.config.strategy {
            PartitionStrategy::Single => "MinHash LSH (baseline)".to_owned(),
            PartitionStrategy::EquiDepth { n } => format!("LSH Ensemble ({n})"),
            PartitionStrategy::EquiWidth { n } => format!("LSH Ensemble equi-width ({n})"),
            PartitionStrategy::Morph { n, lambda } => {
                format!("LSH Ensemble morph ({n}, λ={lambda:.2})")
            }
            PartitionStrategy::EquiFp { n } => format!("LSH Ensemble equi-FP ({n})"),
        };
        format!("Mmap Ranked {base}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::QueryStats;
    use lshe_minhash::MinHasher;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("lshe_mmap_idx_{name}_{}.v2", std::process::id()))
    }

    /// Nested pool corpus mirroring the ranked tests.
    fn sample(n: usize) -> (MinHasher, RankedIndex, Vec<Vec<u64>>) {
        let h = MinHasher::new(256);
        let pool = MinHasher::synthetic_values(3, 30 * n);
        let mut b = RankedIndex::builder_with(EnsembleConfig {
            strategy: PartitionStrategy::EquiDepth { n: 4 },
            ..EnsembleConfig::default()
        });
        let mut values = Vec::new();
        for k in 0..n {
            let vals: Vec<u64> = pool[..30 * (k + 1)].to_vec();
            b.add(
                k as u32,
                vals.len() as u64,
                h.signature(vals.iter().copied()),
            );
            values.push(vals);
        }
        (h, b.build(), values)
    }

    fn strip_wall(mut o: SearchOutcome) -> (Vec<SearchHit>, QueryStats) {
        o.stats.wall_micros = 0;
        (o.hits, o.stats)
    }

    #[test]
    fn mmap_matches_heap_ranked_exactly() {
        let (h, ranked, values) = sample(24);
        let path = tmp("parity");
        pack_ranked_to(&ranked, &path).expect("pack");
        let mapped = MmapIndex::open_verified(&path).expect("open");
        assert_eq!(mapped.len(), ranked.len());
        assert_eq!(mapped.num_partitions(), ranked.ensemble().num_partitions());
        assert_eq!(
            mapped.partition_stats(),
            ranked.ensemble().partition_stats()
        );
        for k in [0usize, 5, 11, 23] {
            let sig = h.signature(values[k].iter().copied());
            let size = values[k].len() as u64;
            for t in [0.1, 0.5, 0.9] {
                let q = Query::threshold(&sig, t).with_size(size);
                let a = strip_wall(ranked.search(&q).expect("heap"));
                let b = strip_wall(mapped.search(&q).expect("mmap"));
                assert_eq!(a, b, "threshold parity k={k} t={t}");
            }
            for kk in [1usize, 5] {
                let q = Query::top_k(&sig, kk).with_size(size);
                let a = strip_wall(ranked.search(&q).expect("heap"));
                let b = strip_wall(mapped.search(&q).expect("mmap"));
                assert_eq!(a, b, "top-k parity k={k} kk={kk}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mutated_index_round_trips_segment_stack() {
        let (h, mut ranked, values) = sample(24);
        // Drift the corpus: remove a few built domains, add two batches of
        // fresh ones (two sealed segments), remove one sealed insert.
        ranked.try_remove(3).expect("remove");
        ranked.try_remove(17).expect("remove");
        for k in 0..5u32 {
            let vals = MinHasher::synthetic_values(900 + u64::from(k), 120 + 10 * k as usize);
            let sig = h.signature(vals.iter().copied());
            ranked
                .try_insert(100 + k, vals.len() as u64, &sig)
                .expect("insert");
        }
        ranked.commit();
        for k in 5..8u32 {
            let vals = MinHasher::synthetic_values(900 + u64::from(k), 120 + 10 * k as usize);
            let sig = h.signature(vals.iter().copied());
            ranked
                .try_insert(100 + k, vals.len() as u64, &sig)
                .expect("insert");
        }
        ranked.commit();
        ranked.try_remove(102).expect("remove sealed insert");
        let stats = ranked.segment_stats();
        assert_eq!(stats.segments, 2);
        assert_eq!(stats.tombstones, 3);

        let path = tmp("segmented");
        pack_ranked_to(&ranked, &path).expect("pack");
        let mapped = MmapIndex::open_verified(&path).expect("open");
        assert_eq!(mapped.len(), ranked.len());
        assert_eq!(mapped.segment_stats(), ranked.segment_stats());
        assert_eq!(mapped.next_id_hint(), 108);
        assert_eq!(
            mapped.partition_stats(),
            ranked.ensemble().partition_stats(),
            "overlay partitions must replay bit-identically"
        );
        for k in [0usize, 5, 11, 23] {
            let sig = h.signature(values[k].iter().copied());
            let size = values[k].len() as u64;
            for t in [0.1, 0.5, 0.9] {
                let q = Query::threshold(&sig, t).with_size(size);
                let a = strip_wall(ranked.search(&q).expect("heap"));
                let b = strip_wall(mapped.search(&q).expect("mmap"));
                assert_eq!(a, b, "threshold parity k={k} t={t}");
            }
            let q = Query::top_k(&sig, 5).with_size(size);
            let a = strip_wall(ranked.search(&q).expect("heap"));
            let b = strip_wall(mapped.search(&q).expect("mmap"));
            assert_eq!(a, b, "top-k parity k={k}");
        }
        // Tombstoned ids never resurface; sealed inserts answer exactly.
        let sig3 = h.signature(values[3].iter().copied());
        let q = Query::threshold(&sig3, 0.0).with_size(values[3].len() as u64);
        for outcome in [
            mapped.search(&q).expect("mmap"),
            ranked.search(&q).expect("heap"),
        ] {
            assert!(outcome.hits.iter().all(|hit| hit.id != 3 && hit.id != 102));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batch_equals_looped_singles() {
        let (h, ranked, values) = sample(16);
        let path = tmp("batch");
        pack_ranked_to(&ranked, &path).expect("pack");
        let mapped = MmapIndex::open(&path).expect("open");
        let sigs: Vec<Signature> = values
            .iter()
            .map(|v| h.signature(v.iter().copied()))
            .collect();
        let queries: Vec<Query<'_>> = sigs
            .iter()
            .zip(&values)
            .enumerate()
            .map(|(i, (sig, vals))| {
                if i % 3 == 0 {
                    Query::top_k(sig, 3).with_size(vals.len() as u64)
                } else {
                    Query::threshold(sig, 0.4).with_size(vals.len() as u64)
                }
            })
            .collect();
        let batched = mapped.search_batch(&queries);
        for (q, b) in queries.iter().zip(batched) {
            let single = strip_wall(mapped.search(q).expect("single"));
            assert_eq!(single, strip_wall(b.expect("batched")));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_is_structural_verify_catches_payload_damage() {
        let (_, ranked, _) = sample(8);
        let path = tmp("damage");
        pack_ranked_to(&ranked, &path).expect("pack");
        let store = Store::open(&path).expect("open store");
        let keys_off = store
            .sections()
            .iter()
            .find(|s| s.kind == SectionKind::TreeKeys)
            .expect("keys section")
            .offset as usize;
        drop(store);
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[keys_off + 2] ^= 0x04;
        std::fs::write(&path, &bytes).expect("write");
        // Structural open succeeds (counts are intact)…
        assert!(MmapIndex::open(&path).is_ok());
        // …but the verified open names the damaged section.
        match MmapIndex::open_verified(&path).unwrap_err() {
            MmapIndexError::Store(StoreError::SectionChecksum { section, .. }) => {
                assert_eq!(section, "tree keys");
            }
            other => panic!("wrong error: {other}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_section_is_typed() {
        let path = tmp("missing");
        let mut p = Packer::create(&path).expect("create");
        p.begin_section(SectionKind::Meta).expect("begin");
        p.write(&[0u8; 4]).expect("write");
        p.end_section();
        p.finish().expect("finish");
        let err = MmapIndex::open(&path).unwrap_err();
        assert!(
            matches!(
                err,
                MmapIndexError::Codec {
                    section: "meta",
                    ..
                } | MmapIndexError::Store(StoreError::MissingSection { .. })
            ),
            "got {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn memory_footprint_is_metadata_sized() {
        let (_, ranked, _) = sample(24);
        let path = tmp("memory");
        pack_ranked_to(&ranked, &path).expect("pack");
        let mapped = MmapIndex::open(&path).expect("open");
        let heap = DomainIndex::memory_bytes(&mapped);
        assert!(heap > 0);
        // The heap backend retains ~8·m bytes per domain; the mapped
        // backend must be orders of magnitude below that.
        assert!(
            heap * 10 < RankedIndex::memory_bytes(&ranked),
            "mapped heap {heap} not small vs {}",
            RankedIndex::memory_bytes(&ranked)
        );
        std::fs::remove_file(&path).ok();
    }
}
