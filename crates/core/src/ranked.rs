//! Ranked and top-k containment search.
//!
//! §2 of the paper notes that the threshold and top-k formulations of
//! domain search are "closely related and complementary": thresholds suit
//! join discovery, but exploratory users often want *the k best domains*
//! regardless of score. [`RankedIndex`] layers both over the ensemble by
//! retaining each domain's signature and cardinality, which lets it
//!
//! * rank candidates by their **estimated containment**
//!   (`t̂ = (x/q + 1)·ŝ/(1 + ŝ)`, Eq. 6) instead of returning an unordered
//!   candidate set, and
//! * answer top-k queries by descending through thresholds until enough
//!   candidates accumulate — reusing the tuned threshold machinery instead
//!   of scanning the corpus.
//!
//! The cost is one retained signature per domain (`8·m` bytes); use the
//! plain [`LshEnsemble`] when memory is tighter than ranking is valuable.

use crate::api::{
    CommitReport, DomainIndex, MutableIndex, MutationError, ProbeCounts, Query, QueryError,
    QueryMode, SearchHit, SearchOutcome, SegmentStats, DEFAULT_REBALANCE_TRIGGER, ESTIMATE_SLACK,
};
use crate::ensemble::{EnsembleConfig, LshEnsemble, LshEnsembleBuilder, PartitionStats};
use lshe_lsh::DomainId;
use lshe_minhash::hash::FastHashMap;
use lshe_minhash::{containment_from_jaccard, Signature};

/// A containment-search index that can rank its answers.
#[derive(Debug, Clone)]
pub struct RankedIndex {
    ensemble: LshEnsemble,
    /// id → (cardinality, signature); retained for estimation.
    sketches: FastHashMap<DomainId, (u64, Signature)>,
    /// Equi-depth skew multiple past which a commit rebuilds the
    /// partitioning from the retained sketches.
    rebalance_trigger: f64,
}

/// True when the fullest partition holds more than `trigger` times the
/// mean partition population — the §6.2 drift point where a rebuild pays.
pub(crate) fn skew_exceeds(stats: &[PartitionStats], len: usize, trigger: f64) -> bool {
    if len == 0 || stats.is_empty() {
        return false;
    }
    let max = stats.iter().map(|p| p.count).max().unwrap_or(0);
    (max * stats.len()) as f64 > trigger * len as f64
}

/// Builder for [`RankedIndex`].
#[derive(Debug)]
pub struct RankedIndexBuilder {
    inner: LshEnsembleBuilder,
    sketches: FastHashMap<DomainId, (u64, Signature)>,
}

impl RankedIndexBuilder {
    /// Creates a builder with the given ensemble configuration.
    #[must_use]
    pub fn new(config: EnsembleConfig) -> Self {
        Self {
            inner: LshEnsembleBuilder::new(config),
            sketches: FastHashMap::default(),
        }
    }

    /// Stages a domain.
    ///
    /// # Panics
    /// Panics on zero size, width mismatch, or a duplicate id (ranking
    /// requires ids to be unique).
    pub fn add(&mut self, id: DomainId, size: u64, signature: Signature) {
        let prev = self.sketches.insert(id, (size, signature.clone()));
        assert!(prev.is_none(), "duplicate domain id {id}");
        self.inner.add(id, size, signature);
    }

    /// Number of staged domains.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sketches.len()
    }

    /// True if nothing is staged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sketches.is_empty()
    }

    /// Builds the index.
    ///
    /// # Panics
    /// Panics if the builder is empty.
    #[must_use]
    pub fn build(self) -> RankedIndex {
        RankedIndex {
            ensemble: self.inner.build(),
            sketches: self.sketches,
            rebalance_trigger: DEFAULT_REBALANCE_TRIGGER,
        }
    }
}

/// One ranked answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedHit {
    /// The candidate domain.
    pub id: DomainId,
    /// Estimated containment `t̂(Q, X)` from the retained sketches.
    pub estimated_containment: f64,
}

impl RankedIndex {
    /// A builder with the default configuration.
    #[must_use]
    pub fn builder() -> RankedIndexBuilder {
        RankedIndexBuilder::new(EnsembleConfig::default())
    }

    /// A builder with an explicit configuration.
    #[must_use]
    pub fn builder_with(config: EnsembleConfig) -> RankedIndexBuilder {
        RankedIndexBuilder::new(config)
    }

    /// Number of indexed domains.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sketches.len()
    }

    /// True if nothing is indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sketches.is_empty()
    }

    /// The underlying ensemble (for stats and unranked queries).
    #[must_use]
    pub fn ensemble(&self) -> &LshEnsemble {
        &self.ensemble
    }

    /// The retained (cardinality, signature) sketch of a domain, if indexed.
    #[must_use]
    pub fn sketch(&self, id: DomainId) -> Option<(u64, &Signature)> {
        self.sketches.get(&id).map(|(size, sig)| (*size, sig))
    }

    /// Every retained sketch as `(id, size, signature)`, sorted by id —
    /// the deterministic bulk view sharded rebuilds use.
    #[must_use]
    pub fn sketch_entries(&self) -> Vec<(DomainId, u64, &Signature)> {
        let mut out: Vec<(DomainId, u64, &Signature)> = self
            .sketches
            .iter()
            .map(|(&id, (size, sig))| (id, *size, sig))
            .collect();
        out.sort_unstable_by_key(|&(id, _, _)| id);
        out
    }

    /// Approximate heap memory of the retained sketches alone, in bytes.
    #[must_use]
    pub fn sketch_memory_bytes(&self) -> usize {
        self.sketches
            .values()
            .map(|(_, sig)| sig.len() * 8 + 32)
            .sum()
    }

    /// Approximate heap memory of the whole index (ensemble + sketches).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.ensemble.memory_bytes() + self.sketch_memory_bytes()
    }

    /// Reassembles a ranked index from an already-built ensemble and its
    /// retained sketches — the persistence path, which avoids rebuilding
    /// every partition forest from scratch on load.
    ///
    /// # Panics
    /// Panics if the sketch count differs from the ensemble's length or an
    /// id repeats.
    #[must_use]
    pub fn from_ensemble(
        ensemble: LshEnsemble,
        sketches: impl IntoIterator<Item = (DomainId, u64, Signature)>,
    ) -> Self {
        let mut map: FastHashMap<DomainId, (u64, Signature)> = FastHashMap::default();
        for (id, size, sig) in sketches {
            assert!(size > 0, "domain size must be positive");
            let prev = map.insert(id, (size, sig));
            assert!(prev.is_none(), "duplicate domain id {id}");
        }
        assert_eq!(
            map.len(),
            ensemble.len(),
            "sketch count disagrees with ensemble"
        );
        Self {
            ensemble,
            sketches: map,
            rebalance_trigger: DEFAULT_REBALANCE_TRIGGER,
        }
    }

    /// The configured equi-depth rebalance trigger (see
    /// [`set_rebalance_trigger`](Self::set_rebalance_trigger)).
    #[must_use]
    pub fn rebalance_trigger(&self) -> f64 {
        self.rebalance_trigger
    }

    /// Sets the skew multiple past which [`commit`](Self::commit) rebuilds
    /// the equi-depth partitioning from the retained sketches. Values
    /// ≤ 1.0 rebalance on every commit that follows a mutation; the
    /// default is [`DEFAULT_REBALANCE_TRIGGER`].
    pub fn set_rebalance_trigger(&mut self, trigger: f64) {
        self.rebalance_trigger = trigger;
    }

    /// Typed insert: stages the domain in the ensemble and retains its
    /// sketch. Immediately queryable (including estimates).
    ///
    /// # Errors
    /// As [`LshEnsemble::try_insert`].
    pub fn try_insert(
        &mut self,
        id: DomainId,
        size: u64,
        signature: &Signature,
    ) -> Result<(), MutationError> {
        self.ensemble.try_insert(id, size, signature)?;
        self.sketches.insert(id, (size, signature.clone()));
        Ok(())
    }

    /// Typed removal: drops the domain from the ensemble and its retained
    /// sketch. Takes effect immediately.
    ///
    /// # Errors
    /// [`MutationError::UnknownId`] if the id is not indexed.
    pub fn try_remove(&mut self, id: DomainId) -> Result<(), MutationError> {
        self.ensemble.try_remove(id)?;
        self.sketches.remove(&id);
        Ok(())
    }

    /// True if `id` is currently indexed.
    #[must_use]
    pub fn contains(&self, id: DomainId) -> bool {
        self.sketches.contains_key(&id)
    }

    /// Number of staged (uncommitted) inserts.
    #[must_use]
    pub fn staged_len(&self) -> usize {
        self.ensemble.staged_len()
    }

    /// Seals the staged delta into an immutable segment (O(staged delta))
    /// and — because this index retains every sketch — rebuilds the
    /// equi-depth partitioning from scratch when drift passed the
    /// configured trigger, restoring the exact freshly-built layout
    /// (§6.2's remedy, automated). The rebuild also folds outstanding
    /// segments and erases tombstones, since it starts from the live
    /// sketch set.
    pub fn commit(&mut self) -> CommitReport {
        let merged = self.ensemble.staged_len();
        let sealed = self.ensemble.commit();
        let rebalanced = self.maybe_rebalance();
        let stats = self.ensemble.segment_stats();
        CommitReport {
            merged,
            rebalanced,
            sealed,
            segments: stats.segments,
            tombstones: stats.tombstones,
        }
    }

    /// Forces the O(corpus) merge: seals any staged delta, then rebuilds
    /// the partitioning from the retained sketches (the same path a
    /// triggered rebalance takes), leaving zero outstanding segments and
    /// tombstones.
    pub fn compact(&mut self) -> CommitReport {
        let merged = self.ensemble.staged_len();
        let sealed = self.ensemble.commit();
        if !self.rebuild_from_sketches() {
            // Degenerate corpus (emptied index): fold in place instead.
            self.ensemble.compact();
        }
        let stats = self.ensemble.segment_stats();
        CommitReport {
            merged,
            rebalanced: true,
            sealed,
            segments: stats.segments,
            tombstones: stats.tombstones,
        }
    }

    /// Outstanding segments/tombstones on the inner ensemble.
    #[must_use]
    pub fn segment_stats(&self) -> SegmentStats {
        self.ensemble.segment_stats()
    }

    /// The inner ensemble's tier layout, for merge planning.
    #[must_use]
    pub fn segment_layout(&self) -> crate::SegmentLayout {
        self.ensemble.segment_layout()
    }

    /// Folds the listed sealed segments into one new segment on the inner
    /// ensemble — O(folded entries). The retained sketches track live ids
    /// and are unaffected (a partial merge neither adds nor removes
    /// domains). Returns the number of live entries folded.
    pub fn merge_segments(&mut self, segment_indices: &[usize]) -> usize {
        self.ensemble.merge_segments(segment_indices)
    }

    /// Rebuilds the inner ensemble from the retained sketches when the
    /// BASE partition-population skew exceeds the trigger. Segment and
    /// staged tiers are excluded from the metric: they are transient by
    /// design, and counting them would turn a routine stack of sealed
    /// segments into fake drift — putting the O(corpus) rebuild back on
    /// the commit path the tiering exists to protect.
    fn maybe_rebalance(&mut self) -> bool {
        if !skew_exceeds(
            &self.ensemble.base_partition_stats(),
            self.ensemble.len(),
            self.rebalance_trigger,
        ) {
            return false;
        }
        self.rebuild_from_sketches()
    }

    /// Rebuilds the inner ensemble from the retained sketches, restoring
    /// the exact freshly-built layout. Returns `false` (doing nothing)
    /// when the index is empty — `build_from_parts` needs at least one
    /// domain.
    fn rebuild_from_sketches(&mut self) -> bool {
        if self.sketches.is_empty() {
            return false;
        }
        let config = *self.ensemble.config();
        // Borrow only the sketches field so the finished ensemble can be
        // swapped in while the borrowed signatures are still alive.
        let mut entries: Vec<(DomainId, u64, &Signature)> = self
            .sketches
            .iter()
            .map(|(&id, (size, sig))| (id, *size, sig))
            .collect();
        entries.sort_unstable_by_key(|&(id, _, _)| id);
        let ids: Vec<DomainId> = entries.iter().map(|&(id, _, _)| id).collect();
        let sizes: Vec<u64> = entries.iter().map(|&(_, size, _)| size).collect();
        let sigs: Vec<&Signature> = entries.iter().map(|&(_, _, sig)| sig).collect();
        let rebuilt = LshEnsemble::build_from_parts(config, &ids, &sizes, &sigs);
        drop((entries, ids, sizes, sigs));
        self.ensemble = rebuilt;
        true
    }

    /// Ranks arbitrary candidate ids by estimated containment (descending,
    /// ties by id). Candidates must all be indexed.
    ///
    /// # Panics
    /// Panics if a candidate id was never indexed.
    #[must_use]
    pub fn rank_candidates(
        &self,
        candidates: Vec<DomainId>,
        signature: &Signature,
        query_size: u64,
    ) -> Vec<RankedHit> {
        self.rank(candidates, signature, query_size)
    }

    fn rank(&self, candidates: Vec<DomainId>, signature: &Signature, q: u64) -> Vec<RankedHit> {
        let mut hits: Vec<RankedHit> = candidates
            .into_iter()
            .map(|id| {
                let (x, sig) = &self.sketches[&id];
                let s = signature.jaccard(sig);
                RankedHit {
                    id,
                    estimated_containment: containment_from_jaccard(s, *x as f64, q as f64),
                }
            })
            .collect();
        hits.sort_by(|a, b| {
            b.estimated_containment
                .partial_cmp(&a.estimated_containment)
                .expect("no NaN")
                .then(a.id.cmp(&b.id))
        });
        hits
    }

    /// Threshold search with ranked output: candidates at `t_star`, sorted
    /// by estimated containment (descending), with candidates whose
    /// *estimate* falls below `t_star − slack` pruned. A small slack keeps
    /// borderline true positives (estimates are noisy at ±1/√m).
    ///
    /// # Panics
    /// As [`LshEnsemble::query_with_size`].
    #[must_use]
    pub fn query_ranked(
        &self,
        signature: &Signature,
        query_size: u64,
        t_star: f64,
        slack: f64,
    ) -> Vec<RankedHit> {
        self.query_ranked_counted(signature, query_size, t_star, slack, false)
            .0
    }

    /// Instrumented [`query_ranked`](Self::query_ranked): hits plus the
    /// probe counters of the underlying ensemble sweep.
    pub(crate) fn query_ranked_counted(
        &self,
        signature: &Signature,
        query_size: u64,
        t_star: f64,
        slack: f64,
        parallel: bool,
    ) -> (Vec<RankedHit>, ProbeCounts) {
        let (raw, probe) = self
            .ensemble
            .query_counted(signature, query_size, t_star, parallel);
        let mut hits = self.rank(raw, signature, query_size);
        hits.retain(|h| h.estimated_containment >= t_star - slack);
        (hits, probe)
    }

    /// Top-k search: descends through containment thresholds
    /// (1.0, 0.9, …, 0.1, 0.0) until at least `k` distinct candidates have
    /// been collected, then returns the best `k` by estimated containment.
    ///
    /// # Panics
    /// Panics if `k == 0`, plus the usual query validation.
    #[must_use]
    pub fn query_top_k(&self, signature: &Signature, query_size: u64, k: usize) -> Vec<RankedHit> {
        self.query_top_k_counted(signature, query_size, k, false).0
    }

    /// Instrumented [`query_top_k`](Self::query_top_k). Probe counters
    /// accumulate raw candidates across the descent passes; partitions
    /// probed is the maximum over passes (so it stays ≤ total).
    pub(crate) fn query_top_k_counted(
        &self,
        signature: &Signature,
        query_size: u64,
        k: usize,
        parallel: bool,
    ) -> (Vec<RankedHit>, ProbeCounts) {
        assert!(k > 0, "k must be positive");
        let (seen, probe) = crate::api::top_k_descend(k, |t| {
            self.ensemble
                .query_counted(signature, query_size, t, parallel)
        });
        let mut hits = self.rank(seen, signature, query_size);
        hits.truncate(k);
        (hits, probe)
    }
}

impl MutableIndex for RankedIndex {
    fn insert(
        &mut self,
        id: DomainId,
        size: u64,
        signature: &Signature,
    ) -> Result<(), MutationError> {
        self.try_insert(id, size, signature)
    }

    fn remove(&mut self, id: DomainId) -> Result<(), MutationError> {
        self.try_remove(id)
    }

    fn commit(&mut self) -> CommitReport {
        RankedIndex::commit(self)
    }

    fn staged_len(&self) -> usize {
        RankedIndex::staged_len(self)
    }

    fn compact(&mut self) -> CommitReport {
        RankedIndex::compact(self)
    }

    fn segment_stats(&self) -> SegmentStats {
        RankedIndex::segment_stats(self)
    }

    fn segment_layout(&self) -> crate::SegmentLayout {
        RankedIndex::segment_layout(self)
    }

    fn apply_merge(&mut self, task: &crate::MergeTask) -> crate::MergeOutcome {
        let entries_folded = match task {
            crate::MergeTask::Merge(idxs) => self.merge_segments(idxs),
            crate::MergeTask::Full => {
                // The full fold rebuilds from the retained sketches, so
                // every live entry is rewritten.
                let folded = self.ensemble.len();
                RankedIndex::compact(self);
                folded
            }
        };
        let stats = self.segment_stats();
        crate::MergeOutcome {
            entries_folded,
            segments: stats.segments,
            tombstones: stats.tombstones,
        }
    }
}

/// Converts ranked hits into the unified [`SearchHit`] shape.
fn to_search_hits(hits: Vec<RankedHit>) -> Vec<SearchHit> {
    hits.into_iter()
        .map(|h| SearchHit {
            id: h.id,
            estimate: Some(h.estimated_containment),
        })
        .collect()
}

impl DomainIndex for RankedIndex {
    fn search(&self, query: &Query<'_>) -> Result<SearchOutcome, QueryError> {
        query.validate_for(self.ensemble.config().num_perm)?;
        let started = std::time::Instant::now();
        let q = query.effective_size();
        let (hits, probe) = match query.mode() {
            QueryMode::Threshold(t_star) => self.query_ranked_counted(
                query.signature(),
                q,
                t_star,
                ESTIMATE_SLACK,
                query.parallel(),
            ),
            QueryMode::TopK(k) => {
                self.query_top_k_counted(query.signature(), q, k, query.parallel())
            }
        };
        Ok(crate::api::outcome_from_hits(
            to_search_hits(hits),
            probe,
            started,
        ))
    }

    fn search_batch(&self, queries: &[Query<'_>]) -> Vec<Result<SearchOutcome, QueryError>> {
        crate::batch::split_and_run(
            queries,
            self.ensemble.config().num_perm,
            |items| {
                // One batched ensemble sweep for every threshold query;
                // ranking runs in the same worker lane, straight after the
                // query's dedup.
                self.ensemble
                    .batch_threshold_map(items, |item, ids, probe, mut nanos| {
                        let started = std::time::Instant::now();
                        let mut hits = self.rank(ids, item.signature, item.size);
                        hits.retain(|h| h.estimated_containment >= item.t_star - ESTIMATE_SLACK);
                        nanos += started.elapsed().as_nanos() as u64;
                        crate::api::outcome_from_hits_timed(to_search_hits(hits), probe, nanos)
                    })
            },
            |query, k| {
                let started = std::time::Instant::now();
                let (hits, probe) = self.query_top_k_counted(
                    query.signature(),
                    query.effective_size(),
                    k,
                    query.parallel(),
                );
                Ok(crate::api::outcome_from_hits(
                    to_search_hits(hits),
                    probe,
                    started,
                ))
            },
        )
    }

    fn len(&self) -> usize {
        self.sketches.len()
    }

    fn memory_bytes(&self) -> usize {
        RankedIndex::memory_bytes(self)
    }

    fn describe(&self) -> String {
        format!("Ranked {}", DomainIndex::describe(&self.ensemble))
    }
}

/// Merges two sorted unique id lists into one sorted unique list.
pub(crate) fn merge_unique(a: &[DomainId], b: &[DomainId]) -> Vec<DomainId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionStrategy;
    use lshe_minhash::MinHasher;

    /// Nested pool corpus: domain k holds the first 30·(k+1) pool values.
    fn index(n: usize) -> (MinHasher, RankedIndex, Vec<Vec<u64>>) {
        let h = MinHasher::new(256);
        let pool = MinHasher::synthetic_values(3, 30 * n);
        let mut b = RankedIndex::builder_with(EnsembleConfig {
            strategy: PartitionStrategy::EquiDepth { n: 4 },
            ..EnsembleConfig::default()
        });
        let mut values = Vec::new();
        for k in 0..n {
            let vals: Vec<u64> = pool[..30 * (k + 1)].to_vec();
            b.add(
                k as u32,
                vals.len() as u64,
                h.signature(vals.iter().copied()),
            );
            values.push(vals);
        }
        (h, b.build(), values)
    }

    #[test]
    fn ranked_output_is_descending() {
        let (h, idx, values) = index(20);
        let q = h.signature(values[2].iter().copied());
        let hits = idx.query_ranked(&q, values[2].len() as u64, 0.3, 0.1);
        assert!(!hits.is_empty());
        for w in hits.windows(2) {
            assert!(w[0].estimated_containment >= w[1].estimated_containment);
        }
    }

    #[test]
    fn self_match_ranks_first_with_estimate_one() {
        let (h, idx, values) = index(20);
        let q = h.signature(values[5].iter().copied());
        let hits = idx.query_ranked(&q, values[5].len() as u64, 0.5, 0.1);
        // Domain 5 and every superset have true containment 1.0; the self
        // match has Jaccard exactly 1 so its estimate is exactly 1.
        let self_hit = hits.iter().find(|hh| hh.id == 5).expect("self found");
        assert!((self_hit.estimated_containment - 1.0).abs() < 1e-9);
        assert!(hits[0].estimated_containment >= self_hit.estimated_containment);
    }

    #[test]
    fn top_k_returns_k_best() {
        let (h, idx, values) = index(25);
        let q = h.signature(values[3].iter().copied());
        let hits = idx.query_top_k(&q, values[3].len() as u64, 5);
        assert_eq!(hits.len(), 5);
        // All returned should be supersets (containment ≈ 1) of domain 3.
        for hh in &hits {
            assert!(hh.estimated_containment > 0.8, "weak hit in top-5: {hh:?}");
        }
        for w in hits.windows(2) {
            assert!(w[0].estimated_containment >= w[1].estimated_containment);
        }
    }

    #[test]
    fn top_k_larger_than_matches_returns_what_exists() {
        let (h, idx, values) = index(5);
        let q = h.signature(values[0].iter().copied());
        let hits = idx.query_top_k(&q, values[0].len() as u64, 100);
        assert!(hits.len() <= 5);
        assert!(!hits.is_empty());
    }

    #[test]
    fn estimates_track_exact_containment() {
        let (h, idx, values) = index(20);
        let q_vals = &values[4];
        let q = h.signature(q_vals.iter().copied());
        let hits = idx.query_ranked(&q, q_vals.len() as u64, 0.2, 0.15);
        for hh in hits {
            let x_vals = &values[hh.id as usize];
            let inter = q_vals.iter().filter(|v| x_vals.contains(v)).count();
            let exact = inter as f64 / q_vals.len() as f64;
            assert!(
                (hh.estimated_containment - exact).abs() < 0.2,
                "id {}: est {} vs exact {exact}",
                hh.id,
                hh.estimated_containment
            );
        }
    }

    #[test]
    fn slack_zero_prunes_harder_than_slack_wide() {
        let (h, idx, values) = index(20);
        let q = h.signature(values[2].iter().copied());
        let strict = idx.query_ranked(&q, values[2].len() as u64, 0.6, 0.0);
        let loose = idx.query_ranked(&q, values[2].len() as u64, 0.6, 0.3);
        assert!(strict.len() <= loose.len());
    }

    #[test]
    fn mutation_updates_sketches_and_estimates() {
        let (h, mut idx, values) = index(15);
        let vals = MinHasher::synthetic_values(444, 120);
        let sig = h.signature(vals.iter().copied());
        idx.try_insert(600, 120, &sig).expect("insert");
        assert!(idx.contains(600));
        assert_eq!(idx.staged_len(), 1);
        // Staged insert is queryable WITH an estimate (self t̂ = 1).
        let hits = idx.query_ranked(&sig, 120, 0.9, 0.1);
        let own = hits.iter().find(|hh| hh.id == 600).expect("self hit");
        assert!((own.estimated_containment - 1.0).abs() < 1e-9);
        // Duplicate → typed error; sketch map untouched.
        assert_eq!(
            idx.try_insert(600, 120, &sig),
            Err(MutationError::DuplicateId(600))
        );
        assert_eq!(idx.len(), 16);
        // Removal drops the sketch too.
        idx.try_remove(600).expect("remove");
        assert!(!idx.contains(600));
        assert!(idx.sketch(600).is_none());
        assert_eq!(idx.try_remove(600), Err(MutationError::UnknownId(600)));
        // Existing domains unaffected.
        let q = h.signature(values[4].iter().copied());
        assert!(idx
            .query_ranked(&q, values[4].len() as u64, 0.9, 0.1)
            .iter()
            .any(|hh| hh.id == 4));
    }

    #[test]
    fn commit_seals_and_compaction_rebalances() {
        let (h, mut idx, _) = index(16);
        // Flood one size class. Under tiered commits the flood seals into
        // a segment: the BASE layout — and with it the drift metric — is
        // untouched, so commit stays O(staged delta) however large the
        // flood. Only compaction pays the rebuild.
        for i in 0..64u32 {
            let vals = MinHasher::synthetic_values(9_000 + u64::from(i), 10);
            idx.try_insert(1_000 + i, 10, &h.signature(vals.iter().copied()))
                .expect("insert");
        }
        idx.set_rebalance_trigger(1.0);
        let counts = |idx: &RankedIndex| -> Vec<usize> {
            idx.ensemble()
                .base_partition_stats()
                .iter()
                .map(|p| p.count)
                .collect()
        };
        let base_before = counts(&idx);
        let report = idx.commit();
        assert_eq!(report.merged, 64);
        assert!(report.sealed, "non-empty delta must seal");
        assert!(!report.rebalanced, "sealed commit must not rebuild");
        assert_eq!(report.segments, 1);
        assert_eq!(counts(&idx), base_before, "seal touched the base");
        assert_eq!(idx.staged_len(), 0);
        // Compaction folds the segment and rebuilds equi-depth from the
        // retained sketches: the flooded class spreads across the base.
        let folded = idx.compact();
        assert!(folded.rebalanced, "compaction must rebuild the base");
        assert_eq!((folded.segments, folded.tombstones), (0, 0));
        assert_eq!(counts(&idx).iter().sum::<usize>(), 80);
        // Everything is still queryable after the fold.
        for i in [1_000u32, 1_031, 1_063] {
            let vals = MinHasher::synthetic_values(9_000 + u64::from(i - 1_000), 10);
            let sig = h.signature(vals.iter().copied());
            assert!(
                idx.query_ranked(&sig, 10, 0.9, 0.1)
                    .iter()
                    .any(|hh| hh.id == i),
                "domain {i} lost in compaction"
            );
        }
    }

    #[test]
    fn commit_below_trigger_keeps_layout() {
        let (h, mut idx, _) = index(16);
        let sig = h.signature(MinHasher::synthetic_values(1, 50));
        idx.try_insert(999, 50, &sig).expect("insert");
        idx.set_rebalance_trigger(1_000.0);
        let before = idx.ensemble().partition_stats();
        let report = idx.commit();
        assert!(!report.rebalanced);
        assert_eq!(idx.ensemble().partition_stats().len(), before.len());
    }

    #[test]
    #[should_panic(expected = "duplicate domain id")]
    fn duplicate_id_rejected() {
        let h = MinHasher::new(256);
        let mut b = RankedIndex::builder();
        let sig = h.signature(MinHasher::synthetic_values(1, 10));
        b.add(1, 10, sig.clone());
        b.add(1, 10, sig);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let (h, idx, values) = index(5);
        let q = h.signature(values[0].iter().copied());
        let _ = idx.query_top_k(&q, values[0].len() as u64, 0);
    }

    #[test]
    fn merge_unique_works() {
        assert_eq!(merge_unique(&[1, 3, 5], &[2, 3, 6]), vec![1, 2, 3, 5, 6]);
        assert_eq!(merge_unique(&[], &[1]), vec![1]);
        assert_eq!(merge_unique(&[1], &[]), vec![1]);
    }
}
