//! Containment ↔ Jaccard threshold conversion (§5.1 of the paper).
//!
//! LSH indexes filter by Jaccard similarity, but domain search specifies a
//! containment threshold `t*`. For a partition whose domain sizes are
//! bounded above by `u`, the conservative conversion
//!
//! ```text
//! s* = ŝ_{u,q}(t*) = t* / (u/q + 1 − t*)        (Eq. 7)
//! ```
//!
//! uses the upper bound `u ≥ x`, and because `ŝ_{x,q}(t)` decreases in `x`,
//! `s* ≤ ŝ_{x,q}(t*)` — filtering at `s*` never introduces a false negative
//! beyond those of the underlying LSH (the paper's "no new false negatives"
//! guarantee).

pub use lshe_minhash::{containment_from_jaccard, jaccard_from_containment};

/// The conservative per-partition Jaccard threshold `s* = ŝ_{u,q}(t*)`
/// (Eq. 7), where `u` is the partition's domain-size upper bound and `q`
/// the query size.
///
/// # Panics
/// Panics if `q == 0`, `u == 0`, or `t_star` outside `[0, 1]`.
#[must_use]
pub fn jaccard_threshold(t_star: f64, u: u64, q: u64) -> f64 {
    assert!(u > 0, "partition upper bound must be positive");
    assert!(q > 0, "query size must be positive");
    assert!(
        (0.0..=1.0).contains(&t_star),
        "containment threshold must be in [0, 1]"
    );
    jaccard_from_containment(t_star, u as f64, q as f64)
}

/// The *effective* containment threshold applied to a domain of size `x`
/// when the partition filters at `s* = ŝ_{u,q}(t*)` (Proposition 1):
///
/// ```text
/// t_x = (x + q)·t* / (u + q)
/// ```
///
/// Domains whose true containment lies in `[t_x, t*)` pass the Jaccard
/// filter yet fail the containment threshold — the false positives the cost
/// model of §5.3 counts.
///
/// # Panics
/// Panics on zero sizes or `t_star` outside `[0, 1]`.
#[must_use]
pub fn effective_threshold(t_star: f64, x: u64, u: u64, q: u64) -> f64 {
    assert!(x > 0 && u > 0 && q > 0, "sizes must be positive");
    assert!(
        (0.0..=1.0).contains(&t_star),
        "containment threshold must be in [0, 1]"
    );
    (x + q) as f64 * t_star / (u + q) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_eq7_closed_form() {
        // s* = t* / (u/q + 1 − t*)
        let s = jaccard_threshold(0.5, 30, 10);
        assert!((s - 0.5 / (3.0 + 1.0 - 0.5)).abs() < 1e-12);
    }

    #[test]
    fn conservative_never_above_exact() {
        // s* computed with u must be ≤ ŝ_{x,q}(t*) for every x ≤ u.
        let (q, u, t) = (10u64, 100u64, 0.7);
        let s_star = jaccard_threshold(t, u, q);
        for x in 1..=u {
            let exact = jaccard_from_containment(t, x as f64, q as f64);
            assert!(
                s_star <= exact + 1e-12,
                "x={x}: s*={s_star} > exact {exact}"
            );
        }
    }

    #[test]
    fn effective_threshold_matches_prop1() {
        // t_x = (x+q)t*/(u+q); at x = u it equals t*.
        let t = effective_threshold(0.5, 100, 100, 10);
        assert!((t - 0.5).abs() < 1e-12);
        let t = effective_threshold(0.5, 50, 100, 10);
        assert!((t - 60.0 * 0.5 / 110.0).abs() < 1e-12);
    }

    #[test]
    fn effective_threshold_round_trips_through_conversion() {
        // t_x is defined as t̂_{x,q}(s*) — check the two derivations agree.
        let (t_star, x, u, q) = (0.6, 40u64, 120u64, 15u64);
        let s_star = jaccard_threshold(t_star, u, q);
        let via_conversion = containment_from_jaccard(s_star, x as f64, q as f64);
        let via_prop1 = effective_threshold(t_star, x, u, q);
        assert!(
            (via_conversion - via_prop1).abs() < 1e-12,
            "{via_conversion} vs {via_prop1}"
        );
    }

    #[test]
    fn effective_threshold_monotone_in_x() {
        let mut prev = 0.0;
        for x in [10u64, 20, 40, 80, 100] {
            let t = effective_threshold(0.8, x, 100, 10);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn tighter_upper_bound_raises_jaccard_threshold() {
        // Partitioning's whole point: smaller u ⇒ larger (sharper) s*.
        let loose = jaccard_threshold(0.5, 10_000, 10);
        let tight = jaccard_threshold(0.5, 100, 10);
        assert!(tight > loose * 10.0, "tight {tight} vs loose {loose}");
    }

    #[test]
    #[should_panic(expected = "query size")]
    fn zero_query_rejected() {
        let _ = jaccard_threshold(0.5, 10, 0);
    }
}
