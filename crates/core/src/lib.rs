//! # lshe-core — LSH Ensemble
//!
//! A from-scratch Rust implementation of **LSH Ensemble** (Zhu, Nargesian,
//! Pu & Miller, *LSH Ensemble: Internet-Scale Domain Search*, VLDB 2016):
//! an index for *domain search* — given a query set `Q` and a containment
//! threshold `t*`, find all indexed sets `X` with
//! `t(Q, X) = |Q ∩ X| / |Q| ≥ t*`.
//!
//! ## How it works (paper §5)
//!
//! 1. **Partition by cardinality** ([`partition`]): domains are grouped into
//!    size classes; equi-depth partitioning approximates the optimal
//!    (equal-false-positive) partitioning under the power-law size
//!    distributions real web corpora exhibit (Theorems 1–2).
//! 2. **Convert the threshold** ([`convert`]): each partition turns `t*`
//!    into a conservative Jaccard threshold through its size upper bound
//!    `u` — `s* = t*/(u/q + 1 − t*)` — which never introduces new false
//!    negatives (Eq. 7).
//! 3. **Tune and query a dynamic LSH** ([`tuning`], [`ensemble`]): each
//!    partition holds an LSH Forest queried at per-query parameters
//!    `(b, r)` minimising the false-positive + false-negative probability
//!    mass (Eq. 22–26). Results from all partitions are unioned.
//!
//! ## Quick example
//!
//! ```
//! use lshe_core::{LshEnsemble, EnsembleConfig, PartitionStrategy};
//! use lshe_minhash::MinHasher;
//!
//! let hasher = MinHasher::new(256);
//! let mut builder = LshEnsemble::builder_with(EnsembleConfig {
//!     strategy: PartitionStrategy::EquiDepth { n: 4 },
//!     ..EnsembleConfig::default()
//! });
//!
//! // Index three domains (id, exact size, MinHash signature).
//! let pool = MinHasher::synthetic_values(1, 300);
//! for (id, n) in [(0u32, 100usize), (1, 200), (2, 300)] {
//!     let sig = hasher.signature(pool[..n].iter().copied());
//!     builder.add(id, n as u64, sig);
//! }
//! let index = builder.build();
//!
//! // Search: which domains contain ≥ 50% of the first 100 pool values?
//! // All three contain the query fully; LSH recall is probabilistic, but
//! // the exact self-match is always found.
//! let query = hasher.signature(pool[..100].iter().copied());
//! let hits = index.query_with_size(&query, 100, 0.5);
//! assert!(hits.contains(&0));
//! ```
//!
//! ## Baselines and deployment
//!
//! * [`baselines`] — the paper's comparison points under identical rules:
//!   single-partition MinHash LSH and Asymmetric Minwise Hashing (global
//!   and per-partition padding).
//! * [`sharded`] — the in-process equivalent of the paper's 5-node cluster:
//!   independent ensembles queried in parallel, answers unioned.
//! * [`cost`] — the false-positive cost model (Propositions 1–2) that backs
//!   the optimal partitioner.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod api;
pub mod baselines;
pub mod batch;
pub mod convert;
pub mod cost;
pub mod ensemble;
pub mod maintenance;
pub mod mmap;
pub mod partition;
pub mod persist;
pub mod ranked;
pub mod sharded;
pub mod tuning;

pub use api::{
    needs_compaction, CommitReport, DomainIndex, ForestIndex, MutableIndex, MutationError, Query,
    QueryError, QueryMode, QueryStats, SearchHit, SearchOutcome, SegmentStats, ShardedRanked,
    DEFAULT_REBALANCE_TRIGGER, ESTIMATE_SLACK, MAX_SEGMENTS, MAX_TOMBSTONE_RATIO,
};
pub use baselines::{
    baseline_minhash_lsh, AsymIndex, AsymIndexBuilder, AsymPartitionedIndex, ContainmentSearch,
};
pub use ensemble::{EnsembleConfig, LshEnsemble, LshEnsembleBuilder, PartitionStats};
pub use maintenance::{
    CompactionThresholds, Leveled, MaintenancePlanner, MergeOutcome, MergePolicy, MergePolicyKind,
    MergeTask, SegmentLayout, Tiered,
};
pub use mmap::{pack_ranked, pack_ranked_to, pack_ranked_with, MmapIndex, MmapIndexError};
pub use partition::{Partition, PartitionStrategy, Partitioning};
pub use ranked::{RankedHit, RankedIndex, RankedIndexBuilder};
pub use sharded::{ShardedEnsemble, ShardedEnsembleBuilder};
pub use tuning::{TunedParams, Tuner};
