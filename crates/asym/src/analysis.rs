//! Analytic model of Asymmetric Minwise Hashing recall (paper appendix,
//! Figure 10).
//!
//! For a fully contained domain (`t = 1`), the padded Jaccard similarity is
//! `q / M` (Eq. 31 at `t = 1`), so the probability of being selected by a
//! `(b, r)` LSH is
//!
//! ```text
//! P(t = 1 | M, q, b, r) = 1 − (1 − (q/M)^r)^b            (Eq. 32)
//! ```
//!
//! which collapses toward zero as the corpus maximum `M` grows — the
//! skew-driven recall failure the evaluation section demonstrates
//! empirically.

/// Probability that a *perfectly contained* domain (`t(Q,X) = 1`) survives a
/// `(b, r)` banded LSH after padding to maximum size `max_size` (Eq. 32).
///
/// # Panics
/// Panics if `query_size == 0`, `max_size < query_size`, or `b`/`r` is zero.
#[must_use]
pub fn selection_probability_full_containment(
    max_size: u64,
    query_size: u64,
    b: u32,
    r: u32,
) -> f64 {
    assert!(query_size > 0, "query size must be positive");
    assert!(
        max_size >= query_size,
        "max size must be at least the query size"
    );
    assert!(b > 0 && r > 0, "banding parameters must be positive");
    let s = query_size as f64 / max_size as f64;
    1.0 - (1.0 - s.powi(r as i32)).powi(b as i32)
}

/// Minimum number of hash functions `m*` needed to keep
/// `P(t = 1 | M, q, b = m, r = 1) ≥ p_target` (the right panel of
/// Figure 10).
///
/// With `r = 1` and `b = m` (the most recall-friendly configuration),
/// `P = 1 − (1 − q/M)^m ≥ p ⟺ m ≥ ln(1 − p) / ln(1 − q/M)`.
///
/// # Panics
/// Panics if `p_target` is outside `(0, 1)`, or on invalid sizes.
#[must_use]
pub fn min_hash_functions_for_recall(max_size: u64, query_size: u64, p_target: f64) -> u64 {
    assert!(
        p_target > 0.0 && p_target < 1.0,
        "target probability must be in (0, 1)"
    );
    assert!(query_size > 0, "query size must be positive");
    assert!(
        max_size >= query_size,
        "max size must be at least the query size"
    );
    if max_size == query_size {
        return 1; // q/M = 1: a single hash function always collides.
    }
    let s = query_size as f64 / max_size as f64;
    ((1.0 - p_target).ln() / (1.0 - s).ln()).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_probability_decreases_with_max_size() {
        let mut prev = 1.1;
        for m in [10u64, 100, 1_000, 10_000, 100_000] {
            let p = selection_probability_full_containment(m, 1, 256, 1);
            assert!(p < prev, "M={m}: p={p} did not decrease");
            prev = p;
        }
    }

    #[test]
    fn selection_probability_near_one_when_no_skew() {
        // M == q: padded similarity is 1, always selected.
        let p = selection_probability_full_containment(100, 100, 8, 4);
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn selection_probability_collapses_at_high_skew() {
        // The appendix's point: at M = 8000, q = 1, even (b=256, r=1) keeps
        // only a small chance of selecting a perfectly contained domain.
        let p = selection_probability_full_containment(8_000, 1, 256, 1);
        assert!(p < 0.05, "p = {p}");
    }

    #[test]
    fn min_hash_functions_grows_linearly_in_max_size() {
        // Figure 10 (right): m* is ~linear in M. Check ratio stability.
        let m1 = min_hash_functions_for_recall(1_000, 1, 0.5);
        let m2 = min_hash_functions_for_recall(2_000, 1, 0.5);
        let m4 = min_hash_functions_for_recall(4_000, 1, 0.5);
        let r21 = m2 as f64 / m1 as f64;
        let r42 = m4 as f64 / m2 as f64;
        assert!((r21 - 2.0).abs() < 0.05, "ratio {r21}");
        assert!((r42 - 2.0).abs() < 0.05, "ratio {r42}");
    }

    #[test]
    fn min_hash_functions_satisfies_target() {
        for &(max, q, p) in &[(5_000u64, 1u64, 0.5f64), (1_000, 10, 0.9), (300, 7, 0.75)] {
            let m = min_hash_functions_for_recall(max, q, p);
            let achieved = selection_probability_full_containment(max, q, m as u32, 1);
            assert!(achieved >= p, "m={m} achieves {achieved} < {p}");
            if m > 1 {
                let under = selection_probability_full_containment(max, q, m as u32 - 1, 1);
                assert!(under < p, "m−1 already achieves {under} ≥ {p}");
            }
        }
    }

    #[test]
    fn degenerate_equal_sizes() {
        assert_eq!(min_hash_functions_for_recall(50, 50, 0.99), 1);
    }

    #[test]
    #[should_panic(expected = "target probability")]
    fn bad_target_rejected() {
        let _ = min_hash_functions_for_recall(100, 1, 1.0);
    }
}
