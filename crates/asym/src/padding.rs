//! Signature-level padding with analytically sampled minima.
//!
//! ## What real padding does
//!
//! Asymmetric Minwise Hashing appends `k = M − x` *fresh* values to a domain
//! of size `x` (fresh = never seen in any other domain or query). Under a
//! minwise permutation, each fresh value hashes to an independent uniform
//! point of the field, so the padded signature slot is
//!
//! ```text
//! padded_i = min(orig_i, min of k i.i.d. Uniform[0, p) draws)
//! ```
//!
//! ## Why we can sample the second operand directly
//!
//! The only property LSH and Jaccard estimation consume is the per-slot
//! collision behaviour: a fresh padding value can never equal a query's hash
//! (it is fresh), so the padding minimum acts purely as a *censoring* value
//! that hides the original slot whenever it is smaller. Its distribution is
//! fully characterised by `P(min > v) = (1 − v/p)^k`, which we invert:
//!
//! ```text
//! padmin = p · (1 − U^(1/k)),   U ~ Uniform(0, 1]
//! ```
//!
//! drawn from a deterministic per-(domain, slot) stream. This reproduces the
//! exact distribution of real padding at O(1) cost per slot instead of
//! O(M − x) hashing work — the substitution documented in DESIGN.md.

use lshe_minhash::hash::{splitmix64, SeedStream};
use lshe_minhash::{Signature, MERSENNE_PRIME};

/// Deterministic sampler for padding minima.
///
/// Two samplers with the same seed produce identical padded signatures for
/// identical `(domain_key, slot, k)` triples, keeping indexes reproducible.
#[derive(Debug, Clone, Copy)]
pub struct PaddingSampler {
    seed: u64,
}

impl PaddingSampler {
    /// Workspace default padding seed.
    pub const DEFAULT_SEED: u64 = 0x0FAD_0FAD_0FAD_0FAD;

    /// Creates a sampler with an explicit seed.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        Self { seed }
    }

    /// Samples the minimum of `k` i.i.d. uniform draws over `[0, p)` for the
    /// given `(domain_key, slot)` coordinate.
    ///
    /// Returns `u64::MAX` (no censoring) when `k == 0`.
    #[must_use]
    pub fn pad_min(&self, domain_key: u64, slot: usize, k: u64) -> u64 {
        if k == 0 {
            return u64::MAX;
        }
        // One well-mixed word per (seed, domain, slot) coordinate.
        let mixed = splitmix64(self.seed ^ splitmix64(domain_key) ^ (slot as u64).rotate_left(32));
        let mut stream = SeedStream::new(mixed);
        // U in (0, 1]: flip the half-open interval to avoid ln(0)/0^x edge.
        let u = 1.0 - stream.next_f64();
        // Inverse transform of P(min ≤ v) = 1 − (1 − v/p)^k.
        let frac = 1.0 - u.powf(1.0 / k as f64);
        // Clamp into the field; rounding may touch p itself.
        ((frac * MERSENNE_PRIME as f64) as u64).min(MERSENNE_PRIME - 1)
    }
}

/// Pads a domain signature to the corpus maximum size `max_size` (the `M` of
/// the paper), given the domain's true size `size` and a stable `domain_key`
/// used to derive the fresh padding values.
///
/// The query side of Asymmetric Minwise Hashing is *not* padded; only call
/// this for indexed domains.
///
/// # Panics
/// Panics if `size > max_size`.
#[must_use]
pub fn pad_signature(
    sig: &Signature,
    domain_key: u64,
    size: u64,
    max_size: u64,
    sampler: &PaddingSampler,
) -> Signature {
    assert!(
        size <= max_size,
        "domain size {size} exceeds padding target {max_size}"
    );
    let k = max_size - size;
    let slots: Vec<u64> = sig
        .slots()
        .iter()
        .enumerate()
        .map(|(i, &orig)| orig.min(sampler.pad_min(domain_key, i, k)))
        .collect();
    Signature::from_slots(slots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshe_minhash::MinHasher;

    #[test]
    fn zero_padding_is_identity() {
        let h = MinHasher::new(64);
        let sig = h.signature(MinHasher::synthetic_values(1, 100));
        let padded = pad_signature(&sig, 42, 100, 100, &PaddingSampler::with_seed(7));
        assert_eq!(padded, sig);
    }

    #[test]
    fn padding_is_deterministic() {
        let h = MinHasher::new(64);
        let sig = h.signature(MinHasher::synthetic_values(1, 100));
        let s = PaddingSampler::with_seed(7);
        let a = pad_signature(&sig, 42, 100, 10_000, &s);
        let b = pad_signature(&sig, 42, 100, 10_000, &s);
        assert_eq!(a, b);
    }

    #[test]
    fn padding_differs_by_domain_key() {
        let h = MinHasher::new(64);
        let sig = h.signature(MinHasher::synthetic_values(1, 10));
        let s = PaddingSampler::with_seed(7);
        let a = pad_signature(&sig, 1, 10, 100_000, &s);
        let b = pad_signature(&sig, 2, 10, 100_000, &s);
        assert_ne!(a, b, "fresh values must be domain-specific");
    }

    #[test]
    fn padded_slots_never_increase() {
        let h = MinHasher::new(128);
        let sig = h.signature(MinHasher::synthetic_values(3, 50));
        let padded = pad_signature(&sig, 9, 50, 5_000, &PaddingSampler::with_seed(1));
        for (p, o) in padded.slots().iter().zip(sig.slots()) {
            assert!(p <= o);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds padding target")]
    fn oversized_domain_rejected() {
        let h = MinHasher::new(16);
        let sig = h.signature(MinHasher::synthetic_values(1, 10));
        let _ = pad_signature(&sig, 1, 10, 5, &PaddingSampler::with_seed(1));
    }

    #[test]
    fn pad_min_distribution_mean() {
        // E[min of k uniforms over [0,p)] = p/(k+1). Check within 10%.
        let s = PaddingSampler::with_seed(11);
        for &k in &[10u64, 100, 1000] {
            let n = 2000u64;
            let mean: f64 = (0..n).map(|d| s.pad_min(d, 0, k) as f64).sum::<f64>() / n as f64;
            let expected = MERSENNE_PRIME as f64 / (k as f64 + 1.0);
            let rel = (mean - expected).abs() / expected;
            assert!(rel < 0.10, "k={k}: mean {mean:.3e} vs {expected:.3e}");
        }
    }

    #[test]
    fn padded_jaccard_matches_eq31() {
        // Q ⊆ X, |Q| = q, |X| = x, padded to M ⇒ J(Q, pad(X)) = q/M.
        let m = 256;
        let h = MinHasher::new(m);
        let (q_size, x_size, max) = (50u64, 200u64, 2_000u64);
        let x_vals = MinHasher::synthetic_values(1, x_size as usize);
        let q_vals: Vec<u64> = x_vals[..q_size as usize].to_vec();
        let x_sig = pad_signature(
            &h.signature(x_vals),
            77,
            x_size,
            max,
            &PaddingSampler::with_seed(3),
        );
        let est = h.signature(q_vals).jaccard(&x_sig);
        let expected = q_size as f64 / max as f64; // 0.025
                                                   // m = 256 slots: std-dev ≈ sqrt(p(1-p)/m) ≈ 0.0098; allow 4σ.
        assert!(
            (est - expected).abs() < 0.04,
            "estimate {est} vs expected {expected}"
        );
    }

    #[test]
    fn heavier_padding_lowers_similarity() {
        let h = MinHasher::new(256);
        let vals = MinHasher::synthetic_values(5, 100);
        let q = h.signature(vals.iter().copied());
        let sig = h.signature(vals);
        let s = PaddingSampler::with_seed(13);
        let light = pad_signature(&sig, 1, 100, 200, &s);
        let heavy = pad_signature(&sig, 1, 100, 20_000, &s);
        assert!(q.jaccard(&heavy) < q.jaccard(&light));
    }
}
