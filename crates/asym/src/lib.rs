//! # lshe-asym
//!
//! Asymmetric Minwise Hashing (Shrivastava & Li, WWW 2015) — the
//! state-of-the-art containment-search baseline the paper compares against
//! (§4, §6.1, and the appendix).
//!
//! The asymmetric transformation pads every indexed domain with fresh,
//! never-colliding values until all domains reach the corpus maximum size
//! `M`. Containment is unchanged by padding, while the Jaccard similarity of
//! an (unpadded) query against a padded domain becomes
//! `ŝ_M,q(t) = t / (M/q + 1 − t)` (Eq. 31) — *monotone in t* — so a plain
//! Jaccard index over padded signatures answers containment queries.
//!
//! Following the paper's footnote 1, padding is applied to the MinHash
//! *signatures*, not the raw domains. This crate goes one step further and
//! samples the padding minima **analytically** (see [`padding`]): the
//! minimum of `k` i.i.d. uniform draws is simulated by inverse transform in
//! O(1) per slot instead of O(k) work, with exactly the same distribution.
//! This matters because power-law corpora force `k = M − x` into the
//! millions for almost every domain — the very regime where the paper shows
//! Asymmetric Minwise Hashing's recall collapses.
//!
//! [`analysis`] reproduces the appendix formulas behind Figure 10.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod analysis;
pub mod padding;

pub use padding::{pad_signature, PaddingSampler};
