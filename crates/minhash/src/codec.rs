//! Minimal self-describing binary codec used for sketch and index
//! persistence across the workspace.
//!
//! The paper's deployment exchanges MinHash sketches between clients and
//! servers ("small memory footprint as it needs to be exchanged over the
//! Web", §1.1); this module defines that wire format. It is deliberately
//! simple — fixed-width little-endian integers, length-prefixed arrays, a
//! magic tag and a version byte per envelope — so it can be re-implemented
//! in any language in an afternoon and carries no dependency.

/// Errors from decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the announced structure was complete.
    UnexpectedEof {
        /// What the decoder was reading when the input ran out.
        reading: &'static str,
    },
    /// The magic tag did not match the expected envelope.
    BadMagic {
        /// The tag the envelope should have carried.
        expected: [u8; 4],
        /// The tag actually found.
        found: [u8; 4],
    },
    /// The envelope version is not supported by this build.
    UnsupportedVersion {
        /// The version actually found.
        found: u8,
        /// The newest version this build understands.
        supported: u8,
    },
    /// A structural invariant failed (impossible lengths, inconsistent
    /// counts) — the bytes are corrupt or not what they claim to be.
    Corrupt(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnexpectedEof { reading } => {
                write!(f, "unexpected end of input while reading {reading}")
            }
            Self::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            Self::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported version {found} (supported ≤ {supported})")
            }
            Self::Corrupt(what) => write!(f, "corrupt payload: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only encoder over a byte vector.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an encoder, optionally pre-sized.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Writes the 4-byte magic tag and a version byte.
    pub fn envelope(&mut self, magic: [u8; 4], version: u8) {
        self.buf.extend_from_slice(&magic);
        self.buf.push(version);
    }

    /// Writes a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` by bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a length-prefixed `u32` slice.
    pub fn put_u32_slice(&mut self, vs: &[u32]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_u32(v);
        }
    }

    /// Writes a length-prefixed `u64` slice.
    pub fn put_u64_slice(&mut self, vs: &[u64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_u64(v);
        }
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Finishes encoding.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Cursor-based decoder over a byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder at offset 0.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, reading: &'static str) -> Result<&'a [u8], CodecError> {
        if self.pos + n > self.buf.len() {
            return Err(CodecError::UnexpectedEof { reading });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Checks the magic tag and returns the version byte.
    ///
    /// # Errors
    /// [`CodecError::BadMagic`] / [`CodecError::UnexpectedEof`].
    pub fn envelope(&mut self, magic: [u8; 4]) -> Result<u8, CodecError> {
        let found = self.take(4, "magic")?;
        if found != magic {
            return Err(CodecError::BadMagic {
                expected: magic,
                found: found.try_into().expect("4 bytes"),
            });
        }
        Ok(self.take(1, "version")?[0])
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    /// [`CodecError::UnexpectedEof`].
    pub fn get_u8(&mut self, reading: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, reading)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    /// [`CodecError::UnexpectedEof`].
    pub fn get_u32(&mut self, reading: &'static str) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4, reading)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    /// [`CodecError::UnexpectedEof`].
    pub fn get_u64(&mut self, reading: &'static str) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8, reading)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `f64` by bit pattern.
    ///
    /// # Errors
    /// [`CodecError::UnexpectedEof`].
    pub fn get_f64(&mut self, reading: &'static str) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64(reading)?))
    }

    /// Reads a length-prefixed `u32` vector, guarding the announced length
    /// against the remaining input so corrupt lengths fail fast instead of
    /// allocating gigabytes.
    ///
    /// # Errors
    /// [`CodecError`] variants on truncation or corruption.
    pub fn get_u32_vec(&mut self, reading: &'static str) -> Result<Vec<u32>, CodecError> {
        let n = self.get_u64(reading)? as usize;
        if n.checked_mul(4)
            .is_none_or(|bytes| self.pos + bytes > self.buf.len())
        {
            return Err(CodecError::Corrupt("announced u32 array exceeds input"));
        }
        (0..n).map(|_| self.get_u32(reading)).collect()
    }

    /// Reads a length-prefixed `u64` vector with the same length guard.
    ///
    /// # Errors
    /// [`CodecError`] variants on truncation or corruption.
    pub fn get_u64_vec(&mut self, reading: &'static str) -> Result<Vec<u64>, CodecError> {
        let n = self.get_u64(reading)? as usize;
        if n.checked_mul(8)
            .is_none_or(|bytes| self.pos + bytes > self.buf.len())
        {
            return Err(CodecError::Corrupt("announced u64 array exceeds input"));
        }
        (0..n).map(|_| self.get_u64(reading)).collect()
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    /// [`CodecError`] variants on truncation or invalid UTF-8.
    pub fn get_str(&mut self, reading: &'static str) -> Result<String, CodecError> {
        let n = self.get_u64(reading)? as usize;
        if self.pos + n > self.buf.len() {
            return Err(CodecError::Corrupt("announced string exceeds input"));
        }
        let bytes = self.take(n, reading)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Corrupt("invalid UTF-8"))
    }

    /// True if every input byte has been consumed.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Remaining unread bytes.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Wire format of a [`crate::Signature`]: the query sketch a client ships
/// to a search server.
pub mod signature_wire {
    use super::{CodecError, Decoder, Encoder};
    use crate::Signature;

    /// Envelope tag.
    pub const MAGIC: [u8; 4] = *b"LSIG";
    /// Current version.
    pub const VERSION: u8 = 1;

    /// Encodes a signature (5-byte envelope + 8 bytes per slot + length).
    #[must_use]
    pub fn encode(sig: &Signature) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(13 + 8 * sig.len());
        enc.envelope(MAGIC, VERSION);
        enc.put_u64_slice(sig.slots());
        enc.finish()
    }

    /// Decodes a signature.
    ///
    /// # Errors
    /// [`CodecError`] on truncation, tag/version mismatch, or an empty
    /// slot array.
    pub fn decode(bytes: &[u8]) -> Result<Signature, CodecError> {
        let mut dec = Decoder::new(bytes);
        let version = dec.envelope(MAGIC)?;
        if version > VERSION {
            return Err(CodecError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let slots = dec.get_u64_vec("signature slots")?;
        if slots.is_empty() {
            return Err(CodecError::Corrupt("signature must have slots"));
        }
        Ok(Signature::from_slots(slots))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MinHasher;

    #[test]
    fn primitive_roundtrip() {
        let mut enc = Encoder::default();
        enc.envelope(*b"TEST", 3);
        enc.put_u8(7);
        enc.put_u32(0xDEAD_BEEF);
        enc.put_u64(u64::MAX);
        enc.put_f64(0.25);
        enc.put_u32_slice(&[1, 2, 3]);
        enc.put_u64_slice(&[]);
        enc.put_str("héllo");
        let bytes = enc.finish();

        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.envelope(*b"TEST").expect("envelope"), 3);
        assert_eq!(dec.get_u8("a").expect("u8"), 7);
        assert_eq!(dec.get_u32("b").expect("u32"), 0xDEAD_BEEF);
        assert_eq!(dec.get_u64("c").expect("u64"), u64::MAX);
        assert_eq!(dec.get_f64("d").expect("f64"), 0.25);
        assert_eq!(dec.get_u32_vec("e").expect("vec"), vec![1, 2, 3]);
        assert_eq!(dec.get_u64_vec("f").expect("vec"), Vec::<u64>::new());
        assert_eq!(dec.get_str("g").expect("str"), "héllo");
        assert!(dec.is_exhausted());
    }

    #[test]
    fn bad_magic_detected() {
        let mut enc = Encoder::default();
        enc.envelope(*b"AAAA", 1);
        let bytes = enc.finish();
        let err = Decoder::new(&bytes).envelope(*b"BBBB").unwrap_err();
        assert!(matches!(err, CodecError::BadMagic { .. }));
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn eof_detected() {
        let mut dec = Decoder::new(&[1, 2]);
        let err = dec.get_u32("field").unwrap_err();
        assert_eq!(err, CodecError::UnexpectedEof { reading: "field" });
    }

    #[test]
    fn oversized_length_rejected_without_allocation() {
        // A corrupt length prefix claiming 2^60 elements must error, not OOM.
        let mut enc = Encoder::default();
        enc.put_u64(1 << 60);
        enc.put_u32(1);
        let bytes = enc.finish();
        let err = Decoder::new(&bytes).get_u32_vec("field").unwrap_err();
        assert!(matches!(err, CodecError::Corrupt(_)));
    }

    #[test]
    fn signature_wire_roundtrip() {
        let h = MinHasher::new(256);
        let sig = h.signature(MinHasher::synthetic_values(5, 500));
        let bytes = signature_wire::encode(&sig);
        // Envelope (5) + length (8) + 256 slots × 8.
        assert_eq!(bytes.len(), 5 + 8 + 256 * 8);
        let back = signature_wire::decode(&bytes).expect("decode");
        assert_eq!(back, sig);
    }

    #[test]
    fn signature_wire_rejects_future_version() {
        let h = MinHasher::new(16);
        let mut bytes = signature_wire::encode(&h.signature([1u64]));
        bytes[4] = 99; // version byte
        let err = signature_wire::decode(&bytes).unwrap_err();
        assert!(matches!(
            err,
            CodecError::UnsupportedVersion { found: 99, .. }
        ));
    }

    #[test]
    fn signature_wire_rejects_truncation() {
        let h = MinHasher::new(64);
        let bytes = signature_wire::encode(&h.signature([1u64, 2]));
        for cut in [0usize, 3, 5, 12, bytes.len() - 1] {
            assert!(
                signature_wire::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn signature_wire_rejects_empty() {
        let mut enc = Encoder::default();
        enc.envelope(signature_wire::MAGIC, signature_wire::VERSION);
        enc.put_u64_slice(&[]);
        assert_eq!(
            signature_wire::decode(&enc.finish()).unwrap_err(),
            CodecError::Corrupt("signature must have slots")
        );
    }
}
