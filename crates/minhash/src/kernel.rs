//! The min-fold kernel: slot-wise `min(slots, (a·v + b) mod p)` across a
//! whole permutation family, the inner loop of every signature build.
//!
//! Sketching cost is `O(n·m)` modular multiply-adds (Table 4 of the paper:
//! indexing time is ~all sketching), so this loop dominates index
//! construction. The kernel stores the family's coefficients
//! structure-of-arrays (`a`, plus `a` pre-split into 32-bit halves for the
//! vector path, and `b`) and folds one value into all `m` slots per call:
//!
//! * on x86-64 with AVX2 (detected once at construction), four lanes run
//!   per instruction using `_mm256_mul_epu32` 32×32→64 partial products
//!   and a shift-fold reduction modulo `p = 2^61 − 1`;
//! * everywhere else, a portable unrolled loop keeps four independent
//!   `u128` multiply chains in flight.
//!
//! Both paths produce **bit-identical** slots to the scalar reference
//! ([`AffinePermutation::apply`] folded lane by lane) — signatures are
//! persisted and compared across machines, so the kernel must never let
//! the instruction set leak into the sketch. The equivalence is enforced
//! by unit tests here and a property test at the workspace root.

use crate::perm::{mersenne_mod, AffinePermutation, MERSENNE_PRIME};

/// Structure-of-arrays fold kernel over one permutation family.
///
/// Built once per [`MinHasher`](crate::MinHasher) and reused by every
/// signature construction, streaming update, and bulk batch.
#[derive(Debug, Clone, Default)]
pub struct FoldKernel {
    /// Full `a` coefficients, slot order (portable and tail lanes).
    a: Vec<u64>,
    /// Low 32 bits of each `a` (vector path operand).
    a_lo: Vec<u64>,
    /// High 29 bits of each `a` (`a < 2^61`), shifted down.
    a_hi: Vec<u64>,
    /// `b` coefficients, slot order.
    b: Vec<u64>,
    /// AVX2 available at runtime (detected once, here).
    use_avx2: bool,
}

impl FoldKernel {
    /// Builds the kernel for `perms`, probing CPU features once.
    #[must_use]
    pub fn new(perms: &[AffinePermutation]) -> Self {
        let a: Vec<u64> = perms.iter().map(AffinePermutation::a).collect();
        let b: Vec<u64> = perms.iter().map(AffinePermutation::b).collect();
        let a_lo = a.iter().map(|&x| x & 0xffff_ffff).collect();
        let a_hi = a.iter().map(|&x| x >> 32).collect();
        #[cfg(target_arch = "x86_64")]
        let use_avx2 = std::arch::is_x86_feature_detected!("avx2");
        #[cfg(not(target_arch = "x86_64"))]
        let use_avx2 = false;
        Self {
            a,
            a_lo,
            a_hi,
            b,
            use_avx2,
        }
    }

    /// Number of lanes (the family width `m`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.a.len()
    }

    /// True when the kernel has no lanes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.a.is_empty()
    }

    /// Whether folds run on the AVX2 path (for diagnostics and benches).
    #[must_use]
    pub fn is_vectorised(&self) -> bool {
        self.use_avx2
    }

    /// Folds every value into `slots` by slot-wise minimum of the
    /// permuted hashes — bit-identical to applying each
    /// [`AffinePermutation`] per lane, on every architecture.
    ///
    /// # Panics
    /// Panics if `slots.len()` differs from the kernel width.
    pub fn fold<I>(&self, values: I, slots: &mut [u64])
    where
        I: IntoIterator<Item = u64>,
    {
        assert_eq!(slots.len(), self.len(), "slot width mismatch");
        #[cfg(target_arch = "x86_64")]
        if self.use_avx2 {
            for v in values {
                let vr = mersenne_mod(u128::from(v));
                // SAFETY: `use_avx2` was set by runtime feature detection
                // in `new`, so the AVX2 instructions are available.
                unsafe {
                    avx2::fold_one(&self.a, &self.a_lo, &self.a_hi, &self.b, vr, slots);
                }
            }
            return;
        }
        for v in values {
            let vr = mersenne_mod(u128::from(v));
            fold_one_portable(&self.a, &self.b, vr, slots);
        }
    }
}

/// One `(a·vr + b) mod p` lane in full-width scalar arithmetic.
/// `vr` must already be reduced into the field.
#[inline(always)]
fn lane(a: u64, b: u64, vr: u64) -> u64 {
    mersenne_mod(u128::from(a) * u128::from(vr) + u128::from(b))
}

/// Portable fold of one reduced value across all lanes, unrolled ×4 so
/// four independent `u128` multiply chains are in flight per iteration
/// (the scalar multiplier is the bottleneck, not the min/store).
fn fold_one_portable(a: &[u64], b: &[u64], vr: u64, slots: &mut [u64]) {
    let mut lanes = a
        .chunks_exact(4)
        .zip(b.chunks_exact(4))
        .zip(slots.chunks_exact_mut(4));
    for ((a4, b4), s4) in &mut lanes {
        let h0 = lane(a4[0], b4[0], vr);
        let h1 = lane(a4[1], b4[1], vr);
        let h2 = lane(a4[2], b4[2], vr);
        let h3 = lane(a4[3], b4[3], vr);
        s4[0] = s4[0].min(h0);
        s4[1] = s4[1].min(h1);
        s4[2] = s4[2].min(h2);
        s4[3] = s4[3].min(h3);
    }
    let tail = slots.len() & !3;
    for i in tail..slots.len() {
        let h = lane(a[i], b[i], vr);
        slots[i] = slots[i].min(h);
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2 lanes: four 61-bit modular multiply-adds per instruction.
    //!
    //! There is no 64×64 vector multiply on AVX2, so each product is
    //! assembled from 32×32→64 partials (`a = ah·2^32 + al`,
    //! `v = vh·2^32 + vl`):
    //!
    //! ```text
    //! a·v = hh·2^64 + (hl + lh)·2^32 + ll
    //! ```
    //!
    //! and reduced modulo `p = 2^61 − 1` with shifts only, using
    //! `2^61 ≡ 1` and `2^64 ≡ 8 (mod p)`:
    //!
    //! ```text
    //! S = (hh<<3) + ((mid & 2^29−1)<<32) + (mid>>29)
    //!   + (ll & p) + (ll>>61) + b            where mid = hl + lh
    //! ```
    //!
    //! Term bounds: `hh < 2^58` so `hh<<3 < 2^61`; `mid < 2^62` so both
    //! mid terms are `< 2^61`; each remaining term is `< 2^61`, so
    //! `S < 2^63 + 2^34` — no u64 wrap. Two shift-folds bring `S` under
    //! `2^61 + 7`, and the only non-canonical residue left is exactly
    //! `p`, cleared by a compare-and-subtract. The result is the same
    //! canonical value `mersenne_mod` produces, so vector and scalar
    //! signatures match bit for bit.

    use super::MERSENNE_PRIME;
    use core::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_and_si256, _mm256_blendv_epi8, _mm256_cmpeq_epi64,
        _mm256_cmpgt_epi64, _mm256_loadu_si256, _mm256_mul_epu32, _mm256_set1_epi64x,
        _mm256_slli_epi64, _mm256_srli_epi64, _mm256_storeu_si256, _mm256_sub_epi64,
        _mm256_xor_si256,
    };

    #[inline]
    unsafe fn load(ptr: *const u64) -> __m256i {
        _mm256_loadu_si256(ptr.cast())
    }

    /// Folds one reduced value (`vr < p`) into all lanes.
    ///
    /// # Safety
    /// The caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn fold_one(
        a: &[u64],
        a_lo: &[u64],
        a_hi: &[u64],
        b: &[u64],
        vr: u64,
        slots: &mut [u64],
    ) {
        #[allow(clippy::cast_possible_wrap)]
        let p = _mm256_set1_epi64x(MERSENNE_PRIME as i64);
        let mask29 = _mm256_set1_epi64x(((1u64 << 29) - 1) as i64);
        #[allow(clippy::cast_possible_wrap)]
        let sign = _mm256_set1_epi64x(i64::MIN);
        #[allow(clippy::cast_possible_wrap)]
        let vl = _mm256_set1_epi64x((vr & 0xffff_ffff) as i64);
        #[allow(clippy::cast_possible_wrap)]
        let vh = _mm256_set1_epi64x((vr >> 32) as i64);

        let full = slots.len() & !3;
        for i in (0..full).step_by(4) {
            let al = load(a_lo.as_ptr().add(i));
            let ah = load(a_hi.as_ptr().add(i));
            let bb = load(b.as_ptr().add(i));
            // 32×32→64 partial products of a·vr.
            let ll = _mm256_mul_epu32(al, vl);
            let hl = _mm256_mul_epu32(ah, vl);
            let lh = _mm256_mul_epu32(al, vh);
            let hh = _mm256_mul_epu32(ah, vh);
            let mid = _mm256_add_epi64(hl, lh);
            // S ≡ a·vr + b (mod p); see module docs for the identity
            // and the no-overflow bound.
            let mut s = _mm256_slli_epi64::<3>(hh);
            s = _mm256_add_epi64(s, _mm256_slli_epi64::<32>(_mm256_and_si256(mid, mask29)));
            s = _mm256_add_epi64(s, _mm256_srli_epi64::<29>(mid));
            s = _mm256_add_epi64(s, _mm256_and_si256(ll, p));
            s = _mm256_add_epi64(s, _mm256_srli_epi64::<61>(ll));
            s = _mm256_add_epi64(s, bb);
            // Two shift-folds, then clear the lone residue S == p.
            s = _mm256_add_epi64(_mm256_and_si256(s, p), _mm256_srli_epi64::<61>(s));
            s = _mm256_add_epi64(_mm256_and_si256(s, p), _mm256_srli_epi64::<61>(s));
            let is_p = _mm256_cmpeq_epi64(s, p);
            s = _mm256_sub_epi64(s, _mm256_and_si256(is_p, p));
            // Unsigned 64-bit min against the current slots: bias both
            // sides by the sign bit so the signed compare orders
            // correctly (slots may hold the EMPTY_SLOT sentinel u64::MAX).
            let cur = load(slots.as_ptr().add(i));
            let cur_gt = _mm256_cmpgt_epi64(_mm256_xor_si256(cur, sign), _mm256_xor_si256(s, sign));
            let mn = _mm256_blendv_epi8(cur, s, cur_gt);
            _mm256_storeu_si256(slots.as_mut_ptr().add(i).cast(), mn);
        }
        for i in full..slots.len() {
            let h = super::lane(a[i], b[i], vr);
            slots[i] = slots[i].min(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::SeedStream;
    use crate::perm::{PermutationFamily, EMPTY_SLOT};

    /// Scalar reference: per-lane [`AffinePermutation::apply`].
    fn reference_fold(perms: &[AffinePermutation], values: &[u64], slots: &mut [u64]) {
        for &v in values {
            for (slot, perm) in slots.iter_mut().zip(perms.iter()) {
                let h = perm.apply(v);
                if h < *slot {
                    *slot = h;
                }
            }
        }
    }

    fn check_widths(widths: &[usize], seed: u64, n_values: usize) {
        let mut stream = SeedStream::new(seed);
        let values: Vec<u64> = (0..n_values).map(|_| stream.next_u64()).collect();
        for &m in widths {
            let family = PermutationFamily::new(seed ^ m as u64, m);
            let kernel = FoldKernel::new(family.permutations());
            let mut expect = vec![EMPTY_SLOT; m];
            reference_fold(family.permutations(), &values, &mut expect);
            let mut got = vec![EMPTY_SLOT; m];
            kernel.fold(values.iter().copied(), &mut got);
            assert_eq!(got, expect, "m = {m}");
        }
    }

    #[test]
    fn kernel_matches_scalar_reference_across_widths() {
        // Widths straddling the ×4 unroll boundary, including tails.
        check_widths(&[1, 2, 3, 4, 5, 7, 8, 64, 127, 128, 129, 256], 99, 200);
    }

    #[test]
    fn kernel_matches_reference_on_edge_values() {
        let family = PermutationFamily::new(7, 32);
        let kernel = FoldKernel::new(family.permutations());
        // Values at and around field/reduction boundaries.
        let edge = [
            0u64,
            1,
            MERSENNE_PRIME - 1,
            MERSENNE_PRIME,
            MERSENNE_PRIME + 1,
            u64::MAX,
            u64::MAX - 1,
            1 << 61,
            (1 << 61) | 1,
            1 << 32,
            u64::from(u32::MAX),
        ];
        let mut expect = vec![EMPTY_SLOT; 32];
        reference_fold(family.permutations(), &edge, &mut expect);
        let mut got = vec![EMPTY_SLOT; 32];
        kernel.fold(edge.iter().copied(), &mut got);
        assert_eq!(got, expect);
    }

    #[test]
    fn portable_path_matches_reference() {
        // Exercise the non-vector code path explicitly (on AVX2 hosts the
        // public fold would otherwise never reach it).
        let family = PermutationFamily::new(21, 67);
        let kernel = FoldKernel::new(family.permutations());
        let mut stream = SeedStream::new(5);
        let values: Vec<u64> = (0..100).map(|_| stream.next_u64()).collect();
        let mut expect = vec![EMPTY_SLOT; 67];
        reference_fold(family.permutations(), &values, &mut expect);
        let mut got = vec![EMPTY_SLOT; 67];
        for &v in &values {
            fold_one_portable(&kernel.a, &kernel.b, mersenne_mod(u128::from(v)), &mut got);
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn empty_values_leave_slots_untouched() {
        let family = PermutationFamily::new(3, 16);
        let kernel = FoldKernel::new(family.permutations());
        let mut slots = vec![EMPTY_SLOT; 16];
        kernel.fold(std::iter::empty(), &mut slots);
        assert!(slots.iter().all(|&s| s == EMPTY_SLOT));
    }

    #[test]
    #[should_panic(expected = "slot width mismatch")]
    fn width_mismatch_panics() {
        let family = PermutationFamily::new(3, 16);
        let kernel = FoldKernel::new(family.permutations());
        let mut slots = vec![EMPTY_SLOT; 8];
        kernel.fold([1u64], &mut slots);
    }
}
