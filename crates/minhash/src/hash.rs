//! Low-level 64-bit hashing primitives.
//!
//! Everything in this crate is built on two deterministic building blocks:
//!
//! * [`splitmix64`] — a fast, well-distributed 64-bit finalizer, used both as
//!   a seed expander and as the mixing step of the byte hasher.
//! * [`hash_bytes`] — a seeded streaming byte hash used to map raw domain
//!   values (strings, numbers, blobs) into the 64-bit value universe that
//!   minwise hashing operates on.
//!
//! The implementations are self-contained so the workspace carries no
//! external hashing dependencies, and deterministic across runs and
//! platforms so that signatures, indexes, and test expectations are stable.

/// The `splitmix64` finalizer (Steele, Lea & Flood; used by `SplittableRandom`).
///
/// A bijective mixer on `u64` with excellent avalanche behaviour. Because it
/// is a bijection, feeding it sequential integers yields a full-period,
/// well-distributed stream — which is exactly how [`SeedStream`] uses it.
#[inline]
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An infinite deterministic stream of 64-bit words derived from a seed.
///
/// Used to generate hash-family coefficients and padding randomness without
/// pulling in an RNG crate. Two streams with the same seed produce identical
/// sequences.
#[derive(Debug, Clone)]
pub struct SeedStream {
    state: u64,
}

impl SeedStream {
    /// Creates a stream from `seed`. Distinct seeds yield (with overwhelming
    /// probability) non-overlapping sequences for practical lengths.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // Pre-mix so that small consecutive seeds (0, 1, 2, ...) do not
        // produce correlated early outputs.
        Self {
            state: splitmix64(seed ^ 0xA076_1D64_78BD_642F),
        }
    }

    /// Returns the next 64-bit word.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    /// Returns the next word as a float uniform in the half-open unit
    /// interval `[0, 1)`, with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; 2^-53 scaling gives uniform [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seeded streaming byte hash (FNV-1a core with a `splitmix64` finalizer).
///
/// FNV-1a alone has weak high-bit diffusion; running the result through
/// [`splitmix64`] fixes that while keeping the hot loop to one multiply per
/// byte. This is the canonical "value → u64" mapping for domain values: two
/// equal byte strings always collide, and unequal ones collide with
/// probability ~2^-64.
#[inline]
#[must_use]
pub fn hash_bytes(seed: u64, bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = FNV_OFFSET ^ splitmix64(seed);
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    splitmix64(h)
}

/// Hashes a string value with the default value-universe seed.
#[inline]
#[must_use]
pub fn hash_str(s: &str) -> u64 {
    hash_bytes(DEFAULT_VALUE_SEED, s.as_bytes())
}

/// Hashes an integer value with the default value-universe seed.
///
/// Integers are mixed directly (no byte serialisation) for speed; the
/// bijectivity of [`splitmix64`] guarantees zero collisions among `u64`
/// inputs under a fixed seed.
#[inline]
#[must_use]
pub fn hash_u64(v: u64) -> u64 {
    splitmix64(v ^ splitmix64(DEFAULT_VALUE_SEED))
}

/// Default seed for hashing raw values into the 64-bit universe.
///
/// All corpus builders use this seed unless told otherwise so that the same
/// logical value maps to the same point of the universe across crates.
pub const DEFAULT_VALUE_SEED: u64 = 0x15EA_5E11_D0E5_EED5;

/// A fast, non-cryptographic `std::hash::Hasher` for internal hash maps
/// keyed by already-well-mixed data (band buckets, domain ids).
///
/// This is the same multiply-rotate construction as rustc's `FxHasher`; it
/// is not HashDoS-resistant and must only be used for keys the process
/// itself produced (hash values, ids) — never for untrusted input.
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    const K: u64 = 0x517C_C1B7_2722_0A95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::K);
    }
}

impl std::hash::Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
#[derive(Debug, Default, Clone, Copy)]
pub struct FastBuildHasher;

impl std::hash::BuildHasher for FastBuildHasher {
    type Hasher = FastHasher;

    #[inline]
    fn build_hasher(&self) -> FastHasher {
        FastHasher::default()
    }
}

/// A `HashMap` keyed with [`FastHasher`].
pub type FastHashMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>;
/// A `HashSet` keyed with [`FastHasher`].
pub type FastHashSet<K> = std::collections::HashSet<K, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hasher};

    #[test]
    fn splitmix64_is_deterministic_and_mixes() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        // Known vector: the reference splitmix64 seeded with state 0
        // produces 0xE220A8397B1DCDAF as its first output.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn splitmix64_avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output bits.
        let a = splitmix64(0xDEAD_BEEF);
        let b = splitmix64(0xDEAD_BEEF ^ 1);
        let flipped = (a ^ b).count_ones();
        assert!(
            (16..=48).contains(&flipped),
            "poor avalanche: {flipped} bits flipped"
        );
    }

    #[test]
    fn seed_stream_deterministic() {
        let mut a = SeedStream::new(42);
        let mut b = SeedStream::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seed_stream_distinct_seeds_differ() {
        let mut a = SeedStream::new(1);
        let mut b = SeedStream::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn seed_stream_f64_in_unit_interval() {
        let mut s = SeedStream::new(7);
        for _ in 0..1000 {
            let v = s.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn seed_stream_f64_mean_near_half() {
        let mut s = SeedStream::new(99);
        let n = 10_000;
        let mean = (0..n).map(|_| s.next_f64()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn hash_bytes_deterministic_and_seed_sensitive() {
        assert_eq!(hash_bytes(1, b"toronto"), hash_bytes(1, b"toronto"));
        assert_ne!(hash_bytes(1, b"toronto"), hash_bytes(2, b"toronto"));
        assert_ne!(hash_bytes(1, b"toronto"), hash_bytes(1, b"ontario"));
    }

    #[test]
    fn hash_bytes_empty_input_ok() {
        // Must not panic and must still depend on the seed.
        assert_ne!(hash_bytes(1, b""), hash_bytes(2, b""));
    }

    #[test]
    fn hash_str_matches_hash_bytes() {
        assert_eq!(hash_str("abc"), hash_bytes(DEFAULT_VALUE_SEED, b"abc"));
    }

    #[test]
    fn hash_u64_injective_sample() {
        use std::collections::HashSet;
        let hashes: HashSet<u64> = (0..10_000u64).map(hash_u64).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn fast_hasher_differs_by_input() {
        let bh = FastBuildHasher;
        let mut h1 = bh.build_hasher();
        h1.write_u64(10);
        let mut h2 = bh.build_hasher();
        h2.write_u64(11);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn fast_hasher_handles_unaligned_bytes() {
        let bh = FastBuildHasher;
        let mut h1 = bh.build_hasher();
        h1.write(b"abcdefghi"); // 9 bytes: one full chunk + remainder
        let mut h2 = bh.build_hasher();
        h2.write(b"abcdefghj");
        assert_ne!(h1.finish(), h2.finish());
    }
}
