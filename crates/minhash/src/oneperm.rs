//! One-Permutation Hashing (OPH) with rotation densification — the fast
//! alternative sketching scheme.
//!
//! Classic minwise hashing (§3.1 of the paper) applies `m` permutations to
//! every value: O(n·m) work per domain, which dominates index construction
//! (Table 4's indexing column is almost entirely sketching). One-Permutation
//! Hashing (Li, Owen & Zhang, NIPS 2012) hashes each value **once**,
//! scatters values into `m` bins by their high bits, and keeps the minimum
//! per bin: O(n + m) per domain, a ~`m`× speedup at equal signature width.
//!
//! Empty bins (likely when `n ≲ m`) would break slot-wise comparison;
//! *densification* (Shrivastava & Li, ICML 2014) fills each empty bin with
//! the value of the nearest non-empty bin to its right (circularly), mixed
//! with the borrow distance so that two signatures agree on a densified
//! slot exactly when they borrowed the same value from the same relative
//! position. The resulting slot-collision probability remains an unbiased
//! Jaccard estimator.
//!
//! OPH signatures are [`Signature`]s and plug into every index in this
//! workspace. Two caveats, documented rather than hidden:
//!
//! * OPH and classic signatures are **not comparable** with each other —
//!   pick one scheme per deployment (the ensemble only ever compares
//!   signatures produced by the same hasher).
//! * [`Signature::cardinality`] assumes classic per-permutation minima and
//!   does not apply to OPH signatures; keep exact sizes (as the ensemble
//!   builder requires anyway) or sketch with [`crate::MinHasher`] when you
//!   need `approx(|Q|)`.

use crate::hash::splitmix64;
use crate::perm::{mersenne_mod, EMPTY_SLOT};
use crate::Signature;

/// One-Permutation MinHash sketcher with rotation densification.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OnePermHasher {
    seed: u64,
    m: usize,
}

impl OnePermHasher {
    /// Workspace default seed (distinct from the classic hasher's so the
    /// two schemes can never be confused for compatible).
    pub const DEFAULT_SEED: u64 = 0x10E0_0E01_5EED_0123;

    /// Creates a sketcher with `m` bins and an explicit seed.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    #[must_use]
    pub fn with_seed(seed: u64, m: usize) -> Self {
        assert!(m > 0, "need at least one bin");
        Self { seed, m }
    }

    /// Creates a sketcher with the default seed.
    #[must_use]
    pub fn new(m: usize) -> Self {
        Self::with_seed(Self::DEFAULT_SEED, m)
    }

    /// Signature width `m`.
    #[must_use]
    pub fn num_bins(&self) -> usize {
        self.m
    }

    /// True if signatures from `other` are comparable with ours.
    #[must_use]
    pub fn compatible_with(&self, other: &Self) -> bool {
        self.seed == other.seed && self.m == other.m
    }

    /// Sketches a set of pre-hashed values in one pass: O(n + m).
    ///
    /// An empty input yields [`Signature::empty`].
    #[must_use]
    pub fn signature<I>(&self, values: I) -> Signature
    where
        I: IntoIterator<Item = u64>,
    {
        let mut slots = vec![EMPTY_SLOT; self.m];
        for v in values {
            let h = splitmix64(v ^ splitmix64(self.seed));
            // High bits pick the bin (uniform across m); the full mixed
            // word, reduced into the field, is the rank within the bin.
            let bin = ((u128::from(h >> 32) * self.m as u128) >> 32) as usize;
            let rank = mersenne_mod(u128::from(splitmix64(h)));
            if rank < slots[bin] {
                slots[bin] = rank;
            }
        }
        self.densify(&mut slots);
        Signature::from_slots(slots)
    }

    /// Rotation densification: each empty bin borrows from the nearest
    /// non-empty bin to its right (circular), mixing in the distance so
    /// borrows from different relative positions never spuriously collide.
    fn densify(&self, slots: &mut [u64]) {
        let m = slots.len();
        if slots.iter().all(|&s| s == EMPTY_SLOT) {
            return; // empty-set signature stays all-sentinel
        }
        let original = slots.to_vec();
        for i in 0..m {
            if original[i] != EMPTY_SLOT {
                continue;
            }
            let mut dist = 1usize;
            loop {
                let j = (i + dist) % m;
                if original[j] != EMPTY_SLOT {
                    slots[i] = mersenne_mod(u128::from(splitmix64(
                        original[j] ^ (dist as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    )));
                    break;
                }
                dist += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MinHasher;

    #[test]
    fn identical_sets_identical_signatures() {
        let h = OnePermHasher::new(128);
        let vals = MinHasher::synthetic_values(1, 500);
        let a = h.signature(vals.iter().copied());
        let b = h.signature(vals.iter().rev().copied());
        assert_eq!(a, b);
        assert!((a.jaccard(&b) - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn empty_set_yields_empty_signature() {
        let h = OnePermHasher::new(64);
        let sig = h.signature(std::iter::empty());
        assert!(sig.is_empty_domain());
    }

    #[test]
    fn no_sentinel_slots_after_densification() {
        // Even with far fewer values than bins, every slot must be filled.
        let h = OnePermHasher::new(256);
        let sig = h.signature(MinHasher::synthetic_values(2, 5));
        assert!(sig.slots().iter().all(|&s| s != crate::EMPTY_SLOT));
    }

    #[test]
    fn jaccard_estimate_unbiased() {
        // J = 1/3 as in the classic hasher's test; OPH at m = 256 has
        // somewhat higher variance, allow a wider band.
        let h = OnePermHasher::new(256);
        let shared = MinHasher::synthetic_values(10, 500);
        let only_a = MinHasher::synthetic_values(11, 500);
        let only_b = MinHasher::synthetic_values(12, 500);
        let a: Vec<u64> = shared.iter().chain(only_a.iter()).copied().collect();
        let b: Vec<u64> = shared.iter().chain(only_b.iter()).copied().collect();
        let est = h.signature(a).jaccard(&h.signature(b));
        assert!((est - 1.0 / 3.0).abs() < 0.15, "estimate {est}");
    }

    #[test]
    fn jaccard_estimate_small_sets_via_densified_slots() {
        // n ≪ m: almost every slot is densified; the estimator must still
        // track the truth. |A| = |B| = 30, overlap 15 ⇒ J = 1/3.
        let h = OnePermHasher::new(256);
        let shared = MinHasher::synthetic_values(20, 15);
        let oa = MinHasher::synthetic_values(21, 15);
        let ob = MinHasher::synthetic_values(22, 15);
        let a: Vec<u64> = shared.iter().chain(oa.iter()).copied().collect();
        let b: Vec<u64> = shared.iter().chain(ob.iter()).copied().collect();
        let est = h.signature(a).jaccard(&h.signature(b));
        assert!((est - 1.0 / 3.0).abs() < 0.2, "estimate {est}");
    }

    #[test]
    fn disjoint_sets_near_zero() {
        let h = OnePermHasher::new(256);
        let a = h.signature(MinHasher::synthetic_values(30, 400));
        let b = h.signature(MinHasher::synthetic_values(31, 400));
        assert!(a.jaccard(&b) < 0.06, "jaccard {}", a.jaccard(&b));
    }

    #[test]
    fn incompatible_with_different_seed_or_width() {
        let a = OnePermHasher::with_seed(1, 64);
        assert!(!a.compatible_with(&OnePermHasher::with_seed(2, 64)));
        assert!(!a.compatible_with(&OnePermHasher::with_seed(1, 128)));
        assert!(a.compatible_with(&a.clone()));
    }

    #[test]
    fn slots_stay_in_field() {
        let h = OnePermHasher::new(128);
        let sig = h.signature(MinHasher::synthetic_values(3, 50));
        for &s in sig.slots() {
            assert!(s < crate::MERSENNE_PRIME);
        }
    }

    #[test]
    fn works_inside_lsh_style_banding() {
        // Two 90%-overlapping sets must agree on many slots — the property
        // banding exploits. (The full index integration lives in lshe-lsh's
        // consumers; here we check slot agreement directly.)
        let h = OnePermHasher::new(256);
        let base = MinHasher::synthetic_values(40, 1000);
        let mut variant = base.clone();
        variant.truncate(900);
        variant.extend(MinHasher::synthetic_values(41, 100));
        let a = h.signature(base);
        let b = h.signature(variant);
        let agree = a
            .slots()
            .iter()
            .zip(b.slots())
            .filter(|(x, y)| x == y)
            .count();
        assert!(agree > 150, "only {agree}/256 slots agree");
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = OnePermHasher::new(0);
    }
}
