//! Process-wide worker-lane budget for batched fan-out.
//!
//! Batched operations across the workspace — bulk signature
//! construction here, the batched query sweeps in `lshe-core`, and
//! whatever future bulk paths appear — all amortize work by spawning
//! scoped worker lanes. Individually each call bounds itself by the
//! host parallelism, but *concurrent* callers (many server batches in
//! flight at once) would multiply: `callers × cores` transient threads.
//!
//! This module is the shared governor: one process-wide pool of
//! `cores − 1` *extra* lanes. A batched call [`acquire`]s up to what it
//! wants, runs with `1 + taken` lanes (the calling thread is always a
//! lane of its own), and returns the permits when its guard drops.
//! Under contention callers degrade gracefully toward inline execution
//! instead of oversubscribing the host — the acquire never blocks.
//!
//! It lives in `lshe-minhash` because this is the substrate crate every
//! batched layer already depends on.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// The pool of extra lanes, initialised to `cores − 1` on first use.
fn pool() -> &'static AtomicUsize {
    static POOL: OnceLock<AtomicUsize> = OnceLock::new();
    POOL.get_or_init(|| {
        let cores = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
        AtomicUsize::new(cores.saturating_sub(1))
    })
}

/// Holds `taken` extra lanes; returned to the pool on drop.
#[derive(Debug)]
pub struct LaneGuard {
    taken: usize,
}

impl LaneGuard {
    /// Total lanes the holder may run: the calling thread plus the
    /// extras taken from the pool. Always ≥ 1.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.taken + 1
    }
}

impl Drop for LaneGuard {
    fn drop(&mut self) {
        if self.taken > 0 {
            pool().fetch_add(self.taken, Ordering::AcqRel);
        }
    }
}

/// Minimum items a lane must receive before another lane is worth a
/// spawn: below this the scoped-thread setup costs more than the
/// parallelism buys, and small batches issued from already-parallel
/// callers stay inline instead of oversubscribing.
pub const MIN_ITEMS_PER_LANE: usize = 8;

/// The *ideal* lane count for a batch of `items`: bounded by the host
/// parallelism, scaled by batch size (≥ [`MIN_ITEMS_PER_LANE`] items per
/// lane), never zero. [`run_chunked`] additionally subjects the extras
/// to the process-wide budget.
#[must_use]
pub fn ideal_lanes(items: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    cores.min(items / MIN_ITEMS_PER_LANE).max(1)
}

/// Runs `run` over contiguous chunks of `items` across budget-governed
/// worker lanes — spawned once per batch, not once per item — and
/// concatenates the per-chunk outputs in item order. The calling thread
/// IS the first lane (it runs the first chunk itself while the spawned
/// lanes work the rest), so a batch uses exactly the lanes its
/// [`LaneGuard`] accounts for. `run` must be a pure function of its
/// chunk, so the chunking can never change results.
pub fn run_chunked<I: Sync, O: Send>(items: &[I], run: impl Fn(&[I]) -> Vec<O> + Sync) -> Vec<O> {
    let guard = acquire(ideal_lanes(items.len()) - 1);
    let lanes = guard.lanes();
    if lanes <= 1 {
        return run(items);
    }
    let chunk = items.len().div_ceil(lanes);
    let mut chunks = items.chunks(chunk);
    let first = chunks.next().unwrap_or(&[]);
    let (first_out, rest): (Vec<O>, Vec<Vec<O>>) = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks.map(|c| scope.spawn(|| run(c))).collect();
        let first_out = run(first);
        (
            first_out,
            handles
                .into_iter()
                .map(|h| h.join().expect("batch lane panicked"))
                .collect(),
        )
    });
    first_out
        .into_iter()
        .chain(rest.into_iter().flatten())
        .collect()
}

/// Takes up to `want_extra` additional lanes from the process budget.
/// Never blocks: under contention the guard may hold fewer extras (down
/// to zero — run inline). Drop the guard to return them.
#[must_use]
pub fn acquire(want_extra: usize) -> LaneGuard {
    let pool = pool();
    let mut available = pool.load(Ordering::Acquire);
    loop {
        let take = want_extra.min(available);
        if take == 0 {
            return LaneGuard { taken: 0 };
        }
        match pool.compare_exchange_weak(
            available,
            available - take,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return LaneGuard { taken: take },
            Err(now) => available = now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_respects_budget_invariants() {
        // Other tests in this binary may hold lanes concurrently, so
        // assert the invariants rather than exact counts: never more
        // than the host budget, never fewer than the inline lane, and
        // permits flow back (a drop-then-reacquire can never shrink the
        // pool).
        let cores = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
        let first = acquire(usize::MAX);
        assert!(first.lanes() >= 1 && first.lanes() <= cores);
        let taken = first.lanes();
        drop(first);
        let second = acquire(taken.saturating_sub(1));
        assert!(second.lanes() >= 1 && second.lanes() <= taken.max(1));
    }

    #[test]
    fn zero_want_is_inline() {
        assert_eq!(acquire(0).lanes(), 1);
    }

    #[test]
    fn ideal_lanes_scale_with_batch_size() {
        assert_eq!(ideal_lanes(0), 1);
        assert_eq!(ideal_lanes(1), 1);
        assert_eq!(
            ideal_lanes(MIN_ITEMS_PER_LANE - 1),
            1,
            "tiny batches stay inline"
        );
        let cores = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
        assert!(ideal_lanes(4 * MIN_ITEMS_PER_LANE) <= 4);
        assert_eq!(ideal_lanes(1_000_000), cores);
    }

    #[test]
    fn run_chunked_preserves_item_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled = run_chunked(&items, |chunk| chunk.iter().map(|x| x * 2).collect());
        assert_eq!(doubled.len(), 1000);
        for (i, v) in doubled.into_iter().enumerate() {
            assert_eq!(v, 2 * i as u64);
        }
    }

    #[test]
    fn run_chunked_handles_tiny_batches() {
        assert_eq!(run_chunked(&[7u32], |c| c.to_vec()), vec![7]);
        let empty: Vec<u32> = Vec::new();
        assert_eq!(run_chunked(&empty, |c| c.to_vec()), Vec::<u32>::new());
    }
}
