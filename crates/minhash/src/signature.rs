//! MinHash signatures and the [`MinHasher`] that produces them.
//!
//! A signature is the vector of per-permutation minima of a domain's hashed
//! values (§3.1 of the paper). Signatures support:
//!
//! * unbiased Jaccard estimation by slot collision counting (Eq. 4),
//! * slot-wise `min` merging, which computes the signature of a set union
//!   exactly (used for streaming ingestion),
//! * cardinality estimation (the `approx(|Q|)` primitive of §5.1), and
//! * containment estimation via the inclusion–exclusion conversion (Eq. 6).

use crate::hash::SeedStream;
use crate::kernel::FoldKernel;
use crate::perm::{PermutationFamily, EMPTY_SLOT, MERSENNE_PRIME};

/// Default number of minwise hash functions, matching Table 3 of the paper.
pub const DEFAULT_NUM_PERM: usize = 256;

/// A MinHash signature: one minimum per permutation slot.
///
/// Slots hold values in `[0, p)` (`p = 2^61 − 1`) for non-empty domains, or
/// [`EMPTY_SLOT`] for the signature of the empty set.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Signature {
    slots: Box<[u64]>,
}

impl Signature {
    /// The signature of the empty domain at width `m` (all sentinel slots).
    #[must_use]
    pub fn empty(m: usize) -> Self {
        Self {
            slots: vec![EMPTY_SLOT; m].into_boxed_slice(),
        }
    }

    /// Wraps raw slot values. Intended for deserialisation and tests.
    ///
    /// # Panics
    /// Panics if `slots` is empty.
    #[must_use]
    pub fn from_slots(slots: Vec<u64>) -> Self {
        assert!(!slots.is_empty(), "signature must have at least one slot");
        Self {
            slots: slots.into_boxed_slice(),
        }
    }

    /// Signature width `m`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the width is zero (cannot occur via public constructors).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// True if this is the signature of an empty domain.
    #[must_use]
    pub fn is_empty_domain(&self) -> bool {
        self.slots.first() == Some(&EMPTY_SLOT)
    }

    /// Raw slot access.
    #[must_use]
    pub fn slots(&self) -> &[u64] {
        &self.slots
    }

    /// Estimates Jaccard similarity as the fraction of colliding slots
    /// (Eq. 4). Two empty-domain signatures estimate 1.0 (both sets equal).
    ///
    /// # Panics
    /// Panics if the signatures have different widths.
    #[must_use]
    pub fn jaccard(&self, other: &Self) -> f64 {
        assert_eq!(
            self.len(),
            other.len(),
            "signatures must share a permutation family"
        );
        let hits = self
            .slots
            .iter()
            .zip(other.slots.iter())
            .filter(|(a, b)| a == b)
            .count();
        hits as f64 / self.len() as f64
    }

    /// Merges `other` into `self` by slot-wise minimum.
    ///
    /// Because `min` distributes over set union, the result is exactly the
    /// signature of the union of the two underlying domains.
    ///
    /// # Panics
    /// Panics if the signatures have different widths.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.len(), other.len(), "signature width mismatch");
        for (a, b) in self.slots.iter_mut().zip(other.slots.iter()) {
            if *b < *a {
                *a = *b;
            }
        }
    }

    /// Returns the union signature without mutating the inputs.
    #[must_use]
    pub fn union(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// Estimates the cardinality of the underlying domain (§5.1's
    /// `approx(|Q|)`).
    ///
    /// Each slot is the minimum of `n` i.i.d. uniform draws on `[0, p)`;
    /// the normalised minimum has expectation `1/(n+1)`, so
    /// `n̂ = m / Σ vᵢ − 1` with `vᵢ = slotᵢ / p`. The estimate is clamped
    /// below at 0 and rounds to the nearest integer for `estimate ≥ 1`.
    #[must_use]
    pub fn cardinality(&self) -> f64 {
        if self.is_empty_domain() {
            return 0.0;
        }
        let m = self.len() as f64;
        let sum: f64 = self
            .slots
            .iter()
            .map(|&s| s as f64 / MERSENNE_PRIME as f64)
            .sum();
        if sum <= 0.0 {
            // All minima collapsed to 0 — astronomically unlikely unless the
            // domain is enormous; report the largest finite guess instead of
            // dividing by zero.
            return f64::MAX;
        }
        (m / sum - 1.0).max(0.0)
    }

    /// Estimates the containment `t(Q, X) = |Q ∩ X| / |Q|` of `self` (the
    /// query `Q`) in `other` (`X`), given the true or estimated cardinalities
    /// `q` and `x`, via Eq. 6: `t̂(s) = (x/q + 1)·s / (1 + s)`.
    ///
    /// Returns a value clamped to `[0, 1]`.
    ///
    /// # Panics
    /// Panics if `q` is not strictly positive.
    #[must_use]
    pub fn containment_in(&self, other: &Self, q: f64, x: f64) -> f64 {
        assert!(q > 0.0, "query cardinality must be positive");
        let s = self.jaccard(other);
        crate::containment_from_jaccard(s, x, q)
    }
}

/// Deterministic MinHash signature generator over a [`PermutationFamily`].
///
/// The hasher owns the family; all signatures it creates are mutually
/// comparable, and two hashers with the same `(seed, m)` produce identical
/// signatures for identical input sets.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MinHasher {
    family: PermutationFamily,
    /// Derived fold kernel (structure-of-arrays coefficients plus the CPU
    /// feature probe). Rebuilt from the family on deserialisation.
    #[cfg_attr(feature = "serde", serde(skip))]
    kernel: FoldKernel,
}

impl MinHasher {
    /// Default family seed shared across the workspace.
    pub const DEFAULT_SEED: u64 = 0x5EED_CAFE_F00D_D00D;

    /// Creates a hasher with `m` permutations from an explicit seed.
    #[must_use]
    pub fn with_seed(seed: u64, m: usize) -> Self {
        let family = PermutationFamily::new(seed, m);
        let kernel = FoldKernel::new(family.permutations());
        Self { family, kernel }
    }

    /// Creates a hasher with the workspace default seed.
    #[must_use]
    pub fn new(m: usize) -> Self {
        Self::with_seed(Self::DEFAULT_SEED, m)
    }

    /// Signature width `m`.
    #[must_use]
    pub fn num_perm(&self) -> usize {
        self.family.len()
    }

    /// The underlying permutation family.
    #[must_use]
    pub fn family(&self) -> &PermutationFamily {
        &self.family
    }

    /// True if signatures from `other` are comparable with ours.
    #[must_use]
    pub fn compatible_with(&self, other: &Self) -> bool {
        self.family.compatible_with(&other.family)
    }

    /// The min-fold kernel: folds every value's permuted hashes into
    /// `slots` by slot-wise minimum. Single-signature construction,
    /// streaming updates, and the bulk path all run through
    /// [`FoldKernel::fold`], which picks AVX2 lanes or the portable
    /// unrolled loop at runtime — both bit-identical to the scalar
    /// per-permutation reference.
    fn fold_into<I>(&self, values: I, slots: &mut [u64])
    where
        I: IntoIterator<Item = u64>,
    {
        if self.kernel.len() == slots.len() {
            self.kernel.fold(values, slots);
            return;
        }
        // The kernel is serde-skipped, so a hasher that arrived through
        // deserialisation without reconstruction has an empty kernel —
        // fall back to the per-permutation scalar reference.
        let perms = self.family.permutations();
        for v in values {
            for (slot, perm) in slots.iter_mut().zip(perms.iter()) {
                let h = perm.apply(v);
                if h < *slot {
                    *slot = h;
                }
            }
        }
    }

    /// Computes the signature of a set of pre-hashed 64-bit values.
    ///
    /// Duplicates in the input do not affect the result (minimum is
    /// idempotent), so callers may stream multisets. An empty iterator
    /// yields [`Signature::empty`].
    #[must_use]
    pub fn signature<I>(&self, values: I) -> Signature
    where
        I: IntoIterator<Item = u64>,
    {
        let mut slots = vec![EMPTY_SLOT; self.family.len()];
        self.fold_into(values, &mut slots);
        Signature {
            slots: slots.into_boxed_slice(),
        }
    }

    /// Convenience: hash raw string values into the universe, then sign.
    #[must_use]
    pub fn signature_of_strs<'a, I>(&self, values: I) -> Signature
    where
        I: IntoIterator<Item = &'a str>,
    {
        self.signature(values.into_iter().map(crate::hash::hash_str))
    }

    /// Computes one signature per pre-hashed value set, in input order —
    /// the batched construction path used by bulk index builds, CLI
    /// ingest, and the server's `/batch` endpoint.
    ///
    /// Semantically identical to mapping [`signature`](Self::signature)
    /// over `sets`, but the per-item setup is paid once per batch: the
    /// permutation family is fetched once, each worker lane fills a shared
    /// min-slot scratch buffer instead of growing a fresh one per item,
    /// and the lanes come from the process-wide [`crate::lanes`] harness
    /// (spawned once per batch, floored at
    /// [`crate::lanes::MIN_ITEMS_PER_LANE`] sets per lane, budget-governed
    /// so concurrent bulk callers degrade gracefully instead of
    /// oversubscribing the host).
    #[must_use]
    pub fn bulk_signatures(&self, sets: &[&[u64]]) -> Vec<Signature> {
        let m = self.family.len();
        crate::lanes::run_chunked(sets, |chunk| {
            let mut scratch: Vec<u64> = vec![EMPTY_SLOT; m];
            chunk
                .iter()
                .map(|values| {
                    scratch.fill(EMPTY_SLOT);
                    self.fold_into(values.iter().copied(), &mut scratch);
                    Signature {
                        slots: scratch.clone().into_boxed_slice(),
                    }
                })
                .collect()
        })
    }

    /// Folds one more value into an existing signature (streaming update).
    ///
    /// # Panics
    /// Panics if the signature width differs from the hasher's `m`.
    pub fn update(&self, sig: &mut Signature, value: u64) {
        assert_eq!(sig.len(), self.family.len(), "signature width mismatch");
        self.fold_into(std::iter::once(value), &mut sig.slots);
    }

    /// Generates a set of `n` distinct synthetic universe values, useful in
    /// tests and benchmarks. Values are drawn deterministically from `seed`.
    #[must_use]
    pub fn synthetic_values(seed: u64, n: usize) -> Vec<u64> {
        let mut stream = SeedStream::new(seed);
        let mut out = crate::hash::FastHashSet::default();
        out.reserve(n);
        while out.len() < n {
            out.insert(stream.next_u64());
        }
        out.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(vals: &[u64]) -> Vec<u64> {
        vals.to_vec()
    }

    #[test]
    fn identical_sets_have_identical_signatures() {
        let h = MinHasher::new(128);
        let a = h.signature(set(&[1, 2, 3, 4, 5]));
        let b = h.signature(set(&[5, 4, 3, 2, 1]));
        assert_eq!(a, b, "order must not matter");
        assert!((a.jaccard(&b) - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn duplicates_ignored() {
        let h = MinHasher::new(64);
        let a = h.signature(set(&[1, 1, 2, 2, 3]));
        let b = h.signature(set(&[1, 2, 3]));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_signature_flags() {
        let h = MinHasher::new(16);
        let e = h.signature(std::iter::empty());
        assert!(e.is_empty_domain());
        assert_eq!(e, Signature::empty(16));
        assert_eq!(e.cardinality(), 0.0);
    }

    #[test]
    fn disjoint_sets_estimate_near_zero() {
        let h = MinHasher::new(256);
        let a = h.signature(MinHasher::synthetic_values(1, 500));
        let b = h.signature(MinHasher::synthetic_values(2, 500));
        assert!(a.jaccard(&b) < 0.05, "jaccard = {}", a.jaccard(&b));
    }

    #[test]
    fn jaccard_estimate_concentrates() {
        // |A| = |B| = 1000, |A ∩ B| = 500 → J = 500 / 1500 = 1/3.
        let h = MinHasher::new(256);
        let shared = MinHasher::synthetic_values(10, 500);
        let only_a = MinHasher::synthetic_values(11, 500);
        let only_b = MinHasher::synthetic_values(12, 500);
        let a: Vec<u64> = shared.iter().chain(only_a.iter()).copied().collect();
        let b: Vec<u64> = shared.iter().chain(only_b.iter()).copied().collect();
        let est = h.signature(a).jaccard(&h.signature(b));
        let truth = 1.0 / 3.0;
        // Std-dev ≈ sqrt(J(1−J)/m) ≈ 0.029; allow 4 sigma.
        assert!((est - truth).abs() < 0.12, "estimate {est} vs {truth}");
    }

    #[test]
    fn merge_computes_union_signature() {
        let h = MinHasher::new(128);
        let xs = MinHasher::synthetic_values(20, 300);
        let ys = MinHasher::synthetic_values(21, 300);
        let mut merged = h.signature(xs.iter().copied());
        merged.merge(&h.signature(ys.iter().copied()));
        let direct = h.signature(xs.into_iter().chain(ys));
        assert_eq!(merged, direct);
    }

    #[test]
    fn union_is_commutative() {
        let h = MinHasher::new(64);
        let a = h.signature(MinHasher::synthetic_values(30, 100));
        let b = h.signature(MinHasher::synthetic_values(31, 100));
        assert_eq!(a.union(&b), b.union(&a));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let h = MinHasher::new(64);
        let a = h.signature(MinHasher::synthetic_values(40, 50));
        let mut merged = a.clone();
        merged.merge(&Signature::empty(64));
        assert_eq!(merged, a);
    }

    #[test]
    fn streaming_update_matches_batch() {
        let h = MinHasher::new(64);
        let vals = MinHasher::synthetic_values(50, 200);
        let mut streamed = Signature::empty(64);
        for &v in &vals {
            h.update(&mut streamed, v);
        }
        assert_eq!(streamed, h.signature(vals));
    }

    #[test]
    fn cardinality_estimate_relative_error() {
        let h = MinHasher::new(256);
        for &n in &[100usize, 1_000, 10_000] {
            let sig = h.signature(MinHasher::synthetic_values(n as u64, n));
            let est = sig.cardinality();
            let rel = (est - n as f64).abs() / n as f64;
            // Relative std-dev of the estimator is ~1/sqrt(m) ≈ 6.25%;
            // allow 4 sigma.
            assert!(rel < 0.25, "n = {n}, estimate = {est}, rel err = {rel}");
        }
    }

    #[test]
    fn cardinality_of_singleton() {
        let h = MinHasher::new(256);
        let sig = h.signature([42u64]);
        let est = sig.cardinality();
        assert!(est < 5.0, "singleton estimated as {est}");
    }

    #[test]
    fn containment_estimate_tracks_truth() {
        // Q ⊂ X with |Q| = 200, |X| = 1000, t(Q,X) = 1.0.
        let h = MinHasher::new(256);
        let x_vals = MinHasher::synthetic_values(60, 1000);
        let q_vals: Vec<u64> = x_vals[..200].to_vec();
        let q = h.signature(q_vals);
        let x = h.signature(x_vals);
        let t = q.containment_in(&x, 200.0, 1000.0);
        assert!(t > 0.8, "containment estimate {t} too low for t = 1.0");
    }

    #[test]
    fn bulk_signatures_match_singles() {
        let h = MinHasher::new(128);
        let sets: Vec<Vec<u64>> = (0..37)
            .map(|k| MinHasher::synthetic_values(k + 1, 10 + 13 * k as usize % 200))
            .collect();
        let refs: Vec<&[u64]> = sets.iter().map(Vec::as_slice).collect();
        let bulk = h.bulk_signatures(&refs);
        assert_eq!(bulk.len(), sets.len());
        for (set, sig) in sets.iter().zip(&bulk) {
            assert_eq!(*sig, h.signature(set.iter().copied()), "bulk diverges");
        }
        // Empty input slice and empty member sets both behave.
        assert!(h.bulk_signatures(&[]).is_empty());
        let with_empty = h.bulk_signatures(&[&[], &[1, 2, 3]]);
        assert!(with_empty[0].is_empty_domain());
        assert_eq!(with_empty[1], h.signature([1u64, 2, 3]));
    }

    #[test]
    fn signature_of_strs_uses_value_hash() {
        let h = MinHasher::new(32);
        let a = h.signature_of_strs(["ontario", "toronto"]);
        let b = h.signature([
            crate::hash::hash_str("toronto"),
            crate::hash::hash_str("ontario"),
        ]);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_incomparable_hashers() {
        let h1 = MinHasher::with_seed(1, 32);
        let h2 = MinHasher::with_seed(2, 32);
        assert!(!h1.compatible_with(&h2));
        assert!(h1.compatible_with(&h1.clone()));
    }

    #[test]
    #[should_panic(expected = "share a permutation family")]
    fn jaccard_width_mismatch_panics() {
        let a = Signature::empty(8);
        let b = Signature::empty(16);
        let _ = a.jaccard(&b);
    }

    #[test]
    fn synthetic_values_distinct_and_deterministic() {
        let a = MinHasher::synthetic_values(7, 1000);
        let b = MinHasher::synthetic_values(7, 1000);
        let sa: std::collections::HashSet<u64> = a.iter().copied().collect();
        assert_eq!(sa.len(), 1000);
        let sb: std::collections::HashSet<u64> = b.iter().copied().collect();
        assert_eq!(sa, sb);
    }
}
