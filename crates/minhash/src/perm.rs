//! Pairwise-independent permutation family over a Mersenne prime field.
//!
//! Minwise hashing (Broder, reference 6 in the paper) needs, for each signature slot,
//! an independent "random permutation" of the value universe. The standard
//! practical construction is the affine family
//!
//! ```text
//! h_{a,b}(v) = (a·v + b) mod p        a ∈ [1, p), b ∈ [0, p)
//! ```
//!
//! over the Mersenne prime `p = 2^61 − 1`, which is pairwise independent —
//! sufficient for the MinHash collision analysis — and admits a fast
//! reduction without division.

/// The Mersenne prime `2^61 − 1` used as the permutation field modulus.
pub const MERSENNE_PRIME: u64 = (1u64 << 61) - 1;

/// Largest value a permuted hash can take (`p − 1`). Signature slots are
/// always in `[0, MAX_PERM_VALUE]`; [`EMPTY_SLOT`] is strictly above it.
pub const MAX_PERM_VALUE: u64 = MERSENNE_PRIME - 1;

/// Sentinel stored in signature slots of an *empty* domain. Chosen above
/// every reachable permuted value so empty signatures never collide with
/// real ones and slot-wise `min` composes unions correctly.
pub const EMPTY_SLOT: u64 = u64::MAX;

/// Reduces `x mod (2^61 − 1)` without division.
///
/// Works for any `x < 2^122`, which covers the products formed in
/// [`AffinePermutation::apply`] (both factors are `< 2^61`).
#[inline]
#[must_use]
pub fn mersenne_mod(x: u128) -> u64 {
    const P: u128 = MERSENNE_PRIME as u128;
    // x mod (2^61 - 1): fold the high bits twice. After two folds the value
    // is < 2^62, one conditional subtraction finishes the job.
    let folded = (x & P) + (x >> 61);
    let folded = (folded & P) + (folded >> 61);
    let r = folded as u64;
    if r >= MERSENNE_PRIME {
        r - MERSENNE_PRIME
    } else {
        r
    }
}

/// One member of the affine permutation family `v ↦ (a·v + b) mod p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AffinePermutation {
    a: u64,
    b: u64,
}

impl AffinePermutation {
    /// Creates a permutation from raw coefficients.
    ///
    /// # Panics
    /// Panics if `a == 0` or either coefficient is `≥ p` (such maps are not
    /// permutations of the field).
    #[must_use]
    pub fn new(a: u64, b: u64) -> Self {
        assert!(a > 0 && a < MERSENNE_PRIME, "a must be in [1, p)");
        assert!(b < MERSENNE_PRIME, "b must be in [0, p)");
        Self { a, b }
    }

    /// Draws a permutation from a seed stream, rejecting out-of-range draws.
    #[must_use]
    pub fn from_stream(stream: &mut crate::hash::SeedStream) -> Self {
        let a = loop {
            // Mask to 61 bits then reject 0 and values ≥ p (p itself is the
            // only 61-bit residue excluded, so rejection is rare).
            let c = stream.next_u64() & ((1u64 << 61) - 1);
            if c != 0 && c < MERSENNE_PRIME {
                break c;
            }
        };
        let b = loop {
            let c = stream.next_u64() & ((1u64 << 61) - 1);
            if c < MERSENNE_PRIME {
                break c;
            }
        };
        Self { a, b }
    }

    /// Applies the permutation to a 64-bit value.
    ///
    /// Inputs are first reduced into the field; the reduction maps at most
    /// 8 of the 2^64 inputs onto shared residues, a collision rate far below
    /// the 2^-61 noise floor of the family itself.
    #[inline]
    #[must_use]
    pub fn apply(&self, v: u64) -> u64 {
        let v = mersenne_mod(u128::from(v));
        mersenne_mod(u128::from(self.a) * u128::from(v) + u128::from(self.b))
    }

    /// Raw `a` coefficient (for serialisation and tests).
    #[must_use]
    pub fn a(&self) -> u64 {
        self.a
    }

    /// Raw `b` coefficient.
    #[must_use]
    pub fn b(&self) -> u64 {
        self.b
    }
}

/// A deterministic family of `m` affine permutations derived from one seed.
///
/// Two families built with the same `(seed, m)` are identical, so signatures
/// created on different machines (or different runs) are comparable — the
/// property the paper relies on when sketching queries client-side.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PermutationFamily {
    seed: u64,
    perms: Vec<AffinePermutation>,
}

impl PermutationFamily {
    /// Builds the family of `m` permutations from `seed`.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    #[must_use]
    pub fn new(seed: u64, m: usize) -> Self {
        assert!(m > 0, "a permutation family needs at least one member");
        let mut stream = crate::hash::SeedStream::new(seed);
        let perms = (0..m)
            .map(|_| AffinePermutation::from_stream(&mut stream))
            .collect();
        Self { seed, perms }
    }

    /// Number of permutations (the signature length `m`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.perms.len()
    }

    /// Always false (construction requires `m > 0`); present for API
    /// completeness alongside [`len`](Self::len).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.perms.is_empty()
    }

    /// The seed the family was derived from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The permutations, in slot order.
    #[must_use]
    pub fn permutations(&self) -> &[AffinePermutation] {
        &self.perms
    }

    /// Returns true if `other` was built from the same seed and length, and
    /// therefore produces comparable signatures.
    #[must_use]
    pub fn compatible_with(&self, other: &Self) -> bool {
        self.seed == other.seed && self.perms.len() == other.perms.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::SeedStream;

    #[test]
    fn mersenne_mod_agrees_with_naive() {
        let p = u128::from(MERSENNE_PRIME);
        let samples: [u128; 8] = [
            0,
            1,
            p - 1,
            p,
            p + 1,
            u128::from(u64::MAX),
            p * p - 1,
            (p - 1) * (p - 1) + (p - 1), // max value formed in apply()
        ];
        for &x in &samples {
            assert_eq!(u128::from(mersenne_mod(x)), x % p, "x = {x}");
        }
    }

    #[test]
    fn mersenne_mod_exhaustive_small() {
        for x in 0u128..1000 {
            assert_eq!(u128::from(mersenne_mod(x)), x % u128::from(MERSENNE_PRIME));
        }
    }

    #[test]
    fn affine_is_permutation_on_small_sample() {
        use std::collections::HashSet;
        let perm = AffinePermutation::new(12345, 678);
        let out: HashSet<u64> = (0..10_000u64).map(|v| perm.apply(v)).collect();
        assert_eq!(out.len(), 10_000, "affine map must be injective in-field");
    }

    #[test]
    #[should_panic(expected = "a must be in [1, p)")]
    fn zero_a_rejected() {
        let _ = AffinePermutation::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "b must be in [0, p)")]
    fn oversized_b_rejected() {
        let _ = AffinePermutation::new(1, MERSENNE_PRIME);
    }

    #[test]
    fn from_stream_in_range() {
        let mut s = SeedStream::new(3);
        for _ in 0..100 {
            let p = AffinePermutation::from_stream(&mut s);
            assert!(p.a() > 0 && p.a() < MERSENNE_PRIME);
            assert!(p.b() < MERSENNE_PRIME);
        }
    }

    #[test]
    fn family_deterministic() {
        let f1 = PermutationFamily::new(9, 64);
        let f2 = PermutationFamily::new(9, 64);
        assert_eq!(f1, f2);
        assert!(f1.compatible_with(&f2));
    }

    #[test]
    fn family_differs_by_seed() {
        let f1 = PermutationFamily::new(9, 16);
        let f2 = PermutationFamily::new(10, 16);
        assert_ne!(f1, f2);
        assert!(!f1.compatible_with(&f2));
    }

    #[test]
    fn family_members_distinct() {
        let f = PermutationFamily::new(1, 256);
        for (i, a) in f.permutations().iter().enumerate() {
            for b in &f.permutations()[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_family_rejected() {
        let _ = PermutationFamily::new(0, 0);
    }

    #[test]
    fn apply_output_below_empty_slot() {
        let f = PermutationFamily::new(5, 32);
        for p in f.permutations() {
            for v in [0u64, 1, u64::MAX, 42] {
                assert!(p.apply(v) <= MAX_PERM_VALUE);
                assert!(p.apply(v) < EMPTY_SLOT);
            }
        }
    }
}
