//! # lshe-minhash
//!
//! Minwise-hashing substrate for the LSH Ensemble reproduction
//! (Zhu, Nargesian, Pu & Miller, *LSH Ensemble: Internet-Scale Domain
//! Search*, VLDB 2016).
//!
//! This crate provides the sketching layer everything else is built on:
//!
//! * [`hash`] — deterministic 64-bit hashing of raw values into the value
//!   universe, plus the fast internal hasher used by indexes.
//! * [`perm`] — the pairwise-independent affine permutation family over the
//!   Mersenne prime `2^61 − 1`.
//! * [`kernel`] — the [`FoldKernel`] min-fold inner loop (runtime-detected
//!   AVX2 lanes with a portable unrolled fallback, bit-identical results).
//! * [`signature`] — [`MinHasher`] / [`Signature`]: signature generation,
//!   Jaccard estimation (Eq. 4 of the paper), union merging, cardinality
//!   estimation (`approx(|Q|)`, §5.1), and containment estimation.
//! * the inclusion–exclusion conversions between Jaccard similarity and set
//!   containment (Eq. 6) as free functions, re-used by the core crate's
//!   threshold machinery.
//! * [`lanes`] — the process-wide worker-lane budget shared by every
//!   batched fan-out in the workspace (bulk sketching here, the batched
//!   query sweeps upstream).
//!
//! ## Quick example
//!
//! ```
//! use lshe_minhash::{MinHasher, hash::hash_str};
//!
//! let hasher = MinHasher::new(256);
//! let q = hasher.signature(["ontario", "toronto"].map(hash_str));
//! let x = hasher.signature(["ontario", "toronto", "halifax"].map(hash_str));
//! // Jaccard(Q, X) = 2/3; the 256-slot estimate lands close.
//! assert!((q.jaccard(&x) - 2.0 / 3.0).abs() < 0.15);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod codec;
pub mod hash;
pub mod kernel;
pub mod lanes;
pub mod oneperm;
pub mod perm;
pub mod signature;

pub use codec::CodecError;
pub use kernel::FoldKernel;
pub use oneperm::OnePermHasher;
pub use perm::{AffinePermutation, PermutationFamily, EMPTY_SLOT, MERSENNE_PRIME};
pub use signature::{MinHasher, Signature, DEFAULT_NUM_PERM};

/// Converts a containment score to the corresponding Jaccard similarity for
/// domain sizes `x = |X|` and `q = |Q|` (Eq. 6, left):
///
/// ```text
/// ŝ_{x,q}(t) = t / (x/q + 1 − t)
/// ```
///
/// Output is clamped to `[0, 1]`.
///
/// # Panics
/// Panics if `q ≤ 0` or `x < 0`.
#[must_use]
pub fn jaccard_from_containment(t: f64, x: f64, q: f64) -> f64 {
    assert!(q > 0.0, "query size must be positive");
    assert!(x >= 0.0, "domain size must be non-negative");
    let denom = x / q + 1.0 - t;
    if denom <= 0.0 {
        // Only reachable when t > x/q + 1 ≥ 1, i.e. an out-of-range t;
        // saturate rather than return a negative similarity.
        return 1.0;
    }
    (t / denom).clamp(0.0, 1.0)
}

/// Converts a Jaccard similarity to the corresponding containment score for
/// domain sizes `x = |X|` and `q = |Q|` (Eq. 6, right):
///
/// ```text
/// t̂_{x,q}(s) = (x/q + 1)·s / (1 + s)
/// ```
///
/// Output is clamped to `[0, 1]` (containment can never exceed 1, and also
/// never exceeds `x/q`; the caller may apply the tighter bound if needed).
///
/// # Panics
/// Panics if `q ≤ 0` or `x < 0`.
#[must_use]
pub fn containment_from_jaccard(s: f64, x: f64, q: f64) -> f64 {
    assert!(q > 0.0, "query size must be positive");
    assert!(x >= 0.0, "domain size must be non-negative");
    ((x / q + 1.0) * s / (1.0 + s)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_inverse() {
        for &(x, q) in &[(10.0f64, 5.0f64), (100.0, 100.0), (3.0, 1.0), (1.0, 7.0)] {
            for i in 0..=20 {
                let t = f64::from(i) / 20.0 * (x / q).min(1.0);
                let s = jaccard_from_containment(t, x, q);
                let back = containment_from_jaccard(s, x, q);
                assert!(
                    (back - t).abs() < 1e-9,
                    "x={x} q={q} t={t} s={s} back={back}"
                );
            }
        }
    }

    #[test]
    fn paper_example_values() {
        // §2: Q = {Ontario, Toronto}, Provinces (3 values, overlap 1),
        // Locations (12 values, overlap 2).
        // s(Q, Provinces) = 1/4, t(Q, Provinces) = 1/2.
        let s = 0.25;
        let t = containment_from_jaccard(s, 3.0, 2.0);
        assert!((t - 0.5).abs() < 1e-12);
        // s(Q, Locations) = 2/12/... = 2 / (2 + 12 - 2) = 1/6... the paper
        // reports 0.083 ≈ 1/12? No: |Q ∪ L| = 12, |Q ∩ L| = 2 (Q ⊆ L),
        // s = 2/12 = 1/6 ≈ 0.167. The paper's 0.083 uses |Q∪L| = 24?  We
        // verify the identity rather than the prose: t = 1.0 at s = 1/6.
        let t = containment_from_jaccard(1.0 / 6.0, 12.0, 2.0);
        assert!((t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_monotone_in_containment() {
        let (x, q) = (50.0, 10.0);
        let mut prev = -1.0;
        for i in 0..=100 {
            let t = f64::from(i) / 100.0;
            let s = jaccard_from_containment(t, x, q);
            assert!(s >= prev);
            prev = s;
        }
    }

    #[test]
    fn conversion_extremes() {
        assert_eq!(jaccard_from_containment(0.0, 10.0, 5.0), 0.0);
        assert_eq!(containment_from_jaccard(0.0, 10.0, 5.0), 0.0);
        // t = 1 with x = q gives s = 1 (identical sets).
        assert!((jaccard_from_containment(1.0, 5.0, 5.0) - 1.0).abs() < 1e-12);
        // Degenerate denominator saturates instead of panicking.
        assert_eq!(jaccard_from_containment(1.5, 0.5, 1.0), 1.0);
    }

    #[test]
    fn larger_x_lowers_jaccard_for_same_t() {
        let q = 10.0;
        let t = 0.6;
        let s_small = jaccard_from_containment(t, 10.0, q);
        let s_big = jaccard_from_containment(t, 1000.0, q);
        assert!(
            s_big < s_small,
            "Jaccard must shrink as |X| grows at fixed containment"
        );
    }
}
