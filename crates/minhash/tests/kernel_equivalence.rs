//! Property tests: the [`FoldKernel`] (AVX2 or portable, whichever this
//! host runs) is bit-identical to the scalar per-permutation reference.
//!
//! Signatures are persisted in index files and compared across machines,
//! so the vectorised kernel must never change a single slot relative to
//! [`AffinePermutation::apply`] folded lane by lane.

use lshe_minhash::kernel::FoldKernel;
use lshe_minhash::perm::{AffinePermutation, PermutationFamily, EMPTY_SLOT, MERSENNE_PRIME};
use lshe_minhash::MinHasher;
use proptest::prelude::*;

/// Scalar reference fold: per-lane `apply` + min.
fn reference_fold(perms: &[AffinePermutation], values: &[u64], slots: &mut [u64]) {
    for &v in values {
        for (slot, perm) in slots.iter_mut().zip(perms.iter()) {
            let h = perm.apply(v);
            if h < *slot {
                *slot = h;
            }
        }
    }
}

proptest! {
    #[test]
    fn kernel_fold_matches_scalar_reference(
        seed in any::<u64>(),
        m in 1usize..300,
        values in prop::collection::vec(any::<u64>(), 0..200),
    ) {
        let family = PermutationFamily::new(seed, m);
        let kernel = FoldKernel::new(family.permutations());
        let mut expect = vec![EMPTY_SLOT; m];
        reference_fold(family.permutations(), &values, &mut expect);
        let mut got = vec![EMPTY_SLOT; m];
        kernel.fold(values.iter().copied(), &mut got);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn kernel_fold_resumes_from_partial_slots(
        seed in any::<u64>(),
        m in 1usize..130,
        first in prop::collection::vec(any::<u64>(), 1..100),
        second in prop::collection::vec(any::<u64>(), 1..100),
    ) {
        // Folding in two batches must equal one fold of the concatenation
        // (the streaming-update contract).
        let family = PermutationFamily::new(seed, m);
        let kernel = FoldKernel::new(family.permutations());
        let mut split = vec![EMPTY_SLOT; m];
        kernel.fold(first.iter().copied(), &mut split);
        kernel.fold(second.iter().copied(), &mut split);
        let mut whole = vec![EMPTY_SLOT; m];
        kernel.fold(first.iter().chain(second.iter()).copied(), &mut whole);
        prop_assert_eq!(split, whole);
        // And every slot is canonical: strictly below p (or the sentinel).
        prop_assert!(whole.iter().all(|&s| s < MERSENNE_PRIME || s == EMPTY_SLOT));
    }

    #[test]
    fn minhasher_signature_matches_reference_fold(
        seed in any::<u64>(),
        values in prop::collection::vec(any::<u64>(), 0..150),
    ) {
        // End-to-end: the public MinHasher (kernel-backed) agrees with the
        // scalar reference at the default production width.
        let m = 256usize;
        let hasher = MinHasher::with_seed(seed, m);
        let mut expect = vec![EMPTY_SLOT; m];
        reference_fold(hasher.family().permutations(), &values, &mut expect);
        let sig = hasher.signature(values.iter().copied());
        prop_assert_eq!(sig.slots(), expect.as_slice());
    }
}
