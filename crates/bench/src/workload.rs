//! Shared experiment machinery: signature pipelines, index construction,
//! ground truth, and accuracy sweeps.
//!
//! Every experiment binary is a thin `main` over these helpers, so the
//! corpus handling, threading, and metric conventions are identical across
//! figures.

use lshe_core::{DomainIndex, EnsembleConfig, LshEnsemble, PartitionStrategy, Query};
use lshe_corpus::{Catalog, DomainId, ExactIndex};
use lshe_datagen::{aggregate, query_accuracy, WorkloadAccuracy};
use lshe_minhash::{MinHasher, Signature};
use std::time::Instant;

/// Number of worker threads for signature generation and query sweeps.
#[must_use]
pub fn worker_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

/// Computes MinHash signatures for every domain of the catalog in parallel.
#[must_use]
pub fn compute_signatures(catalog: &Catalog, hasher: &MinHasher) -> Vec<Signature> {
    let n = catalog.len();
    let threads = worker_threads().min(n.max(1));
    let mut out: Vec<Option<Signature>> = vec![None; n];
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, slice) in out.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                for (i, slot) in slice.iter_mut().enumerate() {
                    let id = (t * chunk + i) as DomainId;
                    *slot = Some(catalog.domain(id).signature(hasher));
                }
            });
        }
    });
    out.into_iter()
        .map(|s| s.expect("signature computed"))
        .collect()
}

/// Builds an [`LshEnsemble`] over the whole catalog with the given strategy
/// (zero-copy: signatures are borrowed, not cloned).
#[must_use]
pub fn build_ensemble(
    catalog: &Catalog,
    signatures: &[Signature],
    strategy: PartitionStrategy,
) -> LshEnsemble {
    let ids: Vec<DomainId> = catalog.iter().map(|(id, _)| id).collect();
    let sizes: Vec<u64> = catalog.iter().map(|(_, d)| d.len() as u64).collect();
    let sig_refs: Vec<&Signature> = signatures.iter().collect();
    LshEnsemble::build_from_parts(
        EnsembleConfig {
            strategy,
            ..EnsembleConfig::default()
        },
        &ids,
        &sizes,
        &sig_refs,
    )
}

/// Ground truth for one query across a set of thresholds: `truth[k]` is the
/// sorted answer set at `thresholds[k]` (Eq. 2).
#[must_use]
pub fn ground_truth_sets(
    exact: &ExactIndex,
    catalog: &Catalog,
    query: DomainId,
    thresholds: &[f64],
) -> Vec<Vec<DomainId>> {
    let scores = exact.scores(catalog.domain(query));
    thresholds
        .iter()
        .map(|&t| {
            let mut ids: Vec<DomainId> = scores
                .iter()
                .take_while(|&&(_, s)| s >= t)
                .map(|&(id, _)| id)
                .collect();
            ids.sort_unstable();
            ids
        })
        .collect()
}

/// Accuracy of one index over a query workload at several thresholds.
///
/// Returns one [`WorkloadAccuracy`] per threshold. Queries run in parallel
/// across worker threads; ground truth is computed once per query and
/// reused across thresholds.
#[must_use]
pub fn accuracy_sweep(
    index: &dyn DomainIndex,
    exact: &ExactIndex,
    catalog: &Catalog,
    signatures: &[Signature],
    queries: &[DomainId],
    thresholds: &[f64],
) -> Vec<WorkloadAccuracy> {
    let threads = worker_threads().min(queries.len().max(1));
    let chunk = queries.len().div_ceil(threads);
    // per_thread[t][k] = accuracies of thread t's queries at threshold k.
    let per_thread: Vec<Vec<Vec<lshe_datagen::QueryAccuracy>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(chunk)
            .map(|qs| {
                scope.spawn(move || {
                    let mut acc: Vec<Vec<lshe_datagen::QueryAccuracy>> =
                        vec![Vec::with_capacity(qs.len()); thresholds.len()];
                    for &q in qs {
                        let truth = ground_truth_sets(exact, catalog, q, thresholds);
                        let q_size = catalog.domain(q).len() as u64;
                        // One batched dispatch per query across the whole
                        // threshold grid: the index amortizes its
                        // partition probes over all thresholds at once.
                        let batch: Vec<Query<'_>> = thresholds
                            .iter()
                            .map(|&t| {
                                Query::threshold(&signatures[q as usize], t).with_size(q_size)
                            })
                            .collect();
                        for (k, result) in index.search_batch(&batch).into_iter().enumerate() {
                            let answer = result.expect("valid threshold query").ids();
                            acc[k].push(query_accuracy(&answer, &truth[k]));
                        }
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("accuracy worker panicked"))
            .collect()
    });
    (0..thresholds.len())
        .map(|k| {
            let all: Vec<lshe_datagen::QueryAccuracy> = per_thread
                .iter()
                .flat_map(|t| t[k].iter().copied())
                .collect();
            aggregate(&all)
        })
        .collect()
}

/// Wall-clock mean query latency of an index over a workload, in seconds.
/// Queries run sequentially so the number reflects a single client
/// (Table 4's "Mean Query" column).
#[must_use]
pub fn mean_query_seconds(
    index: &dyn DomainIndex,
    catalog: &Catalog,
    signatures: &[Signature],
    queries: &[DomainId],
    t_star: f64,
) -> f64 {
    let started = Instant::now();
    let mut sink = 0usize;
    for &q in queries {
        let q_size = catalog.domain(q).len() as u64;
        let query = Query::threshold(&signatures[q as usize], t_star).with_size(q_size);
        sink += index
            .search(&query)
            .expect("valid threshold query")
            .hits
            .len();
    }
    std::hint::black_box(sink);
    started.elapsed().as_secs_f64() / queries.len().max(1) as f64
}

/// The paper's default threshold grid: 0.05 to 1.0 in steps of 0.05 (§6.1).
#[must_use]
pub fn paper_threshold_grid() -> Vec<f64> {
    (1..=20).map(|i| f64::from(i) * 0.05).collect()
}

/// Everything the accuracy experiments share: the corpus, its signatures,
/// and the exact ground-truth engine.
pub struct AccuracyWorld {
    /// The synthetic Canadian-Open-Data-like corpus.
    pub catalog: Catalog,
    /// MinHash signatures aligned with catalog ids.
    pub signatures: Vec<Signature>,
    /// Exact containment engine (ground truth).
    pub exact: ExactIndex,
    /// The hasher the signatures were built with.
    pub hasher: MinHasher,
}

/// Builds the §6.1 accuracy world: a Canadian-Open-Data-like corpus of
/// `num_domains` domains (≥ 10 values each, power-law sizes), signatures,
/// and ground truth.
#[must_use]
pub fn build_accuracy_world(num_domains: usize, seed: u64) -> AccuracyWorld {
    let mut config = lshe_datagen::CorpusConfig::canadian_open_data_like();
    config.num_domains = num_domains;
    config.seed = seed;
    let catalog = lshe_datagen::generate_catalog(&config);
    let hasher = MinHasher::new(256);
    let signatures = compute_signatures(&catalog, &hasher);
    let exact = ExactIndex::build(&catalog);
    AccuracyWorld {
        catalog,
        signatures,
        exact,
        hasher,
    }
}

/// Builds the Asymmetric Minwise Hashing baseline over the whole catalog.
#[must_use]
pub fn build_asym(catalog: &Catalog, signatures: &[Signature]) -> lshe_core::AsymIndex {
    let mut builder = lshe_core::AsymIndex::builder();
    for (id, domain) in catalog.iter() {
        builder.add(id, domain.len() as u64, signatures[id as usize].clone());
    }
    builder.build()
}

/// Builds the Asym-inside-each-partition ablation (§6.1 remark).
#[must_use]
pub fn build_asym_partitioned(
    catalog: &Catalog,
    signatures: &[Signature],
    n: usize,
) -> lshe_core::AsymPartitionedIndex {
    let entries: Vec<(DomainId, u64, Signature)> = catalog
        .iter()
        .map(|(id, d)| (id, d.len() as u64, signatures[id as usize].clone()))
        .collect();
    lshe_core::AsymPartitionedIndex::build(&EnsembleConfig::default(), n, &entries)
}

/// A corpus reduced to what the performance experiments need: sizes and
/// signatures (domain values are generated, sketched, and discarded on the
/// fly — at WDC scale the raw sets would dominate memory for no benefit,
/// since Figure 9 / Table 4 measure cost, not accuracy).
pub struct PerfCorpus {
    /// Domain sizes by id.
    pub sizes: Vec<u64>,
    /// Signatures by id.
    pub signatures: Vec<Signature>,
}

/// Builds a WDC-Web-Tables-like performance corpus of `num_domains` domains
/// (power-law sizes in `[1, 2^14]`, α = 2) by streaming values through the
/// hasher in parallel.
///
/// Two overlap mechanisms mirror real web-table data:
///
/// * domains within a cluster of 24 draw contiguous runs from a shared
///   virtual pool (recurring columns across related tables), and
/// * ~30% of every domain comes from a small global pool sampled with a
///   Zipf-like skew — the "USA" / "yes" / "1" effect, where a handful of
///   ubiquitous values appear in a large fraction of all web-table columns.
///   This is what floods an unpartitioned index with low-containment
///   candidates (Table 4's slow baseline) while the partitioned ensemble
///   stays selective.
#[must_use]
pub fn build_perf_corpus(num_domains: usize, seed: u64, hasher: &MinHasher) -> PerfCorpus {
    use lshe_minhash::hash::splitmix64;
    const CLUSTER: u64 = 24;
    const MAX_SIZE: u64 = 1 << 14;
    const POOL_SIZE: u64 = (MAX_SIZE as f64 * 1.6) as u64;
    const COMMON_POOL: u64 = 2_000;
    const COMMON_FRACTION: f64 = 0.3;
    let dist = lshe_datagen::PowerLawSizes::new(1, MAX_SIZE, 2.0);
    let threads = worker_threads().min(num_domains.max(1));
    let chunk = num_domains.div_ceil(threads);
    let mut sizes: Vec<u64> = vec![0; num_domains];
    let mut signatures: Vec<Option<Signature>> = vec![None; num_domains];
    std::thread::scope(|scope| {
        for (t, (size_slice, sig_slice)) in sizes
            .chunks_mut(chunk)
            .zip(signatures.chunks_mut(chunk))
            .enumerate()
        {
            scope.spawn(move || {
                use rand::rngs::StdRng;
                use rand::{Rng, SeedableRng};
                let mut rng = StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37));
                for (i, (size_slot, sig_slot)) in
                    size_slice.iter_mut().zip(sig_slice.iter_mut()).enumerate()
                {
                    let id = (t * chunk + i) as u64;
                    let cluster = id / CLUSTER;
                    let size = dist.sample(&mut rng);
                    let common = ((size as f64) * COMMON_FRACTION).round() as u64;
                    let pooled = size - common;
                    let offset = rng.gen_range(0..=POOL_SIZE - pooled.min(POOL_SIZE));
                    let cluster_values = (0..pooled).map(|j| {
                        // Virtual pool value: position `offset + j` of this
                        // cluster's pool (same construction as datagen).
                        splitmix64(
                            splitmix64(seed ^ 0x9E3779B97F4A7C15)
                                ^ splitmix64(cluster).rotate_left(17)
                                ^ (offset + j),
                        )
                    });
                    // Zipf-ish skew: u² concentrates picks on low positions,
                    // so position 0's value appears in a large share of all
                    // domains. Duplicate picks collapse under min-hashing,
                    // so sizes shrink by at most the duplicate count.
                    let common_values: Vec<u64> = (0..common)
                        .map(|_| {
                            let u: f64 = rng.gen();
                            let pos = ((u * u) * COMMON_POOL as f64) as u64;
                            splitmix64(splitmix64(seed ^ 0xC0330) ^ pos)
                        })
                        .collect();
                    *size_slot = size;
                    *sig_slot = Some(hasher.signature(cluster_values.chain(common_values)));
                }
            });
        }
    });
    PerfCorpus {
        sizes,
        signatures: signatures
            .into_iter()
            .map(|s| s.expect("signature computed"))
            .collect(),
    }
}

/// Restricts a world to a subset of domain ids, rebuilding the catalog with
/// dense ids, signatures, and ground truth (Figure 5's nested subsets).
#[must_use]
pub fn subset_world(world: &AccuracyWorld, ids: &[DomainId]) -> AccuracyWorld {
    let mut catalog = Catalog::new();
    let mut signatures = Vec::with_capacity(ids.len());
    for &id in ids {
        catalog.push(
            world.catalog.domain(id).clone(),
            world.catalog.meta(id).clone(),
        );
        signatures.push(world.signatures[id as usize].clone());
    }
    let exact = ExactIndex::build(&catalog);
    AccuracyWorld {
        catalog,
        signatures,
        exact,
        hasher: world.hasher.clone(),
    }
}

/// Times a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let started = Instant::now();
    let out = f();
    (out, started.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshe_datagen::{generate_catalog, sample_queries, CorpusConfig, SizeBand};

    fn small_world() -> (Catalog, Vec<Signature>, ExactIndex) {
        let catalog = generate_catalog(&CorpusConfig::tiny(300, 11));
        let hasher = MinHasher::new(256);
        let sigs = compute_signatures(&catalog, &hasher);
        let exact = ExactIndex::build(&catalog);
        (catalog, sigs, exact)
    }

    #[test]
    fn signatures_match_sequential() {
        let (catalog, sigs, _) = small_world();
        let hasher = MinHasher::new(256);
        for (id, domain) in catalog.iter().take(20) {
            assert_eq!(sigs[id as usize], domain.signature(&hasher));
        }
        assert_eq!(sigs.len(), catalog.len());
    }

    #[test]
    fn ground_truth_sets_are_nested_in_threshold() {
        let (catalog, _, exact) = small_world();
        let thresholds = [0.2, 0.5, 0.8];
        let truth = ground_truth_sets(&exact, &catalog, 0, &thresholds);
        assert!(truth[0].len() >= truth[1].len());
        assert!(truth[1].len() >= truth[2].len());
        // Self-containment: the query matches itself at every threshold.
        for t in &truth {
            assert!(t.contains(&0));
        }
    }

    #[test]
    fn accuracy_sweep_shapes() {
        let (catalog, sigs, exact) = small_world();
        let ens = build_ensemble(&catalog, &sigs, PartitionStrategy::EquiDepth { n: 4 });
        let queries = sample_queries(&catalog, 25, SizeBand::All, 3);
        let thresholds = [0.3, 0.6, 0.9];
        let acc = accuracy_sweep(&ens, &exact, &catalog, &sigs, &queries, &thresholds);
        assert_eq!(acc.len(), 3);
        for a in &acc {
            assert_eq!(a.queries, 25);
            assert!((0.0..=1.0).contains(&a.precision));
            assert!((0.0..=1.0).contains(&a.recall));
        }
    }

    #[test]
    fn accuracy_parallel_matches_single_thread_aggregate() {
        // The sweep must be a pure function of (index, workload): re-running
        // yields identical numbers (thread scheduling must not leak in).
        let (catalog, sigs, exact) = small_world();
        let ens = build_ensemble(&catalog, &sigs, PartitionStrategy::EquiDepth { n: 4 });
        let queries = sample_queries(&catalog, 30, SizeBand::All, 5);
        let a = accuracy_sweep(&ens, &exact, &catalog, &sigs, &queries, &[0.5]);
        let b = accuracy_sweep(&ens, &exact, &catalog, &sigs, &queries, &[0.5]);
        assert_eq!(a[0].precision.to_bits(), b[0].precision.to_bits());
        assert_eq!(a[0].recall.to_bits(), b[0].recall.to_bits());
    }

    #[test]
    fn mean_query_seconds_positive() {
        let (catalog, sigs, _) = small_world();
        let ens = build_ensemble(&catalog, &sigs, PartitionStrategy::EquiDepth { n: 4 });
        let queries = sample_queries(&catalog, 10, SizeBand::All, 7);
        let t = mean_query_seconds(&ens, &catalog, &sigs, &queries, 0.5);
        assert!(t > 0.0);
    }

    #[test]
    fn paper_grid_is_twenty_points() {
        let g = paper_threshold_grid();
        assert_eq!(g.len(), 20);
        assert!((g[0] - 0.05).abs() < 1e-12);
        assert!((g[19] - 1.0).abs() < 1e-12);
    }
}
