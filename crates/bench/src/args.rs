//! A minimal `--key value` argument parser for the experiment binaries.
//!
//! Kept dependency-free on purpose: harness binaries take a handful of
//! numeric knobs (`--domains`, `--queries`, `--seed`, ...) and nothing else.

use std::collections::BTreeMap;

/// Parsed `--key value` pairs.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
}

impl Args {
    /// Parses the process arguments (skipping `argv[0]`).
    ///
    /// # Panics
    /// Panics with a usage hint on malformed input (a `--key` without a
    /// value, or a stray positional argument).
    #[must_use]
    pub fn from_env() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable entry point).
    ///
    /// # Panics
    /// As [`from_env`](Self::from_env).
    pub fn parse_from<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut values = BTreeMap::new();
        let mut iter = iter.into_iter();
        while let Some(key) = iter.next() {
            let stripped = key
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("unexpected positional argument: {key}"));
            let value = iter
                .next()
                .unwrap_or_else(|| panic!("--{stripped} requires a value"));
            values.insert(stripped.to_owned(), value);
        }
        Self { values }
    }

    /// Integer flag with default.
    ///
    /// # Panics
    /// Panics if the value does not parse.
    #[must_use]
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer, got {v}"))
            })
            .unwrap_or(default)
    }

    /// `u64` flag with default.
    ///
    /// # Panics
    /// Panics if the value does not parse.
    #[must_use]
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer, got {v}"))
            })
            .unwrap_or(default)
    }

    /// Float flag with default.
    ///
    /// # Panics
    /// Panics if the value does not parse.
    #[must_use]
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects a number, got {v}"))
            })
            .unwrap_or(default)
    }

    /// Raw string flag.
    #[must_use]
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::parse_from(s.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_pairs() {
        let a = args(&["--domains", "1000", "--alpha", "2.5", "--name", "x"]);
        assert_eq!(a.get_usize("domains", 1), 1000);
        assert!((a.get_f64("alpha", 0.0) - 2.5).abs() < 1e-12);
        assert_eq!(a.get_str("name"), Some("x"));
    }

    #[test]
    fn defaults_apply() {
        let a = args(&[]);
        assert_eq!(a.get_usize("queries", 500), 500);
        assert_eq!(a.get_u64("seed", 42), 42);
        assert!(a.get_str("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "requires a value")]
    fn dangling_key_panics() {
        let _ = args(&["--domains"]);
    }

    #[test]
    #[should_panic(expected = "unexpected positional")]
    fn positional_rejected() {
        let _ = args(&["oops"]);
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn bad_integer_panics() {
        let a = args(&["--domains", "many"]);
        let _ = a.get_usize("domains", 1);
    }
}
