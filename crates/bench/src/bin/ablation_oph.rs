//! Ablation (ours): classic m-permutation MinHash versus One-Permutation
//! Hashing (with rotation densification) as the ensemble's sketching layer.
//!
//! OPH sketches in O(n + m) instead of O(n·m); this experiment measures
//! what that speedup costs in search accuracy at equal signature width.
//! Measured outcome: sketching time drops by more than an order of
//! magnitude per core, recall is preserved, but precision falls
//! noticeably — OPH's higher estimator variance (especially on domains
//! smaller than the bin count, where most slots are densified) admits
//! more false positives. Classic sketching remains the right default for
//! precision-sensitive search; OPH suits ingest-bound deployments.

use lshe_bench::{report, workload, Args};
use lshe_core::{DomainIndex, LshEnsemble, PartitionStrategy};
use lshe_datagen::{sample_queries, SizeBand};
use lshe_minhash::{OnePermHasher, Signature};

fn main() {
    let args = Args::from_env();
    let num_domains = args.get_usize("domains", 20_000);
    let num_queries = args.get_usize("queries", 300);
    let partitions = args.get_usize("partitions", 32);
    let seed = args.get_u64("seed", 42);

    report::banner(
        "ablation_oph",
        "classic MinHash vs One-Permutation Hashing as the sketching layer",
        &[
            ("domains", num_domains.to_string()),
            ("queries", num_queries.to_string()),
            ("partitions", partitions.to_string()),
            ("seed", seed.to_string()),
        ],
    );

    // Build the shared world with classic sketches (also provides corpus +
    // ground truth), then re-sketch with OPH and compare.
    let world = workload::build_accuracy_world(num_domains, seed);
    let queries = sample_queries(&world.catalog, num_queries, SizeBand::All, seed);
    let thresholds = [0.3, 0.5, 0.7, 0.9];

    // Classic sketching time (re-measure explicitly for the report).
    let (classic_sigs, classic_secs) =
        workload::timed(|| workload::compute_signatures(&world.catalog, &world.hasher));
    let oph = OnePermHasher::new(256);
    let (oph_sigs, oph_secs) = workload::timed(|| {
        let sigs: Vec<Signature> = world
            .catalog
            .iter()
            .map(|(_, d)| oph.signature(d.hashes().iter().copied()))
            .collect();
        sigs
    });
    println!(
        "# classic_sketching_seconds = {}",
        report::secs(classic_secs)
    );
    println!(
        "# oph_sketching_seconds = {} (single-threaded)",
        report::secs(oph_secs)
    );

    let build = |sigs: &[Signature]| -> LshEnsemble {
        workload::build_ensemble(
            &world.catalog,
            sigs,
            PartitionStrategy::EquiDepth { n: partitions },
        )
    };
    let classic = build(&classic_sigs);
    let oph_index = build(&oph_sigs);

    report::header(&["sketcher", "threshold", "precision", "recall", "f1", "f05"]);
    for (label, index, sigs) in [
        ("classic", &classic, &classic_sigs),
        ("oneperm", &oph_index, &oph_sigs),
    ] {
        let acc = workload::accuracy_sweep(
            index as &dyn DomainIndex,
            &world.exact,
            &world.catalog,
            sigs,
            &queries,
            &thresholds,
        );
        for (t, a) in thresholds.iter().zip(&acc) {
            report::row(&[
                label.to_owned(),
                report::f4(*t),
                report::f4(a.precision),
                report::f4(a.recall),
                report::f4(a.f1),
                report::f4(a.f05),
            ]);
        }
    }
}
