//! Ablation (ours, backing Table 3's `m = 256` choice): accuracy as a
//! function of the number of minwise hash functions.
//!
//! Fewer hash functions shrink signatures and speed up sketching, but both
//! the Jaccard estimator's variance (σ ≈ √(s(1−s)/m)) and the reachable
//! `(b, r)` grid degrade. The appendix's Figure 10 analysis also ties `m`
//! directly to Asym-style recall. Expect: precision and recall both
//! improve with m, with diminishing returns beyond ~256 — the paper's
//! default.

use lshe_bench::{report, workload, Args};
use lshe_core::{DomainIndex, EnsembleConfig, LshEnsemble, PartitionStrategy};
use lshe_datagen::{sample_queries, SizeBand};
use lshe_minhash::{MinHasher, Signature};

fn main() {
    let args = Args::from_env();
    let num_domains = args.get_usize("domains", 20_000);
    let num_queries = args.get_usize("queries", 300);
    let partitions = args.get_usize("partitions", 16);
    let t_star = args.get_f64("t-star", 0.5);
    let seed = args.get_u64("seed", 42);

    report::banner(
        "ablation_num_perm",
        "accuracy vs number of minwise hash functions (m)",
        &[
            ("domains", num_domains.to_string()),
            ("queries", num_queries.to_string()),
            ("partitions", partitions.to_string()),
            ("t_star", report::f4(t_star)),
            ("seed", seed.to_string()),
        ],
    );

    let world = workload::build_accuracy_world(num_domains, seed);
    let queries = sample_queries(&world.catalog, num_queries, SizeBand::All, seed);

    report::header(&[
        "m",
        "b_max",
        "r_max",
        "sketch_seconds",
        "precision",
        "recall",
        "f1",
        "f05",
    ]);
    // (m, b_max, r_max) with b_max·r_max = m, keeping r_max = 8 where
    // possible so the selectivity ceiling is comparable.
    for &(m, b_max, r_max) in &[
        (32usize, 8usize, 4usize),
        (64, 8, 8),
        (128, 16, 8),
        (256, 32, 8),
        (512, 64, 8),
    ] {
        let hasher = MinHasher::new(m);
        let (signatures, sketch_secs) = workload::timed(|| {
            let sigs: Vec<Signature> = world
                .catalog
                .iter()
                .map(|(_, d)| d.signature(&hasher))
                .collect();
            sigs
        });
        let ids: Vec<u32> = world.catalog.iter().map(|(id, _)| id).collect();
        let sizes: Vec<u64> = world.catalog.iter().map(|(_, d)| d.len() as u64).collect();
        let refs: Vec<&Signature> = signatures.iter().collect();
        let index = LshEnsemble::build_from_parts(
            EnsembleConfig {
                num_perm: m,
                b_max,
                r_max,
                strategy: PartitionStrategy::EquiDepth { n: partitions },
            },
            &ids,
            &sizes,
            &refs,
        );
        let acc = workload::accuracy_sweep(
            &index as &dyn DomainIndex,
            &world.exact,
            &world.catalog,
            &signatures,
            &queries,
            &[t_star],
        );
        report::row(&[
            m.to_string(),
            b_max.to_string(),
            r_max.to_string(),
            report::secs(sketch_secs),
            report::f4(acc[0].precision),
            report::f4(acc[0].recall),
            report::f4(acc[0].f1),
            report::f4(acc[0].f05),
        ]);
    }
}
