//! Load-path benchmark: v1 heap decode versus v2 mmap open, plus query
//! latency parity between the heap-backed and mmap-backed index — the
//! numbers behind `BENCH_load.json`.
//!
//! The corpus comes from `lshe_datagen::CorpusStream` and is sketched
//! domain-by-domain through `IndexContainer::from_stream`, so `--scale`
//! can push it far past RAM-resident sizes: peak memory is the index under
//! construction (signatures + records), never the raw value sets.
//!
//! Reported metrics:
//!
//! * `v1_decode_s` — `IndexContainer::load` on a `.lshe` file: read all
//!   bytes, decode records/ensemble/sketches, rebuild the forest on heap.
//! * `v2_open_us` — `MmapIndex::open` on the packed file: `mmap(2)` plus
//!   header/section-table validation; no section is read. This is the
//!   boot path the format exists for (≥100× gate in CI).
//! * `v2_open_verified_s` — `IndexContainer::load` on the packed file:
//!   the serving path, which adds the one-time CRC sweep of every section
//!   and the domain-record decode.
//! * `heap_query_us` / `mmap_query_us` — mean threshold-search latency on
//!   the same container, heap-decoded vs served in place (≤1.2× gate).

use lshe_bench::{report, workload, Args};
use lshe_core::MmapIndex;
use lshe_datagen::{CorpusConfig, CorpusStream};
use lshe_minhash::Signature;
use lshe_serve::IndexContainer;

/// Runs `f` repeatedly and returns the mean seconds over `repeats` runs.
fn mean_secs<T>(repeats: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut total = 0.0;
    for _ in 0..repeats {
        let (out, secs) = workload::timed(&mut f);
        std::hint::black_box(out);
        total += secs;
    }
    total / repeats as f64
}

fn main() {
    let args = Args::from_env();
    let scale = args.get_f64("scale", 1.0);
    let domains = (args.get_usize("domains", 20_000) as f64 * scale).round() as usize;
    let partitions = args.get_usize("partitions", 16);
    let num_queries = args.get_usize("queries", 50);
    let repeats = args.get_usize("repeats", 5);
    let seed = args.get_u64("seed", 42);
    let t_star = args.get_f64("t-star", 0.7);
    let dir = args
        .get_str("dir")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);

    report::banner(
        "load_path",
        "v1 heap decode vs v2 mmap open; heap vs mmap query latency",
        &[
            ("domains", domains.to_string()),
            ("scale", report::f2(scale)),
            ("partitions", partitions.to_string()),
            ("queries", num_queries.to_string()),
            ("repeats", repeats.to_string()),
            ("t_star", report::f4(t_star)),
            ("seed", seed.to_string()),
        ],
    );

    // Stream-sketch the corpus into a ranked container; the raw value
    // sets are dropped as they are consumed.
    let mut config = CorpusConfig::wdc_web_tables_like(domains);
    config.seed = seed;
    let (container, build_secs) = workload::timed(|| {
        IndexContainer::from_stream(CorpusStream::new(config.clone()), partitions, true)
    });
    println!("# stream_build_seconds = {}", report::secs(build_secs));

    let v1_path = dir.join(format!("load_path_{seed}_{domains}.lshe"));
    let v2_path = dir.join(format!("load_path_{seed}_{domains}.lshepk"));
    let v1_bytes = container.to_bytes();
    std::fs::write(&v1_path, &v1_bytes).expect("write v1");
    container.pack_v2(&v2_path).expect("pack v2");
    let v2_bytes = std::fs::metadata(&v2_path).expect("stat v2").len();
    println!("# v1_bytes = {}", v1_bytes.len());
    println!("# v2_bytes = {v2_bytes}");

    // Query workload: sketches of sampled indexed domains, sizes attached.
    let step = (container.len() / num_queries.max(1)).max(1);
    let queries: Vec<(u64, Signature)> = (0..container.len() as u32)
        .step_by(step)
        .take(num_queries)
        .map(|id| {
            let (size, sig) = container.sketch(id).expect("ranked container");
            (size, sig.clone())
        })
        .collect();

    // Load-path timings.
    let v1_decode_s = mean_secs(repeats, || IndexContainer::load(&v1_path).expect("v1 load"));
    // The raw open is microseconds; average over a larger batch so the
    // clock resolution does not dominate.
    let open_iters = repeats * 100;
    let v2_open_s = mean_secs(open_iters, || MmapIndex::open(&v2_path).expect("v2 open"));
    let v2_verified_s = mean_secs(repeats, || IndexContainer::load(&v2_path).expect("v2 load"));

    // Query latency parity, same container through both load paths.
    let heap = IndexContainer::load(&v1_path).expect("v1 load");
    let mapped = IndexContainer::load(&v2_path).expect("v2 load");
    let run = |c: &IndexContainer| {
        let mut hits = 0usize;
        for (size, sig) in &queries {
            hits += c.search(sig, *size, t_star).len();
        }
        hits
    };
    // Warm both paths (page in the mapped sections) before timing.
    let heap_hits = run(&heap);
    let mapped_hits = run(&mapped);
    assert_eq!(heap_hits, mapped_hits, "heap and mmap disagree");
    let heap_query_s = mean_secs(repeats, || run(&heap)) / queries.len() as f64;
    let mmap_query_s = mean_secs(repeats, || run(&mapped)) / queries.len() as f64;

    report::header(&["metric", "value"]);
    let us = |s: f64| format!("{:.1}", s * 1e6);
    report::row(&["v1_decode_s".into(), report::secs(v1_decode_s)]);
    report::row(&["v2_open_us".into(), us(v2_open_s)]);
    report::row(&["v2_open_verified_s".into(), report::secs(v2_verified_s)]);
    report::row(&[
        "open_speedup_v1_over_v2".into(),
        report::f2(v1_decode_s / v2_open_s),
    ]);
    report::row(&["heap_query_us".into(), us(heap_query_s)]);
    report::row(&["mmap_query_us".into(), us(mmap_query_s)]);
    report::row(&[
        "query_ratio_mmap_over_heap".into(),
        report::f2(mmap_query_s / heap_query_s),
    ]);
    report::row(&["hits_checksum".into(), heap_hits.to_string()]);

    let _ = std::fs::remove_file(&v1_path);
    let _ = std::fs::remove_file(&v2_path);
}
