//! Figure 4: precision / recall / F1 / F0.5 versus containment threshold on
//! the Canadian-Open-Data-like corpus, for the MinHash LSH baseline,
//! Asymmetric Minwise Hashing, and LSH Ensemble with 8 / 16 / 32 equi-depth
//! partitions.
//!
//! Paper shape to reproduce (§6.1): partitioning lifts precision
//! monotonically with the partition count while recall dips only slightly;
//! Asym matches the ensemble's precision but collapses in recall, with most
//! of its results empty at high thresholds.

use lshe_bench::{report, workload, Args};
use lshe_core::{DomainIndex, PartitionStrategy};
use lshe_datagen::{sample_queries, SizeBand};

fn main() {
    let args = Args::from_env();
    let num_domains = args.get_usize("domains", 65_533);
    let num_queries = args.get_usize("queries", 500);
    let seed = args.get_u64("seed", 42);

    report::banner(
        "fig4",
        "accuracy vs containment threshold (Baseline, Asym, Ensemble 8/16/32)",
        &[
            ("domains", num_domains.to_string()),
            ("queries", num_queries.to_string()),
            ("num_perm", "256".to_owned()),
            ("seed", seed.to_string()),
        ],
    );

    let world = workload::build_accuracy_world(num_domains, seed);
    let queries = sample_queries(&world.catalog, num_queries, SizeBand::All, seed);
    let thresholds = workload::paper_threshold_grid();

    let baseline =
        workload::build_ensemble(&world.catalog, &world.signatures, PartitionStrategy::Single);
    let asym = workload::build_asym(&world.catalog, &world.signatures);
    let ensembles: Vec<_> = [8usize, 16, 32]
        .iter()
        .map(|&n| {
            workload::build_ensemble(
                &world.catalog,
                &world.signatures,
                PartitionStrategy::EquiDepth { n },
            )
        })
        .collect();

    let mut indexes: Vec<&dyn DomainIndex> = vec![&baseline, &asym];
    for e in &ensembles {
        indexes.push(e);
    }

    report::header(&[
        "index",
        "threshold",
        "precision",
        "recall",
        "f1",
        "f05",
        "empty_answers",
    ]);
    for index in indexes {
        let acc = workload::accuracy_sweep(
            index,
            &world.exact,
            &world.catalog,
            &world.signatures,
            &queries,
            &thresholds,
        );
        for (t, a) in thresholds.iter().zip(&acc) {
            report::row(&[
                index.describe(),
                report::f4(*t),
                report::f4(a.precision),
                report::f4(a.recall),
                report::f4(a.f1),
                report::f4(a.f05),
                a.empty_answers.to_string(),
            ]);
        }
    }
}
