//! Ablation (§6.1 closing remark): Asymmetric Minwise Hashing *inside each
//! partition* versus plain Asym and the LSH Ensemble.
//!
//! The paper: "While there is a slight improvement in precision, we failed
//! to observe any significant improvements in recall" — because power-law
//! partitions still contain large size spreads, so padding stays heavy.
//! Expect: Asym+partitioning recall between Asym's and the ensemble's, far
//! below the ensemble at high thresholds.

use lshe_bench::{report, workload, Args};
use lshe_core::{DomainIndex, PartitionStrategy};
use lshe_datagen::{sample_queries, SizeBand};

fn main() {
    let args = Args::from_env();
    let num_domains = args.get_usize("domains", 65_533);
    let num_queries = args.get_usize("queries", 300);
    let partitions = args.get_usize("partitions", 32);
    let seed = args.get_u64("seed", 42);

    report::banner(
        "ablation_asym_partitioned",
        "Asym vs Asym-in-partitions vs LSH Ensemble",
        &[
            ("domains", num_domains.to_string()),
            ("queries", num_queries.to_string()),
            ("partitions", partitions.to_string()),
            ("seed", seed.to_string()),
        ],
    );

    let world = workload::build_accuracy_world(num_domains, seed);
    let queries = sample_queries(&world.catalog, num_queries, SizeBand::All, seed);
    let thresholds = workload::paper_threshold_grid();

    let asym = workload::build_asym(&world.catalog, &world.signatures);
    let asym_part = workload::build_asym_partitioned(&world.catalog, &world.signatures, partitions);
    let ensemble = workload::build_ensemble(
        &world.catalog,
        &world.signatures,
        PartitionStrategy::EquiDepth { n: partitions },
    );
    let indexes: Vec<&dyn DomainIndex> = vec![&asym, &asym_part, &ensemble];

    report::header(&[
        "index",
        "threshold",
        "precision",
        "recall",
        "f1",
        "f05",
        "empty_answers",
    ]);
    for index in indexes {
        let acc = workload::accuracy_sweep(
            index,
            &world.exact,
            &world.catalog,
            &world.signatures,
            &queries,
            &thresholds,
        );
        for (t, a) in thresholds.iter().zip(&acc) {
            report::row(&[
                index.describe(),
                report::f4(*t),
                report::f4(a.precision),
                report::f4(a.recall),
                report::f4(a.f1),
                report::f4(a.f05),
                a.empty_answers.to_string(),
            ]);
        }
    }
}
