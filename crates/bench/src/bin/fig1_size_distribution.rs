//! Figure 1: domain-size distributions of the two corpora, as log2-bucketed
//! histograms (left: Canadian-Open-Data-like; right: WDC-Web-Tables-like).
//!
//! The paper plots `Number of Domains` against `Domain Size` on log-log
//! axes; a straight descending line indicates a power law. This binary
//! prints both histograms from the calibrated generators so the slope can
//! be compared with the paper's panels.

use lshe_bench::{report, Args};
use lshe_datagen::{log2_histogram, PowerLawSizes};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let cod_n = args.get_usize("cod-domains", 65_533);
    let wdc_n = args.get_usize("wdc-domains", 1_000_000);
    let seed = args.get_u64("seed", 42);

    report::banner(
        "fig1",
        "domain size distribution (log2 histogram), Canadian-OD-like and WDC-like",
        &[
            ("cod_domains", cod_n.to_string()),
            ("wdc_domains", wdc_n.to_string()),
            ("cod_size_range", "[10, 2^21], alpha = 2.0".to_owned()),
            ("wdc_size_range", "[1, 2^14], alpha = 2.0".to_owned()),
            ("seed", seed.to_string()),
        ],
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let cod = PowerLawSizes::new(10, 1 << 21, 2.0).sample_many(&mut rng, cod_n);
    let wdc = PowerLawSizes::new(1, 1 << 14, 2.0).sample_many(&mut rng, wdc_n);

    report::header(&["corpus", "log2_size_bucket", "num_domains"]);
    for (bucket, count) in log2_histogram(&cod) {
        if count > 0 {
            report::row(&["canadian-od".into(), bucket.to_string(), count.to_string()]);
        }
    }
    for (bucket, count) in log2_histogram(&wdc) {
        if count > 0 {
            report::row(&["wdc".into(), bucket.to_string(), count.to_string()]);
        }
    }
}
