//! Figure 5: accuracy versus domain-size skewness.
//!
//! The paper builds 20 nested subsets of the corpus — starting from a
//! narrow size interval and widening it — so skewness (Eq. 29) grows along
//! the ladder, then measures each index on each subset. Shape to reproduce:
//! precision falls with skew for every index (slowest for the ensembles,
//! fastest for the baseline); recall stays high except Asym's, which
//! collapses as padding explodes.

use lshe_bench::{report, workload, Args};
use lshe_core::{DomainIndex, PartitionStrategy};
use lshe_datagen::{nested_size_subsets, sample_queries, skewness, SizeBand};

fn main() {
    let args = Args::from_env();
    let num_domains = args.get_usize("domains", 65_533);
    let num_queries = args.get_usize("queries", 300);
    let steps = args.get_usize("steps", 20);
    let t_star = args.get_f64("t-star", 0.5);
    let seed = args.get_u64("seed", 42);

    report::banner(
        "fig5",
        "accuracy vs size skewness over nested subsets",
        &[
            ("domains", num_domains.to_string()),
            ("queries_per_subset", num_queries.to_string()),
            ("subset_steps", steps.to_string()),
            ("t_star", report::f4(t_star)),
            ("seed", seed.to_string()),
        ],
    );

    let world = workload::build_accuracy_world(num_domains, seed);
    let sizes = world.catalog.sizes();
    let subsets = nested_size_subsets(&sizes, steps);

    report::header(&[
        "subset",
        "subset_domains",
        "skewness",
        "index",
        "precision",
        "recall",
        "f1",
        "f05",
    ]);
    for (step, ids) in subsets.iter().enumerate() {
        if ids.len() < 50 {
            continue; // too small to measure meaningfully
        }
        let sub = workload::subset_world(&world, ids);
        let sub_sizes = sub.catalog.sizes();
        let skew = skewness(&sub_sizes);
        let queries = sample_queries(&sub.catalog, num_queries, SizeBand::All, seed + step as u64);

        let baseline =
            workload::build_ensemble(&sub.catalog, &sub.signatures, PartitionStrategy::Single);
        let asym = workload::build_asym(&sub.catalog, &sub.signatures);
        let ensembles: Vec<_> = [8usize, 16, 32]
            .iter()
            .map(|&n| {
                workload::build_ensemble(
                    &sub.catalog,
                    &sub.signatures,
                    PartitionStrategy::EquiDepth { n },
                )
            })
            .collect();
        let mut indexes: Vec<&dyn DomainIndex> = vec![&baseline, &asym];
        for e in &ensembles {
            indexes.push(e);
        }

        for index in indexes {
            let acc = workload::accuracy_sweep(
                index,
                &sub.exact,
                &sub.catalog,
                &sub.signatures,
                &queries,
                &[t_star],
            );
            report::row(&[
                step.to_string(),
                ids.len().to_string(),
                report::f2(skew),
                index.describe(),
                report::f4(acc[0].precision),
                report::f4(acc[0].recall),
                report::f4(acc[0].f1),
                report::f4(acc[0].f05),
            ]);
        }
    }
}
