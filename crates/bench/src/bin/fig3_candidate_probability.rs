//! Figure 3: `P(t | x, q, b, r)` — the probability of a domain becoming a
//! candidate as a function of its containment, at the paper's parameters
//! (`x = 10, q = 5, b = 256, r = 4, t* = 0.5`), together with the FP and FN
//! probability masses those areas represent (Eq. 22–24).

use lshe_bench::{report, Args};
use lshe_core::tuning::{
    candidate_probability_containment, false_negative_area, false_positive_area,
};

fn main() {
    let args = Args::from_env();
    let x = args.get_u64("x", 10);
    let q = args.get_u64("q", 5);
    let b = args.get_usize("b", 256) as u32;
    let r = args.get_usize("r", 4) as u32;
    let t_star = args.get_f64("t-star", 0.5);
    let steps = args.get_usize("steps", 50);
    let ratio = x as f64 / q as f64;

    report::banner(
        "fig3",
        "candidate probability vs containment, with FP/FN masses",
        &[
            ("x", x.to_string()),
            ("q", q.to_string()),
            ("b", b.to_string()),
            ("r", r.to_string()),
            ("t_star", report::f4(t_star)),
            (
                "FP_area",
                report::f4(false_positive_area(ratio, t_star, b, r)),
            ),
            (
                "FN_area",
                report::f4(false_negative_area(ratio, t_star, b, r)),
            ),
        ],
    );

    report::header(&["t", "P_candidate"]);
    for i in 0..=steps {
        let t = i as f64 / steps as f64;
        report::row(&[
            report::f4(t),
            report::f4(candidate_probability_containment(t, ratio, b, r)),
        ]);
    }
}
