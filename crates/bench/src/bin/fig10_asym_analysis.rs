//! Figure 10 (appendix): why Asymmetric Minwise Hashing loses recall under
//! skew. Left panel: the probability that a *perfectly contained* domain
//! (`t = 1`) is selected, as the padding target `M` grows (Eq. 32, with the
//! recall-friendliest tuning `b = 256, r = 1`). Right panel: the minimum
//! number of hash functions `m*` needed to keep that probability ≥ 0.5 —
//! linear in `M`.

use lshe_asym::analysis::{min_hash_functions_for_recall, selection_probability_full_containment};
use lshe_bench::{report, Args};

fn main() {
    let args = Args::from_env();
    let q = args.get_u64("q", 1);
    let b = args.get_usize("b", 256) as u32;
    let max_m = args.get_u64("max-m", 8_000);
    let step = args.get_u64("step", 250);
    let p_target = args.get_f64("p-target", 0.5);

    report::banner(
        "fig10",
        "Asym selection probability at t = 1 vs padding target M; minimum m* for recall",
        &[
            ("q", q.to_string()),
            ("b", b.to_string()),
            ("r", "1".to_owned()),
            ("p_target", report::f4(p_target)),
        ],
    );

    report::header(&["M", "P_selected_t1", "m_star"]);
    let mut m = q.max(1);
    while m <= max_m {
        let p = selection_probability_full_containment(m, q, b, 1);
        let m_star = min_hash_functions_for_recall(m, q, p_target);
        report::row(&[m.to_string(), report::f4(p), m_star.to_string()]);
        m = if m == q.max(1) { step } else { m + step };
    }
}
