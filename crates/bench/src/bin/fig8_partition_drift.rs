//! Figure 8: robustness to distribution drift — accuracy versus the
//! standard deviation of partition sizes as the partitioning morphs from
//! equi-depth (λ = 0) toward equi-width (λ = 1).
//!
//! The paper simulates a drifted corpus by degrading the partitioning
//! itself (§6.2): as long as partition member counts stay within a couple
//! of multiples of the equi-depth count, accuracy barely moves — the index
//! rarely needs a rebuild. Shape to reproduce: flat precision/recall until
//! the std-dev grows several times past the equi-depth partition size, then
//! a drop in precision.

use lshe_bench::{report, workload, Args};
use lshe_core::PartitionStrategy;
use lshe_datagen::{sample_queries, SizeBand};

fn main() {
    let args = Args::from_env();
    let num_domains = args.get_usize("domains", 65_533);
    let num_queries = args.get_usize("queries", 300);
    let n_partitions = args.get_usize("partitions", 32);
    let t_star = args.get_f64("t-star", 0.5);
    let steps = args.get_usize("steps", 9);
    let seed = args.get_u64("seed", 42);

    report::banner(
        "fig8",
        "accuracy vs std-dev of partition sizes (equi-depth → equi-width morph)",
        &[
            ("domains", num_domains.to_string()),
            ("queries", num_queries.to_string()),
            ("partitions", n_partitions.to_string()),
            ("t_star", report::f4(t_star)),
            ("seed", seed.to_string()),
        ],
    );

    let world = workload::build_accuracy_world(num_domains, seed);
    let queries = sample_queries(&world.catalog, num_queries, SizeBand::All, seed);

    report::header(&[
        "lambda",
        "partition_size_std_dev",
        "precision",
        "recall",
        "f1",
        "f05",
    ]);
    for k in 0..steps {
        let lambda = k as f64 / (steps - 1).max(1) as f64;
        let strategy = PartitionStrategy::Morph {
            n: n_partitions,
            lambda,
        };
        let sizes: Vec<u64> = world.catalog.sizes().iter().map(|&s| s as u64).collect();
        let partitioning = strategy.partition(&sizes);
        let std_dev = partitioning.member_count_std_dev();
        let ens = workload::build_ensemble(&world.catalog, &world.signatures, strategy);
        let acc = workload::accuracy_sweep(
            &ens,
            &world.exact,
            &world.catalog,
            &world.signatures,
            &queries,
            &[t_star],
        );
        report::row(&[
            report::f2(lambda),
            report::f2(std_dev),
            report::f4(acc[0].precision),
            report::f4(acc[0].recall),
            report::f4(acc[0].f1),
            report::f4(acc[0].f05),
        ]);
    }
}
