//! Mutation-path benchmark: segmented commit (seal, O(staged delta))
//! versus the stop-the-world rebuild (compact, O(corpus)) across a 10×
//! corpus sweep — the numbers behind `BENCH_mutation.json`.
//!
//! Each sweep point streams a WDC-like corpus into a ranked
//! `IndexContainer`, stages one delta batch (inserts plus removals of
//! earlier live inserts), and times the two paths that can absorb it:
//!
//! * `commit_seal` — `IndexContainer::commit_mutations`: the staged delta
//!   becomes an immutable sealed segment; the base partitioning is not
//!   touched. This is what `POST /commit` pays since the tiered rework.
//! * `compact_rebuild` — `IndexContainer::compact_index`: segments and
//!   tombstones fold into the base, which is rebuilt from the retained
//!   sketches. This is exactly what every commit used to pay, now run off
//!   the commit path (background merger, `lshe compact`).
//!
//! The CI gates derive from the sweep: seal latency must stay flat (≤2×
//! from the smallest to the 10× corpus — it only depends on the delta),
//! while the rebuild must grow with the corpus (≥4× across the sweep,
//! i.e. visibly linear), proving the O(corpus) work really left the
//! commit path. The sweep continues to a 20× point so the flatness claim
//! is also observed past the gated range.
//!
//! A second section replays an identical churn of sealed deltas through
//! each [`MergePolicyKind`] and accumulates the entries rewritten by the
//! merges each policy schedules — the write-amplification numbers behind
//! the leveled-vs-tiered CI gate: leveled folds O(delta · log corpus)
//! per commit, while tiered periodically rewrites the whole corpus.

use lshe_bench::{report, workload, Args};
use lshe_core::{CompactionThresholds, MaintenancePlanner, MergePolicyKind};
use lshe_datagen::{CorpusConfig, CorpusStream};
use lshe_minhash::MinHasher;
use lshe_serve::container::{DeltaOp, DomainRecord, IndexContainer};

/// One staged delta batch: `batch` inserts of fresh synthetic domains and
/// `batch / 4` removals of live ids from the previous round, so sealing
/// covers both tombstone creation and segment build.
fn staged_batch(
    hasher: &MinHasher,
    first_id: u32,
    batch: usize,
    previous: &[u32],
) -> (Vec<DeltaOp>, Vec<u32>) {
    let mut ops = Vec::with_capacity(batch + batch / 4);
    let mut live = Vec::with_capacity(batch);
    for k in 0..batch {
        let id = first_id + k as u32;
        let values = (0..40u64).map(|j| (u64::from(id) << 20) | j);
        ops.push(DeltaOp::Insert {
            record: DomainRecord {
                id,
                size: 40,
                table: "live".to_owned(),
                column: "col".to_owned(),
            },
            signature: hasher.signature(values),
        });
        live.push(id);
    }
    for id in previous.iter().take(batch / 4) {
        ops.push(DeltaOp::Remove { id: *id });
    }
    (ops, live)
}

/// Replays `commits` rounds of staged-delta churn against a fresh
/// `domains`-sized corpus, draining `kind`'s merge plans after every
/// commit exactly like the maintenance thread does (re-plan after each
/// executed round until quiescent). Returns the total entries rewritten
/// by those merges and the merge count — the policy's write
/// amplification for an identical ingest.
fn churn_fold_entries(
    kind: MergePolicyKind,
    domains: usize,
    partitions: usize,
    seed: u64,
    batch: usize,
    commits: usize,
) -> (usize, usize) {
    let mut config = CorpusConfig::wdc_web_tables_like(domains);
    config.seed = seed;
    let mut container = IndexContainer::from_stream(CorpusStream::new(config), partitions, true);
    let hasher = MinHasher::new(container.num_perm());
    let planner = MaintenancePlanner::for_kind(kind, CompactionThresholds::default());

    let mut folded = 0usize;
    let mut merges = 0usize;
    let mut previous: Vec<u32> = Vec::new();
    for _ in 0..commits {
        let (ops, live) = staged_batch(&hasher, container.next_id(), batch, &previous);
        container.apply(&ops).expect("stage delta");
        let report = container.commit_mutations();
        assert!(report.sealed, "commit must seal a non-empty delta");
        previous = live;

        let mut rounds = 0;
        loop {
            let tasks = planner.plan(&container.segment_layout());
            if tasks.is_empty() {
                break;
            }
            rounds += 1;
            assert!(rounds < 64, "merge plans must converge");
            for task in &tasks {
                let outcome = container.apply_merge(task);
                folded += outcome.entries_folded;
                merges += 1;
            }
        }
        let layout = container.segment_layout();
        assert!(
            layout.segments.len() <= planner.segment_bound(layout.len + layout.tombstones),
            "drained layout must respect the policy's segment bound"
        );
    }
    (folded, merges)
}

fn main() {
    let args = Args::from_env();
    let scale = args.get_f64("scale", 1.0);
    let base = (args.get_usize("domains", 2_000) as f64 * scale).round() as usize;
    let batch = args.get_usize("batch", 64);
    let repeats = args.get_usize("repeats", 5);
    let partitions = args.get_usize("partitions", 16);
    let seed = args.get_u64("seed", 42);

    report::banner(
        "mutation_path",
        "segmented commit (seal) vs stop-the-world rebuild across a 10x corpus sweep",
        &[
            ("base_domains", base.to_string()),
            ("scale", report::f2(scale)),
            ("batch", batch.to_string()),
            ("repeats", repeats.to_string()),
            ("partitions", partitions.to_string()),
            ("seed", seed.to_string()),
        ],
    );

    report::header(&["domains", "commit_seal_us", "compact_rebuild_us"]);
    let mut seal_us = Vec::new();
    let mut rebuild_us = Vec::new();
    for mult in [1.0f64, 2.0, 4.0, 10.0, 20.0] {
        let domains = (base as f64 * mult).round() as usize;
        let mut config = CorpusConfig::wdc_web_tables_like(domains);
        config.seed = seed;
        let mut container =
            IndexContainer::from_stream(CorpusStream::new(config), partitions, true);
        let hasher = MinHasher::new(container.num_perm());

        // Seal phase: each repeat stages a fresh delta and times ONLY the
        // commit — cost must track the delta, never the corpus.
        let mut previous: Vec<u32> = Vec::new();
        let mut seal_total = 0.0;
        for _ in 0..repeats {
            let (ops, live) = staged_batch(&hasher, container.next_id(), batch, &previous);
            container.apply(&ops).expect("stage delta");
            let (report, secs) = workload::timed(|| container.commit_mutations());
            assert!(report.sealed, "commit must seal a non-empty delta");
            seal_total += secs;
            previous = live;
        }
        let seal = seal_total / repeats as f64;

        // Rebuild phase: stage another delta, then time the fold — the
        // old commit path, expected to scale with the corpus.
        let mut rebuild_total = 0.0;
        for _ in 0..repeats {
            let (ops, live) = staged_batch(&hasher, container.next_id(), batch, &previous);
            container.apply(&ops).expect("stage delta");
            let (_, secs) = workload::timed(|| container.compact_index());
            let stats = container.segment_stats();
            assert_eq!(
                (stats.segments, stats.tombstones),
                (0, 0),
                "compaction must drain segments and tombstones"
            );
            rebuild_total += secs;
            previous = live;
        }
        let rebuild = rebuild_total / repeats as f64;

        let us = |s: f64| format!("{:.1}", s * 1e6);
        report::row(&[domains.to_string(), us(seal), us(rebuild)]);
        seal_us.push(seal * 1e6);
        rebuild_us.push(rebuild * 1e6);
    }

    // The gated ratios stay anchored at the 10× point (index 3); the 20×
    // point extends the sweep past the gated range and gets its own
    // ungated ratios.
    let seal_flatness = seal_us[3] / seal_us[0];
    let rebuild_growth = rebuild_us[3] / rebuild_us[0];
    let rebuild_over_seal = rebuild_us[3] / seal_us[3];
    println!("# seal_flatness_10x = {}", report::f2(seal_flatness));
    println!("# rebuild_growth_10x = {}", report::f2(rebuild_growth));
    println!(
        "# rebuild_over_seal_at_10x = {}",
        report::f2(rebuild_over_seal)
    );
    println!(
        "# seal_flatness_20x = {}",
        report::f2(seal_us.last().expect("sweep") / seal_us[0])
    );
    println!(
        "# rebuild_growth_20x = {}",
        report::f2(rebuild_us.last().expect("sweep") / rebuild_us[0])
    );

    // Write-amplification: identical churn, one policy at a time, at the
    // 10× (20k-domain) sweep point. The CI gate requires leveled to fold
    // strictly fewer entries than tiered here.
    let churn_commits = args.get_usize("churn_commits", 48);
    let churn_domains = (base as f64 * 10.0).round() as usize;
    println!();
    report::header(&["policy", "merges", "entries_folded"]);
    let mut per_policy = Vec::new();
    for kind in [MergePolicyKind::Leveled, MergePolicyKind::Tiered] {
        let (folded, merges) =
            churn_fold_entries(kind, churn_domains, partitions, seed, batch, churn_commits);
        report::row(&[kind.to_string(), merges.to_string(), folded.to_string()]);
        per_policy.push((kind, folded));
    }
    let (_, leveled_folded) = per_policy[0];
    let (_, tiered_folded) = per_policy[1];
    println!("# leveled_fold_entries_20k = {leveled_folded}");
    println!("# tiered_fold_entries_20k = {tiered_folded}");
    println!(
        "# tiered_over_leveled_fold_20k = {}",
        report::f2(tiered_folded as f64 / leveled_folded.max(1) as f64)
    );
}
