//! Ablation (ours, backing §5.1's `approx(|Q|)`): querying with the exact
//! query cardinality versus the MinHash-estimated one.
//!
//! Algorithm 1 estimates `|Q|` from the query's own signature in constant
//! time, so clients never ship raw values. The estimate carries ~1/√m
//! relative error, which perturbs both the threshold conversion and the
//! `(b, r)` tuning. Expect: accuracy differences within estimation noise —
//! validating that the paper's constant-time estimation loses nothing.

use lshe_bench::{report, workload, Args};
use lshe_core::PartitionStrategy;
use lshe_datagen::{aggregate, query_accuracy, sample_queries, QueryAccuracy, SizeBand};

fn main() {
    let args = Args::from_env();
    let num_domains = args.get_usize("domains", 20_000);
    let num_queries = args.get_usize("queries", 300);
    let partitions = args.get_usize("partitions", 16);
    let seed = args.get_u64("seed", 42);

    report::banner(
        "ablation_query_size_estimation",
        "exact |Q| vs approx(|Q|) from the query signature (§5.1)",
        &[
            ("domains", num_domains.to_string()),
            ("queries", num_queries.to_string()),
            ("partitions", partitions.to_string()),
            ("seed", seed.to_string()),
        ],
    );

    let world = workload::build_accuracy_world(num_domains, seed);
    let queries = sample_queries(&world.catalog, num_queries, SizeBand::All, seed);
    let index = workload::build_ensemble(
        &world.catalog,
        &world.signatures,
        PartitionStrategy::EquiDepth { n: partitions },
    );

    report::header(&[
        "size_source",
        "threshold",
        "precision",
        "recall",
        "f1",
        "mean_rel_size_error",
    ]);
    for t_star in [0.3f64, 0.5, 0.7, 0.9] {
        for exact_size in [true, false] {
            let mut per_query: Vec<QueryAccuracy> = Vec::with_capacity(queries.len());
            let mut rel_err_sum = 0.0f64;
            for &q in &queries {
                let domain = world.catalog.domain(q);
                let truth = world.exact.search(domain, t_star);
                let sig = &world.signatures[q as usize];
                let answer = if exact_size {
                    index.query_with_size(sig, domain.len() as u64, t_star)
                } else {
                    let est = sig.cardinality();
                    rel_err_sum += (est - domain.len() as f64).abs() / domain.len() as f64;
                    index.query(sig, t_star)
                };
                per_query.push(query_accuracy(&answer, &truth));
            }
            let acc = aggregate(&per_query);
            report::row(&[
                if exact_size { "exact" } else { "approx" }.to_owned(),
                report::f4(t_star),
                report::f4(acc.precision),
                report::f4(acc.recall),
                report::f4(acc.f1),
                if exact_size {
                    "-".to_owned()
                } else {
                    report::f4(rel_err_sum / queries.len() as f64)
                },
            ]);
        }
    }
}
