//! Figure 9: indexing cost and mean query cost versus the number of
//! domains, for LSH Ensemble with 8 / 16 / 32 partitions.
//!
//! The paper sweeps 52M → 262M domains on a 5-node cluster; this harness
//! sweeps five equal steps up to `--domains` (default 200,000) on an
//! in-process 5-shard deployment. Shapes to reproduce: indexing time is
//! linear in the number of domains and independent of the partition count;
//! query time grows with corpus size (more candidates) but grows *slower*
//! with more partitions (better selectivity).

use lshe_bench::{report, workload, Args};
use lshe_core::{DomainIndex, EnsembleConfig, PartitionStrategy, Query, ShardedEnsemble};
use lshe_lsh::DomainId;
use lshe_minhash::{MinHasher, Signature};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let max_domains = args.get_usize("domains", 200_000);
    let num_queries = args.get_usize("queries", 100);
    let num_shards = args.get_usize("shards", 5);
    let t_star = args.get_f64("t-star", 0.5);
    let seed = args.get_u64("seed", 42);

    report::banner(
        "fig9",
        "indexing and mean query cost vs corpus size (Ensemble 8/16/32, sharded)",
        &[
            ("max_domains", max_domains.to_string()),
            ("queries", num_queries.to_string()),
            ("shards", num_shards.to_string()),
            ("t_star", report::f4(t_star)),
            ("seed", seed.to_string()),
        ],
    );

    let hasher = MinHasher::new(256);
    let (corpus, sketch_secs) =
        workload::timed(|| workload::build_perf_corpus(max_domains, seed, &hasher));
    println!(
        "# sketching_seconds_full_corpus = {}",
        report::secs(sketch_secs)
    );

    report::header(&[
        "domains",
        "partitions",
        "indexing_seconds",
        "mean_query_seconds",
    ]);
    for step in 1..=5usize {
        let n = max_domains * step / 5;
        let ids: Vec<DomainId> = (0..n as DomainId).collect();
        let sizes = &corpus.sizes[..n];
        let sig_refs: Vec<&Signature> = corpus.signatures[..n].iter().collect();
        // Queries: sampled ids from this prefix.
        let mut rng = StdRng::seed_from_u64(seed + step as u64);
        let mut pool: Vec<usize> = (0..n).collect();
        pool.shuffle(&mut rng);
        let queries: Vec<usize> = pool.into_iter().take(num_queries).collect();

        for partitions in [8usize, 16, 32] {
            let config = EnsembleConfig {
                strategy: PartitionStrategy::EquiDepth { n: partitions },
                ..EnsembleConfig::default()
            };
            let (index, build_secs) = workload::timed(|| {
                ShardedEnsemble::build_from_parts(num_shards, config, &ids, sizes, &sig_refs)
            });
            let (total, query_secs) = workload::timed(|| {
                let mut found = 0usize;
                for &q in &queries {
                    let query =
                        Query::threshold(&corpus.signatures[q], t_star).with_size(corpus.sizes[q]);
                    found += index
                        .search(&query)
                        .expect("valid threshold query")
                        .hits
                        .len();
                }
                found
            });
            std::hint::black_box(total);
            report::row(&[
                n.to_string(),
                partitions.to_string(),
                report::secs(build_secs),
                report::secs(query_secs / queries.len().max(1) as f64),
            ]);
        }
    }
}
