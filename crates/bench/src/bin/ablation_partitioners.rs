//! Ablation (ours, backed by §5.4's theory): equi-depth versus the
//! cost-model-optimal equi-FP partitioner versus equi-width, at the same
//! partition count.
//!
//! Theorem 2 says equi-depth ≈ equi-FP on power-law corpora; this harness
//! checks that claim empirically (accuracy and the Eq. 16 max-M cost should
//! nearly coincide) and shows equi-width as the degenerate extreme.

use lshe_bench::{report, workload, Args};
use lshe_core::{DomainIndex, PartitionStrategy, Partitioning};
use lshe_datagen::{sample_queries, SizeBand};

fn main() {
    let args = Args::from_env();
    let num_domains = args.get_usize("domains", 65_533);
    let num_queries = args.get_usize("queries", 300);
    let partitions = args.get_usize("partitions", 32);
    let t_star = args.get_f64("t-star", 0.5);
    let seed = args.get_u64("seed", 42);

    report::banner(
        "ablation_partitioners",
        "equi-depth vs equi-FP (cost model) vs equi-width",
        &[
            ("domains", num_domains.to_string()),
            ("queries", num_queries.to_string()),
            ("partitions", partitions.to_string()),
            ("t_star", report::f4(t_star)),
            ("seed", seed.to_string()),
        ],
    );

    let world = workload::build_accuracy_world(num_domains, seed);
    let queries = sample_queries(&world.catalog, num_queries, SizeBand::All, seed);
    let sizes: Vec<u64> = world.catalog.sizes().iter().map(|&s| s as u64).collect();

    let strategies = [
        PartitionStrategy::EquiDepth { n: partitions },
        PartitionStrategy::EquiFp { n: partitions },
        PartitionStrategy::EquiWidth { n: partitions },
    ];

    report::header(&[
        "strategy",
        "partitions_built",
        "max_fp_bound",
        "size_std_dev",
        "precision",
        "recall",
        "f1",
        "f05",
    ]);
    for strategy in strategies {
        let partitioning: Partitioning = strategy.partition(&sizes);
        let ens = workload::build_ensemble(&world.catalog, &world.signatures, strategy);
        let acc = workload::accuracy_sweep(
            &ens,
            &world.exact,
            &world.catalog,
            &world.signatures,
            &queries,
            &[t_star],
        );
        report::row(&[
            ens.describe(),
            partitioning.len().to_string(),
            report::f2(partitioning.max_fp_bound()),
            report::f2(partitioning.member_count_std_dev()),
            report::f4(acc[0].precision),
            report::f4(acc[0].recall),
            report::f4(acc[0].f1),
            report::f4(acc[0].f05),
        ]);
    }
}
