//! Figure 2: the geometry of the containment → Jaccard threshold
//! conversion — the curves `ŝ_{x,q}(t)` and `ŝ_{u,q}(t)` with the paper's
//! parameters `u = 3, x = 1, q = 1`, plus the derived quantities `s*`
//! (conservative Jaccard threshold) and `t_x` (effective containment
//! threshold) at `t* = 0.5`.

use lshe_bench::{report, Args};
use lshe_core::convert::{effective_threshold, jaccard_from_containment, jaccard_threshold};

fn main() {
    let args = Args::from_env();
    let u = args.get_u64("u", 3);
    let x = args.get_u64("x", 1);
    let q = args.get_u64("q", 1);
    let t_star = args.get_f64("t-star", 0.5);
    let steps = args.get_usize("steps", 50);

    let s_star = jaccard_threshold(t_star, u, q);
    let t_x = effective_threshold(t_star, x, u, q);
    report::banner(
        "fig2",
        "threshold conversion curves and the (t_x, t*, s*) relationship",
        &[
            ("u", u.to_string()),
            ("x", x.to_string()),
            ("q", q.to_string()),
            ("t_star", report::f4(t_star)),
            ("s_star = s_hat_{u,q}(t*)", report::f4(s_star)),
            ("t_x = (x+q)t*/(u+q)", report::f4(t_x)),
        ],
    );

    report::header(&["t", "s_hat_xq", "s_hat_uq"]);
    for i in 0..=steps {
        let t = i as f64 / steps as f64;
        report::row(&[
            report::f4(t),
            report::f4(jaccard_from_containment(t, x as f64, q as f64)),
            report::f4(jaccard_from_containment(t, u as f64, q as f64)),
        ]);
    }
}
