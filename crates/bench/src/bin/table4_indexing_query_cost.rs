//! Table 4: indexing cost and mean query cost of the MinHash LSH baseline
//! versus LSH Ensemble (8 / 16 / 32 partitions) on the full performance
//! corpus, deployed across 5 in-process shards (the paper's 5-node
//! cluster).
//!
//! Shapes to reproduce: indexing cost roughly equal for all four indexes
//! (sketching dominates; partitions build in parallel); mean query cost
//! drops steeply from the baseline to the ensembles and keeps improving
//! with more partitions — the paper reports 45.13 s → 7.55 / 4.26 / 3.12 s
//! at 262M domains, a ~6–15× speedup from partitioning + selectivity.

use lshe_bench::{report, workload, Args};
use lshe_core::{DomainIndex, EnsembleConfig, PartitionStrategy, Query, ShardedEnsemble};
use lshe_lsh::DomainId;
use lshe_minhash::{MinHasher, Signature};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let num_domains = args.get_usize("domains", 500_000);
    let num_queries = args.get_usize("queries", 200);
    let num_shards = args.get_usize("shards", 5);
    let t_star = args.get_f64("t-star", 0.5);
    let seed = args.get_u64("seed", 42);

    report::banner(
        "table4",
        "indexing (s) and mean query (s): Baseline vs LSH Ensemble 8/16/32, 5 shards",
        &[
            ("domains", num_domains.to_string()),
            ("queries", num_queries.to_string()),
            ("shards", num_shards.to_string()),
            ("t_star", report::f4(t_star)),
            ("seed", seed.to_string()),
            (
                "paper_reference",
                "262M domains: Baseline 108.47min/45.13s; Ens(8) 106.27/7.55; Ens(16) 101.56/4.26; Ens(32) 104.62/3.12".to_owned(),
            ),
        ],
    );

    let hasher = MinHasher::new(256);
    let (corpus, sketch_secs) =
        workload::timed(|| workload::build_perf_corpus(num_domains, seed, &hasher));
    println!("# sketching_seconds = {}", report::secs(sketch_secs));

    let ids: Vec<DomainId> = (0..num_domains as DomainId).collect();
    let sig_refs: Vec<&Signature> = corpus.signatures.iter().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool: Vec<usize> = (0..num_domains).collect();
    pool.shuffle(&mut rng);
    let queries: Vec<usize> = pool.into_iter().take(num_queries).collect();

    let configs: Vec<(String, PartitionStrategy)> = vec![
        ("Baseline".to_owned(), PartitionStrategy::Single),
        (
            "LSH Ensemble (8)".to_owned(),
            PartitionStrategy::EquiDepth { n: 8 },
        ),
        (
            "LSH Ensemble (16)".to_owned(),
            PartitionStrategy::EquiDepth { n: 16 },
        ),
        (
            "LSH Ensemble (32)".to_owned(),
            PartitionStrategy::EquiDepth { n: 32 },
        ),
    ];

    report::header(&[
        "index",
        "indexing_seconds",
        "indexing_incl_sketching_seconds",
        "mean_query_seconds",
        "mean_candidates",
    ]);
    for (label, strategy) in configs {
        let config = EnsembleConfig {
            strategy,
            ..EnsembleConfig::default()
        };
        let (index, build_secs) = workload::timed(|| {
            ShardedEnsemble::build_from_parts(num_shards, config, &ids, &corpus.sizes, &sig_refs)
        });
        let mut total_candidates = 0usize;
        let (_, query_secs) = workload::timed(|| {
            for &q in &queries {
                let query =
                    Query::threshold(&corpus.signatures[q], t_star).with_size(corpus.sizes[q]);
                total_candidates += index
                    .search(&query)
                    .expect("valid threshold query")
                    .hits
                    .len();
            }
        });
        report::row(&[
            label,
            report::secs(build_secs),
            report::secs(build_secs + sketch_secs),
            report::secs(query_secs / queries.len().max(1) as f64),
            (total_candidates / queries.len().max(1)).to_string(),
        ]);
    }
}
