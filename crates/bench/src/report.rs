//! Uniform TSV reporting for the experiment binaries.
//!
//! Every experiment prints `#`-prefixed metadata lines followed by a header
//! row and tab-separated data rows — trivially greppable, plottable, and
//! diffable against EXPERIMENTS.md.

/// Prints the experiment banner: id, description, and workload parameters.
pub fn banner(id: &str, description: &str, params: &[(&str, String)]) {
    println!("# {id}: {description}");
    for (k, v) in params {
        println!("# {k} = {v}");
    }
}

/// Prints the TSV header row.
pub fn header(columns: &[&str]) {
    println!("{}", columns.join("\t"));
}

/// Prints one TSV data row.
pub fn row(cells: &[String]) {
    println!("{}", cells.join("\t"));
}

/// Formats a float with 4 decimal places (accuracy metrics).
#[must_use]
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a float with 2 decimal places (timings, skews).
#[must_use]
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats seconds with millisecond resolution.
#[must_use]
pub fn secs(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(f4(0.123_456), "0.1235");
        assert_eq!(f2(45.129), "45.13");
        assert_eq!(secs(1.23456), "1.235");
    }
}
