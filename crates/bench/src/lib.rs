//! # lshe-bench
//!
//! Experiment harness for the LSH Ensemble reproduction. Each binary in
//! `src/bin/` regenerates one table or figure of the paper's evaluation
//! section (see DESIGN.md §5 for the full index); this library holds the
//! shared machinery so every experiment uses identical corpus handling,
//! threading, and metric conventions.
//!
//! Run any experiment with:
//!
//! ```text
//! cargo run --release -p lshe-bench --bin fig4_accuracy_vs_threshold -- \
//!     --domains 65533 --queries 3000
//! ```
//!
//! Criterion microbenches live in `benches/`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod args;
pub mod report;
pub mod workload;

pub use args::Args;
