//! Microbench: LSH Forest insert, commit, and query at several index sizes
//! and query-time `(b, r)` settings.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use lshe_lsh::LshForest;
use lshe_minhash::{MinHasher, Signature};

fn signatures(n: usize) -> Vec<Signature> {
    let hasher = MinHasher::new(256);
    (0..n)
        .map(|i| hasher.signature(MinHasher::synthetic_values(i as u64, 64)))
        .collect()
}

fn built_forest(sigs: &[Signature]) -> LshForest {
    let mut f = LshForest::new(32, 8);
    for (i, s) in sigs.iter().enumerate() {
        f.insert(i as u32, s);
    }
    f.commit();
    f
}

fn forest_insert(c: &mut Criterion) {
    let sigs = signatures(1_000);
    c.bench_function("forest_insert_1k", |b| {
        b.iter_batched(
            || LshForest::new(32, 8),
            |mut f| {
                for (i, s) in sigs.iter().enumerate() {
                    f.insert(i as u32, s);
                }
                f
            },
            BatchSize::LargeInput,
        )
    });
}

fn forest_commit(c: &mut Criterion) {
    let sigs = signatures(10_000);
    c.bench_function("forest_commit_10k", |b| {
        b.iter_batched(
            || {
                let mut f = LshForest::new(32, 8);
                for (i, s) in sigs.iter().enumerate() {
                    f.insert(i as u32, s);
                }
                f
            },
            |mut f| {
                f.commit();
                f
            },
            BatchSize::LargeInput,
        )
    });
}

fn forest_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("forest_query");
    for &n in &[1_000usize, 10_000, 100_000] {
        let sigs = signatures(n);
        let forest = built_forest(&sigs);
        let query = &sigs[n / 2];
        for &(b, r) in &[(32usize, 8usize), (32, 4), (8, 8)] {
            group.bench_with_input(
                BenchmarkId::new(format!("b{b}_r{r}"), n),
                &forest,
                |bench, forest| bench.iter(|| forest.query(query, b, r)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, forest_insert, forest_commit, forest_query);
criterion_main!(benches);
