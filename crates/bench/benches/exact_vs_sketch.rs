//! Microbench: exact (inverted-index) containment search versus the LSH
//! Ensemble at the same corpus — quantifying what the sketch buys once
//! corpora outgrow exact indexing.

use criterion::{criterion_group, criterion_main, Criterion};
use lshe_bench::workload;
use lshe_core::PartitionStrategy;
use lshe_corpus::ExactIndex;
use lshe_datagen::{generate_catalog, CorpusConfig};
use lshe_minhash::MinHasher;

fn exact_vs_sketch(c: &mut Criterion) {
    let catalog = generate_catalog(&CorpusConfig::tiny(10_000, 5));
    let hasher = MinHasher::new(256);
    let signatures = workload::compute_signatures(&catalog, &hasher);
    let exact = ExactIndex::build(&catalog);
    let ens = workload::build_ensemble(
        &catalog,
        &signatures,
        PartitionStrategy::EquiDepth { n: 16 },
    );
    let q: u32 = 4_321;
    let query = catalog.domain(q);
    let q_size = query.len() as u64;

    c.bench_function("exact_search_10k", |b| b.iter(|| exact.search(query, 0.5)));
    c.bench_function("ensemble_query_10k", |b| {
        b.iter(|| ens.query_with_size(&signatures[q as usize], q_size, 0.5))
    });
    c.bench_function("exact_scores_10k", |b| b.iter(|| exact.scores(query)));
}

criterion_group!(benches, exact_vs_sketch);
criterion_main!(benches);
