//! Microbench: batched query execution (`DomainIndex::search_batch`)
//! versus the looped single-query default, at batch size 64 — the first
//! perf trajectory for the batch fast path (`BENCH_batch.json`).
//!
//! Per backend two cases run over the SAME 64 prepared queries:
//!
//! * `looped`  — `queries.iter().map(|q| index.search(q))`, i.e. what the
//!   default trait impl does: per-query scratch, per-query shard fan-out;
//! * `batched` — one `index.search_batch(&queries)` call: partitions
//!   probed partition-outer while hot, dedup scratch reused, and the
//!   shard/lane threads spawned once per batch.
//!
//! The sharded backends are where the amortization bites hardest: the
//! looped path pays `shards` thread spawns per query, the batched path
//! pays them once per batch.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lshe_bench::workload;
use lshe_core::{
    DomainIndex, EnsembleConfig, LshEnsemble, PartitionStrategy, Query, RankedIndex,
    ShardedEnsemble, ShardedRanked,
};
use lshe_minhash::MinHasher;
use std::sync::Arc;

const DOMAINS: usize = 20_000;
const BATCH: usize = 64;
const SHARDS: usize = 4;

fn config(parts: usize) -> EnsembleConfig {
    EnsembleConfig {
        strategy: PartitionStrategy::EquiDepth { n: parts },
        ..EnsembleConfig::default()
    }
}

/// The 64-query workload: distinct query domains spread across the
/// corpus, thresholds cycling over the paper's useful range.
fn batch_queries(corpus: &workload::PerfCorpus) -> Vec<Query<'_>> {
    (0..BATCH)
        .map(|j| {
            let q = (j * 313) % corpus.sizes.len();
            let t = 0.5 + 0.1 * (j % 5) as f64;
            Query::threshold(&corpus.signatures[q], t).with_size(corpus.sizes[q])
        })
        .collect()
}

fn bench_pair(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    index: &dyn DomainIndex,
    queries: &[Query<'_>],
) {
    group.bench_function(format!("{name}/looped"), |b| {
        b.iter(|| {
            let results: Vec<_> = queries.iter().map(|q| index.search(q)).collect();
            assert_eq!(results.len(), BATCH);
            results
        })
    });
    group.bench_function(format!("{name}/batched"), |b| {
        b.iter(|| {
            let results = index.search_batch(queries);
            assert_eq!(results.len(), BATCH);
            results
        })
    });
}

fn batch_throughput(c: &mut Criterion) {
    let hasher = MinHasher::new(256);
    let corpus = workload::build_perf_corpus(DOMAINS, 11, &hasher);
    let ids: Vec<u32> = (0..corpus.sizes.len() as u32).collect();
    let sig_refs: Vec<&lshe_minhash::Signature> = corpus.signatures.iter().collect();
    let queries = batch_queries(&corpus);

    let mut group = c.benchmark_group("batch_throughput");
    group.throughput(Throughput::Elements(BATCH as u64));

    let ensemble = LshEnsemble::build_from_parts(config(32), &ids, &corpus.sizes, &sig_refs);
    bench_pair(&mut group, "ensemble32", &ensemble, &queries);
    drop(ensemble);

    let mut ranked_builder = RankedIndex::builder_with(config(32));
    for (i, sig) in corpus.signatures.iter().enumerate() {
        ranked_builder.add(i as u32, corpus.sizes[i], sig.clone());
    }
    let ranked = Arc::new(ranked_builder.build());
    bench_pair(&mut group, "ranked32", ranked.as_ref(), &queries);

    let sharded =
        ShardedEnsemble::build_from_parts(SHARDS, config(8), &ids, &corpus.sizes, &sig_refs);
    bench_pair(&mut group, "sharded4", &sharded, &queries);
    drop(sharded);

    let sharded_ranked = ShardedRanked::build(Arc::clone(&ranked), SHARDS, config(8));
    bench_pair(&mut group, "sharded_ranked4", &sharded_ranked, &queries);

    group.finish();
}

criterion_group!(benches, batch_throughput);
criterion_main!(benches);
