//! Microbench: `lshe-serve` request throughput over loopback HTTP —
//! engine-direct baseline, cache-hit and cache-miss single queries, and a
//! batched request — quantifying what the serving layer costs on top of
//! the raw ensemble query path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lshe_corpus::{Catalog, Domain, DomainMeta};
use lshe_serve::client::HttpClient;
use lshe_serve::engine::Engine;
use lshe_serve::server::{start, ServerConfig};
use lshe_serve::IndexContainer;
use std::sync::Arc;

const DOMAINS: usize = 2_000;
const QUERY_VALUES: usize = 64;
const BATCH: usize = 16;

/// Overlapping-window catalog: domain `k` holds the values
/// `v{7k} … v{7k + 20 + (k mod 64)}` — varied sizes for the partitioner,
/// neighbourly overlap so a query matches a handful of domains, not all.
fn build_catalog() -> Catalog {
    let mut catalog = Catalog::new();
    for k in 0..DOMAINS {
        let lo = 7 * k;
        let values: Vec<String> = (lo..lo + 20 + (k % 64)).map(|i| format!("v{i}")).collect();
        catalog.push(
            Domain::from_strs(values.iter().map(String::as_str)),
            DomainMeta::new(format!("t{k}"), "col"),
        );
    }
    catalog
}

fn query_body(threshold: f64) -> String {
    let quoted: Vec<String> = (0..QUERY_VALUES).map(|i| format!("\"v{i}\"")).collect();
    format!(
        "{{\"values\": [{}], \"threshold\": {threshold}}}",
        quoted.join(",")
    )
}

/// One keep-alive POST; panics on any non-200 so a broken server cannot
/// masquerade as a fast one.
fn post_ok(client: &mut HttpClient, path: &str, body: &str) -> usize {
    let (status, response) = client.request("POST", path, Some(body));
    assert_eq!(status, 200, "bad response: {response}");
    response.len()
}

fn server_throughput(c: &mut Criterion) {
    let container = IndexContainer::build(&build_catalog(), 8, true);
    let engine = Arc::new(Engine::from_container(container, 1).expect("engine"));
    let snapshot = engine.snapshot();
    let server = start(
        Arc::clone(&engine),
        &ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 4,
            cache_capacity: 4_096,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    let mut group = c.benchmark_group("server_throughput");
    group.throughput(Throughput::Elements(1));

    // Baseline: the same query straight through the engine, no HTTP.
    let values: Vec<String> = (0..QUERY_VALUES).map(|i| format!("v{i}")).collect();
    let domain = Domain::from_strs(values.iter().map(String::as_str));
    let sig = domain.signature(snapshot.hasher());
    let qsize = domain.len() as u64;
    group.bench_function("engine_direct", |b| {
        b.iter(|| snapshot.search(&sig, qsize, 0.5))
    });

    // Cache hit: identical request every iteration.
    let hit_body = query_body(0.5);
    let mut client = HttpClient::connect(addr);
    group.bench_function("http_query_cache_hit", |b| {
        b.iter(|| post_ok(&mut client, "/query", &hit_body))
    });

    // Cache miss: a unique threshold per iteration defeats the cache while
    // keeping the query work identical.
    let mut counter = 0u64;
    group.bench_function("http_query_cache_miss", |b| {
        b.iter(|| {
            counter += 1;
            let body = query_body(0.5 + counter as f64 * 1e-9);
            post_ok(&mut client, "/query", &body)
        })
    });

    // Batched: BATCH queries per request, fanned out server-side (unique
    // thresholds keep it uncached).
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("http_batch16_uncached", |b| {
        b.iter(|| {
            let queries: Vec<String> = (0..BATCH)
                .map(|j| {
                    counter += 1;
                    query_body(0.5 + (counter * BATCH as u64 + j as u64) as f64 * 1e-9)
                })
                .collect();
            let body = format!("{{\"queries\": [{}]}}", queries.join(","));
            post_ok(&mut client, "/batch", &body)
        })
    });
    // 256 concurrent keep-alive connections, one cache-hit query each per
    // iteration, every request written before any response is read: the
    // reactor must multiplex the whole connection set, not serve them one
    // thread at a time.
    const CONNS: usize = 256;
    let mut conns: Vec<HttpClient> = (0..CONNS).map(|_| HttpClient::connect(addr)).collect();
    group.throughput(Throughput::Elements(CONNS as u64));
    group.bench_function("http_query_256conn_burst", |b| {
        b.iter(|| {
            for conn in &mut conns {
                conn.send("POST", "/query", Some(&hit_body));
            }
            let mut bytes = 0usize;
            for conn in &mut conns {
                let (status, body) = conn.read_response();
                assert_eq!(status, 200, "burst response: {body}");
                bytes += body.len();
            }
            bytes
        })
    });
    group.finish();

    server.shutdown();
}

criterion_group!(benches, server_throughput);
criterion_main!(benches);
