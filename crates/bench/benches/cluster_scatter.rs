//! Microbench: the cluster coordinator's scatter/gather cost — a
//! 4-shard cluster (coordinator + four real loopback shard servers)
//! against ONE server running the in-process `ShardedRanked` over the
//! same corpus, at single queries and at batch 64. The delta is the
//! price of process isolation: one extra HTTP hop, four scattered
//! sub-requests, and the coordinator-side union/rank merge.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lshe_cluster::{shard_of, ClusterConfig};
use lshe_corpus::{Catalog, Domain, DomainMeta};
use lshe_serve::client::HttpClient;
use lshe_serve::engine::Engine;
use lshe_serve::server::{start, ServerConfig};
use lshe_serve::IndexContainer;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

const DOMAINS: usize = 2_000;
const QUERY_VALUES: usize = 64;
const BATCH: usize = 64;
const SHARDS: usize = 4;

/// The server_throughput catalog: overlapping windows, varied sizes.
fn build_catalog() -> Catalog {
    let mut catalog = Catalog::new();
    for k in 0..DOMAINS {
        let lo = 7 * k;
        let values: Vec<String> = (lo..lo + 20 + (k % 64)).map(|i| format!("v{i}")).collect();
        catalog.push(
            Domain::from_strs(values.iter().map(String::as_str)),
            DomainMeta::new(format!("t{k}"), "col"),
        );
    }
    catalog
}

fn query_body(threshold: f64) -> String {
    let quoted: Vec<String> = (0..QUERY_VALUES).map(|i| format!("\"v{i}\"")).collect();
    format!(
        "{{\"values\": [{}], \"threshold\": {threshold}}}",
        quoted.join(",")
    )
}

/// 64 uncached queries in one /batch body (unique thresholds defeat the
/// shard-side caches while keeping the search work identical).
fn batch_body(counter: &mut u64) -> String {
    let queries: Vec<String> = (0..BATCH)
        .map(|_| {
            *counter += 1;
            query_body(0.5 + *counter as f64 * 1e-9)
        })
        .collect();
    format!("{{\"queries\": [{}]}}", queries.join(","))
}

fn post_ok(client: &mut HttpClient, path: &str, body: &str) -> usize {
    let (status, response) = client.request("POST", path, Some(body));
    assert_eq!(status, 200, "bad response: {response}");
    response.len()
}

fn cluster_scatter(c: &mut Criterion) {
    let container = IndexContainer::build(&build_catalog(), 8, true);

    // The single-process reference: one server, in-process sharding.
    let single_bytes = container.to_bytes();
    let single_server = start(
        Arc::new(
            Engine::from_container(
                IndexContainer::from_bytes(&single_bytes).expect("decode"),
                SHARDS,
            )
            .expect("engine"),
        ),
        &ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 4,
            cache_capacity: 16, // tiny: these benches measure uncached work
            ..ServerConfig::default()
        },
    )
    .expect("bind single");

    // The cluster: the same index split 4 ways, one server per shard,
    // the coordinator scattering over loopback.
    let shard_servers: Vec<_> = container
        .split_with(SHARDS, shard_of)
        .expect("split")
        .into_iter()
        .enumerate()
        .map(|(s, part)| {
            start(
                Arc::new(Engine::from_container(part, 1).expect("shard engine")),
                &ServerConfig {
                    addr: "127.0.0.1:0".to_owned(),
                    threads: 2,
                    cache_capacity: 16,
                    shard_id: Some(s as u64),
                    ..ServerConfig::default()
                },
            )
            .expect("bind shard")
        })
        .collect();
    let coordinator = lshe_cluster::start(ClusterConfig {
        addr: "127.0.0.1:0".to_owned(),
        shards: shard_servers
            .iter()
            .map(|s| s.addr())
            .collect::<Vec<SocketAddr>>(),
        connect_timeout: Duration::from_secs(1),
        read_timeout: Duration::from_secs(30),
        hedge_after: Duration::from_secs(5), // never fires at bench latencies
        probe_interval: Duration::from_secs(60),
    })
    .expect("coordinator");

    let mut group = c.benchmark_group("cluster_scatter");
    let mut counter = 0u64;

    // Single uncached query: the per-request scatter floor.
    group.throughput(Throughput::Elements(1));
    let mut single_client = HttpClient::connect(single_server.addr());
    group.bench_function("single_process_query", |b| {
        b.iter(|| {
            counter += 1;
            post_ok(
                &mut single_client,
                "/query",
                &query_body(0.5 + counter as f64 * 1e-9),
            )
        })
    });
    let mut coord_client = HttpClient::connect(coordinator.addr());
    group.bench_function("cluster4_query", |b| {
        b.iter(|| {
            counter += 1;
            post_ok(
                &mut coord_client,
                "/query",
                &query_body(0.5 + counter as f64 * 1e-9),
            )
        })
    });

    // Batch 64: the headline — scatter amortised over a full batch.
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("single_process_batch64", |b| {
        b.iter(|| {
            let body = batch_body(&mut counter);
            post_ok(&mut single_client, "/batch", &body)
        })
    });
    group.bench_function("cluster4_batch64", |b| {
        b.iter(|| {
            let body = batch_body(&mut counter);
            post_ok(&mut coord_client, "/batch", &body)
        })
    });
    group.finish();

    coordinator.shutdown();
    single_server.shutdown();
    for shard in shard_servers {
        shard.shutdown();
    }
}

criterion_group!(benches, cluster_scatter);
criterion_main!(benches);
