//! Microbench: MinHash signature generation throughput across domain sizes
//! and signature widths — the dominant cost of index construction
//! (Table 4's "Indexing" column is ~all sketching).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lshe_minhash::kernel::FoldKernel;
use lshe_minhash::perm::EMPTY_SLOT;
use lshe_minhash::{MinHasher, OnePermHasher};

fn signature_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("signature_generation");
    for &size in &[100usize, 1_000, 10_000] {
        let values = MinHasher::synthetic_values(42, size);
        for &m in &[128usize, 256] {
            let hasher = MinHasher::new(m);
            group.throughput(Throughput::Elements(size as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("classic_m{m}"), size),
                &values,
                |b, values| b.iter(|| hasher.signature(values.iter().copied())),
            );
            // One-Permutation Hashing: the O(n + m) fast path — expect a
            // speedup approaching m× at large n.
            let oph = OnePermHasher::new(m);
            group.bench_with_input(
                BenchmarkId::new(format!("oneperm_m{m}"), size),
                &values,
                |b, values| b.iter(|| oph.signature(values.iter().copied())),
            );
        }
    }
    group.finish();
}

/// The min-fold inner loop in isolation: the [`FoldKernel`] (AVX2 lanes
/// where the host has them, portable unrolled otherwise) against the
/// per-permutation scalar reference it replaced.
fn fold_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("fold_kernel");
    let values = MinHasher::synthetic_values(7, 10_000);
    for &m in &[128usize, 256] {
        let hasher = MinHasher::new(m);
        let perms = hasher.family().permutations();
        let kernel = FoldKernel::new(perms);
        group.throughput(Throughput::Elements(values.len() as u64));
        group.bench_with_input(
            BenchmarkId::new(
                format!(
                    "{}_m{m}",
                    if kernel.is_vectorised() {
                        "kernel_avx2"
                    } else {
                        "kernel_portable"
                    }
                ),
                values.len(),
            ),
            &values,
            |b, values| {
                let mut slots = vec![EMPTY_SLOT; m];
                b.iter(|| {
                    slots.fill(EMPTY_SLOT);
                    kernel.fold(values.iter().copied(), &mut slots);
                    slots[0]
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("scalar_m{m}"), values.len()),
            &values,
            |b, values| {
                let mut slots = vec![EMPTY_SLOT; m];
                b.iter(|| {
                    slots.fill(EMPTY_SLOT);
                    for &v in values.iter() {
                        for (slot, perm) in slots.iter_mut().zip(perms.iter()) {
                            let h = perm.apply(v);
                            if h < *slot {
                                *slot = h;
                            }
                        }
                    }
                    slots[0]
                });
            },
        );
    }
    group.finish();
}

fn jaccard_estimation(c: &mut Criterion) {
    let hasher = MinHasher::new(256);
    let a = hasher.signature(MinHasher::synthetic_values(1, 1_000));
    let b = hasher.signature(MinHasher::synthetic_values(2, 1_000));
    c.bench_function("jaccard_estimate_m256", |bench| {
        bench.iter(|| a.jaccard(&b))
    });
}

fn cardinality_estimation(c: &mut Criterion) {
    let hasher = MinHasher::new(256);
    let sig = hasher.signature(MinHasher::synthetic_values(3, 10_000));
    c.bench_function("cardinality_estimate_m256", |bench| {
        bench.iter(|| sig.cardinality())
    });
}

criterion_group!(
    benches,
    signature_generation,
    fold_kernel,
    jaccard_estimation,
    cardinality_estimation
);
criterion_main!(benches);
