//! Microbench: MinHash signature generation throughput across domain sizes
//! and signature widths — the dominant cost of index construction
//! (Table 4's "Indexing" column is ~all sketching).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lshe_minhash::{MinHasher, OnePermHasher};

fn signature_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("signature_generation");
    for &size in &[100usize, 1_000, 10_000] {
        let values = MinHasher::synthetic_values(42, size);
        for &m in &[128usize, 256] {
            let hasher = MinHasher::new(m);
            group.throughput(Throughput::Elements(size as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("classic_m{m}"), size),
                &values,
                |b, values| b.iter(|| hasher.signature(values.iter().copied())),
            );
            // One-Permutation Hashing: the O(n + m) fast path — expect a
            // speedup approaching m× at large n.
            let oph = OnePermHasher::new(m);
            group.bench_with_input(
                BenchmarkId::new(format!("oneperm_m{m}"), size),
                &values,
                |b, values| b.iter(|| oph.signature(values.iter().copied())),
            );
        }
    }
    group.finish();
}

fn jaccard_estimation(c: &mut Criterion) {
    let hasher = MinHasher::new(256);
    let a = hasher.signature(MinHasher::synthetic_values(1, 1_000));
    let b = hasher.signature(MinHasher::synthetic_values(2, 1_000));
    c.bench_function("jaccard_estimate_m256", |bench| {
        bench.iter(|| a.jaccard(&b))
    });
}

fn cardinality_estimation(c: &mut Criterion) {
    let hasher = MinHasher::new(256);
    let sig = hasher.signature(MinHasher::synthetic_values(3, 10_000));
    c.bench_function("cardinality_estimate_m256", |bench| {
        bench.iter(|| sig.cardinality())
    });
}

criterion_group!(
    benches,
    signature_generation,
    jaccard_estimation,
    cardinality_estimation
);
criterion_main!(benches);
