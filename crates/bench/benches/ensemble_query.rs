//! Microbench: end-to-end ensemble query latency versus partition count —
//! the single-machine analogue of Table 4's query-cost column.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lshe_bench::workload;
use lshe_core::PartitionStrategy;
use lshe_minhash::MinHasher;

fn ensemble_query(c: &mut Criterion) {
    let hasher = MinHasher::new(256);
    let corpus = workload::build_perf_corpus(50_000, 7, &hasher);
    let ids: Vec<u32> = (0..corpus.sizes.len() as u32).collect();
    let sig_refs: Vec<&lshe_minhash::Signature> = corpus.signatures.iter().collect();

    let mut group = c.benchmark_group("ensemble_query_50k");
    for &(label, strategy) in &[
        ("partitions1", PartitionStrategy::Single),
        ("partitions8", PartitionStrategy::EquiDepth { n: 8 }),
        ("partitions32", PartitionStrategy::EquiDepth { n: 32 }),
    ] {
        let ens = lshe_core::LshEnsemble::build_from_parts(
            lshe_core::EnsembleConfig {
                strategy,
                ..lshe_core::EnsembleConfig::default()
            },
            &ids,
            &corpus.sizes,
            &sig_refs,
        );
        let q = 12_345usize;
        group.bench_with_input(BenchmarkId::new(label, "t0.5"), &ens, |b, ens| {
            b.iter(|| ens.query_with_size(&corpus.signatures[q], corpus.sizes[q], 0.5))
        });
        group.bench_with_input(BenchmarkId::new(label, "t0.9"), &ens, |b, ens| {
            b.iter(|| ens.query_with_size(&corpus.signatures[q], corpus.sizes[q], 0.9))
        });
    }
    group.finish();
}

fn parallel_vs_sequential(c: &mut Criterion) {
    let hasher = MinHasher::new(256);
    let corpus = workload::build_perf_corpus(50_000, 9, &hasher);
    let ids: Vec<u32> = (0..corpus.sizes.len() as u32).collect();
    let sig_refs: Vec<&lshe_minhash::Signature> = corpus.signatures.iter().collect();
    let ens = lshe_core::LshEnsemble::build_from_parts(
        lshe_core::EnsembleConfig {
            strategy: PartitionStrategy::EquiDepth { n: 32 },
            ..lshe_core::EnsembleConfig::default()
        },
        &ids,
        &corpus.sizes,
        &sig_refs,
    );
    let q = 23_456usize;
    c.bench_function("query_sequential_32p", |b| {
        b.iter(|| ens.query_with_size(&corpus.signatures[q], corpus.sizes[q], 0.5))
    });
    c.bench_function("query_parallel_32p", |b| {
        b.iter(|| ens.query_parallel(&corpus.signatures[q], corpus.sizes[q], 0.5))
    });
}

criterion_group!(benches, ensemble_query, parallel_vs_sequential);
criterion_main!(benches);
