//! Microbench: cost of the per-query `(b, r)` optimisation — cold
//! (full grid integration) versus warm (memo-table hit). The paper
//! precomputes this table offline; the memoised path is what every query
//! actually pays.

use criterion::{criterion_group, criterion_main, Criterion};
use lshe_core::Tuner;

fn tuning(c: &mut Criterion) {
    c.bench_function("tuner_cold_full_grid_32x8", |b| {
        let tuner = Tuner::new(32, 8);
        let mut ratio = 1.0f64;
        b.iter(|| {
            // Vary the ratio so every iteration misses any internal reuse.
            ratio = if ratio > 1e6 { 1.0 } else { ratio * 1.001 };
            tuner.optimize_uncached(ratio, 0.5)
        })
    });

    c.bench_function("tuner_warm_cache_hit", |b| {
        let tuner = Tuner::new(32, 8);
        let _ = tuner.optimize(1_000, 50, 0.5); // prime
        b.iter(|| tuner.optimize(1_000, 50, 0.5))
    });

    c.bench_function("fp_fn_integration_single_pair", |b| {
        b.iter(|| {
            lshe_core::tuning::false_positive_area(3.7, 0.5, 16, 4)
                + lshe_core::tuning::false_negative_area(3.7, 0.5, 16, 4)
        })
    });
}

criterion_group!(benches, tuning);
criterion_main!(benches);
