//! Typed failure modes for opening, verifying, and viewing a v2 store.

use std::fmt;

/// Why a store file could not be opened, verified, or viewed.
///
/// Every variant that concerns a section names it, so a corrupt file
/// reports *where* it is corrupt — `section "sketch slots": checksum
/// mismatch` — rather than a bare decode error.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure (open, metadata, mmap).
    Io(std::io::Error),
    /// The file does not start with the v2 magic.
    BadMagic {
        /// The eight bytes actually found.
        found: [u8; 8],
    },
    /// The file's format version is newer than this build understands.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Highest version this build supports.
        supported: u32,
    },
    /// The file is shorter than a structure it claims to contain.
    Truncated {
        /// What was being read when the file ran out.
        reading: &'static str,
        /// Bytes the structure needs.
        needed: u64,
        /// Bytes actually available.
        actual: u64,
    },
    /// The header's own checksum does not match its contents.
    HeaderChecksum {
        /// Checksum stored in the header.
        stored: u32,
        /// Checksum computed over the header bytes.
        computed: u32,
    },
    /// The section table's checksum does not match its contents.
    TableChecksum {
        /// Checksum stored in the header.
        stored: u32,
        /// Checksum computed over the table bytes.
        computed: u32,
    },
    /// A section's payload checksum does not match (bit rot, torn write,
    /// or deliberate tampering).
    SectionChecksum {
        /// The damaged section.
        section: &'static str,
        /// Checksum stored in the section table.
        stored: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
    /// A section table entry points outside the file.
    SectionBounds {
        /// The offending section.
        section: &'static str,
    },
    /// A section's offset or element width violates the format's 64-byte
    /// alignment guarantee, so it cannot be viewed in place.
    Misaligned {
        /// The offending section.
        section: &'static str,
    },
    /// The same section kind appears twice in the table.
    DuplicateSection {
        /// The repeated section.
        section: &'static str,
    },
    /// A section the reader requires is absent.
    MissingSection {
        /// The absent section.
        section: &'static str,
    },
    /// A structural inconsistency inside an otherwise well-formed section
    /// (counts that do not multiply out, unsorted id maps, …).
    Corrupt {
        /// The section (or "header" / "layout") where the inconsistency
        /// was found.
        section: &'static str,
        /// What is wrong.
        detail: &'static str,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::BadMagic { found } => {
                write!(f, "not a v2 store file (magic {:02x?})", found)
            }
            Self::UnsupportedVersion { found, supported } => write!(
                f,
                "store format version {found} is newer than supported {supported}"
            ),
            Self::Truncated {
                reading,
                needed,
                actual,
            } => write!(
                f,
                "file truncated while reading {reading}: need {needed} bytes, have {actual}"
            ),
            Self::HeaderChecksum { stored, computed } => write!(
                f,
                "header checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            Self::TableChecksum { stored, computed } => write!(
                f,
                "section table checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            Self::SectionChecksum {
                section,
                stored,
                computed,
            } => write!(
                f,
                "section \"{section}\": checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            Self::SectionBounds { section } => {
                write!(f, "section \"{section}\": extends past end of file")
            }
            Self::Misaligned { section } => {
                write!(f, "section \"{section}\": offset violates 64-byte alignment")
            }
            Self::DuplicateSection { section } => {
                write!(f, "section \"{section}\": appears more than once")
            }
            Self::MissingSection { section } => {
                write!(f, "section \"{section}\": required but absent")
            }
            Self::Corrupt { section, detail } => {
                write!(f, "section \"{section}\": {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl StoreError {
    /// The section this error names, when it names one.
    #[must_use]
    pub fn section(&self) -> Option<&'static str> {
        match self {
            Self::SectionChecksum { section, .. }
            | Self::SectionBounds { section }
            | Self::Misaligned { section }
            | Self::DuplicateSection { section }
            | Self::MissingSection { section }
            | Self::Corrupt { section, .. } => Some(section),
            _ => None,
        }
    }
}
