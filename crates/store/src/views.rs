//! Zero-copy views over a mapped store's section payloads.
//!
//! These types carry no data of their own: each borrows plain slices out
//! of a [`Store`](crate::format::Store) mapping and layers just enough
//! structure on top to answer queries — sketch lookup by domain id, and
//! prefix-tree probing inside a partition. The higher layers (the
//! `lshe-core` mmap backend) own the index semantics; the views own the
//! layout.

/// Borrowed sketch columns: sorted domain ids with parallel size and
/// signature-slot arrays.
///
/// Layout: `ids[i]` owns `sizes[i]` and
/// `slots[i * num_perm .. (i + 1) * num_perm]`. Ids are strictly
/// ascending, which is what makes [`lookup`](SketchesView::lookup) a
/// binary search.
#[derive(Debug, Clone, Copy)]
pub struct SketchesView<'a> {
    ids: &'a [u32],
    sizes: &'a [u64],
    slots: &'a [u64],
    num_perm: usize,
}

impl<'a> SketchesView<'a> {
    /// Assembles a view from raw section slices.
    ///
    /// Returns `None` when the lengths do not multiply out
    /// (`sizes.len() != ids.len()` or
    /// `slots.len() != ids.len() * num_perm`) — the caller turns that
    /// into its section-named corruption error.
    #[must_use]
    pub fn new(
        ids: &'a [u32],
        sizes: &'a [u64],
        slots: &'a [u64],
        num_perm: usize,
    ) -> Option<Self> {
        if num_perm == 0 || sizes.len() != ids.len() {
            return None;
        }
        if slots.len() != ids.len().checked_mul(num_perm)? {
            return None;
        }
        Some(Self {
            ids,
            sizes,
            slots,
            num_perm,
        })
    }

    /// Number of sketched domains.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no domains are sketched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Signature width.
    #[must_use]
    pub fn num_perm(&self) -> usize {
        self.num_perm
    }

    /// True when the id column is strictly ascending — the invariant
    /// [`lookup`](SketchesView::lookup) depends on. O(n); called from the
    /// full-verification path, not per query.
    #[must_use]
    pub fn ids_sorted(&self) -> bool {
        self.ids.windows(2).all(|w| w[0] < w[1])
    }

    /// The domain's `(cardinality, signature slots)`, or `None` if the id
    /// is not sketched.
    #[must_use]
    pub fn lookup(&self, id: u32) -> Option<(u64, &'a [u64])> {
        let i = self.ids.binary_search(&id).ok()?;
        Some((
            self.sizes[i],
            &self.slots[i * self.num_perm..(i + 1) * self.num_perm],
        ))
    }

    /// Iterates `(id, cardinality, slots)` in ascending-id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64, &'a [u64])> + '_ {
        self.ids.iter().enumerate().map(move |(i, &id)| {
            (
                id,
                self.sizes[i],
                &self.slots[i * self.num_perm..(i + 1) * self.num_perm],
            )
        })
    }
}

/// Borrowed prefix trees for one partition.
///
/// Layout: `b_max` trees, each `rows` rows. Tree `t` owns
/// `keys[t * rows * r_max ..][.. rows * r_max]` (row-major, `r_max` key
/// slots per row, rows sorted lexicographically) and
/// `ids[t * rows ..][.. rows]` (the row's domain id).
#[derive(Debug, Clone, Copy)]
pub struct PartitionView<'a> {
    keys: &'a [u32],
    ids: &'a [u32],
    b_max: usize,
    r_max: usize,
    rows: usize,
}

impl<'a> PartitionView<'a> {
    /// Assembles a partition view from raw key/id slices.
    ///
    /// Returns `None` when the lengths do not multiply out:
    /// `keys.len() != b_max * rows * r_max` or
    /// `ids.len() != b_max * rows`.
    #[must_use]
    pub fn new(
        keys: &'a [u32],
        ids: &'a [u32],
        b_max: usize,
        r_max: usize,
        rows: usize,
    ) -> Option<Self> {
        if r_max == 0 || b_max == 0 {
            return None;
        }
        let want_ids = b_max.checked_mul(rows)?;
        let want_keys = want_ids.checked_mul(r_max)?;
        if keys.len() != want_keys || ids.len() != want_ids {
            return None;
        }
        Some(Self {
            keys,
            ids,
            b_max,
            r_max,
            rows,
        })
    }

    /// Domains in this partition (rows per tree).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of trees.
    #[must_use]
    pub fn trees(&self) -> usize {
        self.b_max
    }

    /// The `t`-th tree.
    ///
    /// # Panics
    /// Panics if `t >= b_max`.
    #[must_use]
    pub fn tree(&self, t: usize) -> TreeView<'a> {
        assert!(t < self.b_max, "tree index out of range");
        TreeView {
            keys: &self.keys[t * self.rows * self.r_max..(t + 1) * self.rows * self.r_max],
            ids: &self.ids[t * self.rows..(t + 1) * self.rows],
            r_max: self.r_max,
        }
    }

    /// True when every tree's rows are lexicographically sorted — the
    /// invariant probing depends on. O(total keys); verification-path
    /// only.
    #[must_use]
    pub fn trees_sorted(&self) -> bool {
        (0..self.b_max).all(|t| {
            let tree = self.tree(t);
            (1..tree.rows()).all(|i| tree.row(i - 1) <= tree.row(i))
        })
    }
}

/// One borrowed prefix tree: sorted rows of `r_max` truncated hash slots,
/// each owning a domain id.
#[derive(Debug, Clone, Copy)]
pub struct TreeView<'a> {
    keys: &'a [u32],
    ids: &'a [u32],
    r_max: usize,
}

impl<'a> TreeView<'a> {
    /// Rows in this tree.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.ids.len()
    }

    fn row(&self, i: usize) -> &'a [u32] {
        &self.keys[i * self.r_max..i * self.r_max + self.r_max]
    }

    /// Pushes the id of every row whose first `prefix.len()` key slots
    /// equal `prefix`: binary search to the equal range's start, then a
    /// linear walk — the committed forest's probe, verbatim, over
    /// borrowed memory.
    ///
    /// # Panics
    /// Panics if `prefix` is empty or longer than `r_max`.
    pub fn probe_into(&self, prefix: &[u32], out: &mut Vec<u32>) {
        assert!(
            !prefix.is_empty() && prefix.len() <= self.r_max,
            "prefix length out of range"
        );
        let r = prefix.len();
        // partition_point over row indices: first row not `< prefix`.
        let mut lo = 0usize;
        let mut hi = self.rows();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if &self.row(mid)[..r] < prefix {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        for i in lo..self.rows() {
            if &self.row(i)[..r] == prefix {
                out.push(self.ids[i]);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketches_lookup() {
        let ids = [2u32, 5, 9];
        let sizes = [20u64, 50, 90];
        let slots = [1u64, 2, 3, 4, 5, 6]; // num_perm = 2
        let v = SketchesView::new(&ids, &sizes, &slots, 2).expect("view");
        assert_eq!(v.len(), 3);
        assert!(v.ids_sorted());
        assert_eq!(v.lookup(5), Some((50, &[3u64, 4][..])));
        assert_eq!(v.lookup(9), Some((90, &[5u64, 6][..])));
        assert_eq!(v.lookup(7), None);
        let collected: Vec<u32> = v.iter().map(|(id, _, _)| id).collect();
        assert_eq!(collected, vec![2, 5, 9]);
    }

    #[test]
    fn sketches_rejects_mismatched_lengths() {
        let ids = [1u32, 2];
        let sizes = [1u64];
        let slots = [0u64; 4];
        assert!(SketchesView::new(&ids, &sizes, &slots, 2).is_none());
        let sizes2 = [1u64, 2];
        assert!(SketchesView::new(&ids, &sizes2, &slots[..3], 2).is_none());
        assert!(SketchesView::new(&ids, &sizes2, &slots, 0).is_none());
    }

    #[test]
    fn sketches_detects_unsorted_ids() {
        let ids = [5u32, 2];
        let sizes = [1u64, 2];
        let slots = [0u64; 2];
        let v = SketchesView::new(&ids, &sizes, &slots, 1).expect("view");
        assert!(!v.ids_sorted());
    }

    #[test]
    fn tree_probe_equal_range() {
        // One partition, 1 tree, r_max = 2, rows sorted lexicographically.
        let keys = [
            1u32, 1, //
            1, 2, //
            1, 2, //
            2, 0, //
        ];
        let ids = [10u32, 11, 12, 13];
        let part = PartitionView::new(&keys, &ids, 1, 2, 4).expect("view");
        assert!(part.trees_sorted());
        let tree = part.tree(0);

        let mut out = Vec::new();
        tree.probe_into(&[1, 2], &mut out);
        assert_eq!(out, vec![11, 12]);

        out.clear();
        tree.probe_into(&[1], &mut out); // shorter prefix widens the range
        assert_eq!(out, vec![10, 11, 12]);

        out.clear();
        tree.probe_into(&[3], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn multi_tree_partition_slices_correctly() {
        // 2 trees, 2 rows each, r_max = 1.
        let keys = [1u32, 2, /* tree 1: */ 7, 8];
        let ids = [100u32, 101, /* tree 1: */ 200, 201];
        let part = PartitionView::new(&keys, &ids, 2, 1, 2).expect("view");
        let mut out = Vec::new();
        part.tree(1).probe_into(&[8], &mut out);
        assert_eq!(out, vec![201]);
        out.clear();
        part.tree(0).probe_into(&[8], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn partition_rejects_mismatched_lengths() {
        let keys = [0u32; 7];
        let ids = [0u32; 4];
        assert!(PartitionView::new(&keys, &ids, 1, 2, 4).is_none());
        assert!(PartitionView::new(&keys[..6], &ids[..3], 1, 2, 4).is_none());
        assert!(PartitionView::new(&[], &[], 0, 2, 0).is_none());
    }

    #[test]
    fn empty_partition_probes_empty() {
        let part = PartitionView::new(&[], &[], 2, 3, 0).expect("view");
        let mut out = Vec::new();
        part.tree(0).probe_into(&[1], &mut out);
        assert!(out.is_empty());
    }
}
