//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) for section
//! checksums.
//!
//! Table-driven, one byte per step — plenty for the verify pass (which is
//! memory-bandwidth-adjacent even at ~500 MB/s) and dependency-free. The
//! polynomial choice matches zip/png/ethernet, so externally produced
//! files are easy to cross-check with standard tools.

/// One 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Incremental CRC-32 state.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh checksum.
    #[must_use]
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut s = self.state;
        for &b in bytes {
            s = (s >> 8) ^ TABLE[((s ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = s;
    }

    /// The finished checksum value.
    #[must_use]
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut inc = Crc32::new();
        for chunk in data.chunks(37) {
            inc.update(chunk);
        }
        assert_eq!(inc.finish(), crc32(&data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![0u8; 4096];
        let base = crc32(&data);
        for pos in [0usize, 1, 100, 4095] {
            data[pos] ^= 0x10;
            assert_ne!(crc32(&data), base, "flip at {pos} undetected");
            data[pos] ^= 0x10;
        }
    }
}
