//! The v2 container layout: fixed header, checksummed section table,
//! 64-byte-aligned checksummed sections.
//!
//! Byte-level specification lives in `docs/FORMAT.md`; this module is the
//! single implementation of both sides — the streaming [`Packer`] that
//! writes a file once, and the [`Store`] that maps it and serves borrowed
//! slices out of the page cache.
//!
//! ```text
//! offset 0    header        64 bytes, fixed, self-checksummed
//! offset 64   section 0     64-byte-aligned, zero-padded between sections
//!             section 1
//!             …
//!             section table 32 bytes per entry, checksummed from the header
//! ```
//!
//! All integers little-endian. Array sections (`u32`/`u64` payloads) are
//! viewed in place, which is why offsets carry a 64-byte alignment
//! guarantee: an mmap base is page-aligned, so file-offset alignment is
//! memory alignment.

use crate::crc::{crc32, Crc32};
use crate::error::StoreError;
use crate::mmap::{Advice, Mmap};
use std::fs::File;
use std::io::{Seek as _, SeekFrom, Write as _};
use std::path::Path;
use std::sync::Arc;

/// File magic: the first eight bytes of every v2 store.
pub const MAGIC: [u8; 8] = *b"LSHEIDX2";
/// Current (and only) v2 format version.
pub const VERSION: u32 = 2;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 64;
/// Section payload alignment, in bytes.
pub const ALIGN: u64 = 64;
/// Size of one section table entry, in bytes.
pub const TABLE_ENTRY_LEN: usize = 32;

/// The section kinds a v2 store may contain.
///
/// Readers ignore entries with kinds they do not recognise — adding a new
/// section is a backward-compatible change; only layout changes to
/// existing sections bump [`VERSION`] (the versioning rules are spelled
/// out in `docs/FORMAT.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum SectionKind {
    /// Opaque index metadata (config, lengths), codec-encoded by the
    /// packing layer.
    Meta = 1,
    /// `u64` pairs: each partition's `(lower, upper)` size bounds.
    PartitionBounds = 2,
    /// `u64` per partition: its domain count.
    PartitionLens = 3,
    /// `u32` array: every prefix tree's key columns, concatenated.
    TreeKeys = 4,
    /// `u32` array: every prefix tree's id columns, concatenated.
    TreeIds = 5,
    /// `u32` array: domain ids, ascending — the sketch id map.
    SketchIds = 6,
    /// `u64` per domain: its cardinality, in sketch-id order.
    SketchSizes = 7,
    /// `u64` array: `num_perm` signature slots per domain, in sketch-id
    /// order.
    SketchSlots = 8,
    /// `u64` per record plus one terminator: byte offsets into
    /// [`SectionKind::Records`].
    RecordOffsets = 9,
    /// Opaque per-domain record blobs (provenance strings), sliced by
    /// [`SectionKind::RecordOffsets`].
    Records = 10,
    /// Opaque tiered-mutation state, codec-encoded by the packing layer:
    /// sealed segment entry triples, the tombstone list, and the id
    /// allocator's high-water mark. Absent on a fully compacted index;
    /// pre-segment readers skip it (additive section).
    Segments = 11,
}

impl SectionKind {
    /// Human-readable section name, used in every error that names one.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Meta => "meta",
            Self::PartitionBounds => "partition bounds",
            Self::PartitionLens => "partition lens",
            Self::TreeKeys => "tree keys",
            Self::TreeIds => "tree ids",
            Self::SketchIds => "sketch ids",
            Self::SketchSizes => "sketch sizes",
            Self::SketchSlots => "sketch slots",
            Self::RecordOffsets => "record offsets",
            Self::Records => "records",
            Self::Segments => "segments",
        }
    }

    fn from_u32(v: u32) -> Option<Self> {
        Some(match v {
            1 => Self::Meta,
            2 => Self::PartitionBounds,
            3 => Self::PartitionLens,
            4 => Self::TreeKeys,
            5 => Self::TreeIds,
            6 => Self::SketchIds,
            7 => Self::SketchSizes,
            8 => Self::SketchSlots,
            9 => Self::RecordOffsets,
            10 => Self::Records,
            11 => Self::Segments,
            _ => return None,
        })
    }
}

/// One parsed section table entry.
#[derive(Debug, Clone, Copy)]
pub struct Section {
    /// What the section holds.
    pub kind: SectionKind,
    /// Payload byte offset from the start of the file (64-byte aligned).
    pub offset: u64,
    /// Payload length in bytes (excluding alignment padding).
    pub len: u64,
    /// CRC-32 of the payload bytes.
    pub crc: u32,
}

// ------------------------------------------------------------------ Packer

/// Streaming writer for a v2 store file.
///
/// Sections are written once, in order, through a running checksum — the
/// packer never buffers a section in memory, so packing a corpus larger
/// than RAM is a straight streaming copy. The section table and the
/// self-checksummed header are written at [`finish`](Packer::finish).
#[derive(Debug)]
pub struct Packer {
    file: File,
    pos: u64,
    sections: Vec<Section>,
    current: Option<(SectionKind, u64, Crc32)>,
}

impl Packer {
    /// Creates (truncating) the output file and reserves the header.
    ///
    /// # Errors
    /// Propagates file creation/write failure.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let mut file = File::create(path)?;
        file.write_all(&[0u8; HEADER_LEN])?;
        Ok(Self {
            file,
            pos: HEADER_LEN as u64,
            sections: Vec::new(),
            current: None,
        })
    }

    fn pad_to_align(&mut self) -> std::io::Result<()> {
        let rem = self.pos % ALIGN;
        if rem != 0 {
            let pad = (ALIGN - rem) as usize;
            self.file.write_all(&vec![0u8; pad])?;
            self.pos += pad as u64;
        }
        Ok(())
    }

    /// Starts a new section of the given kind.
    ///
    /// # Errors
    /// Propagates padding-write failure.
    ///
    /// # Panics
    /// Panics if a section is already open or the kind was written before
    /// (both are packing bugs, not file conditions).
    pub fn begin_section(&mut self, kind: SectionKind) -> std::io::Result<()> {
        assert!(self.current.is_none(), "previous section still open");
        assert!(
            self.sections.iter().all(|s| s.kind != kind),
            "section {:?} written twice",
            kind
        );
        self.pad_to_align()?;
        self.current = Some((kind, self.pos, Crc32::new()));
        Ok(())
    }

    /// Appends raw bytes to the open section.
    ///
    /// # Errors
    /// Propagates write failure.
    ///
    /// # Panics
    /// Panics if no section is open.
    pub fn write(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let (_, _, crc) = self
            .current
            .as_mut()
            .expect("write outside an open section");
        crc.update(bytes);
        self.file.write_all(bytes)?;
        self.pos += bytes.len() as u64;
        Ok(())
    }

    /// Appends a `u32` slice (little-endian) to the open section.
    ///
    /// # Errors
    /// Propagates write failure.
    pub fn write_u32s(&mut self, values: &[u32]) -> std::io::Result<()> {
        let mut buf = [0u8; 4096];
        for chunk in values.chunks(1024) {
            for (i, v) in chunk.iter().enumerate() {
                buf[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
            }
            self.write(&buf[..chunk.len() * 4])?;
        }
        Ok(())
    }

    /// Appends a `u64` slice (little-endian) to the open section.
    ///
    /// # Errors
    /// Propagates write failure.
    pub fn write_u64s(&mut self, values: &[u64]) -> std::io::Result<()> {
        let mut buf = [0u8; 4096];
        for chunk in values.chunks(512) {
            for (i, v) in chunk.iter().enumerate() {
                buf[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
            }
            self.write(&buf[..chunk.len() * 8])?;
        }
        Ok(())
    }

    /// Closes the open section, recording its checksum.
    ///
    /// # Panics
    /// Panics if no section is open.
    pub fn end_section(&mut self) {
        let (kind, start, crc) = self.current.take().expect("no open section to end");
        self.sections.push(Section {
            kind,
            offset: start,
            len: self.pos - start,
            crc: crc.finish(),
        });
    }

    /// Bytes written so far (header + sections + padding).
    #[must_use]
    pub fn bytes_written(&self) -> u64 {
        self.pos
    }

    /// Writes the section table, patches the header, and syncs the file.
    ///
    /// # Errors
    /// Propagates write/sync failure.
    ///
    /// # Panics
    /// Panics if a section is still open.
    pub fn finish(mut self) -> std::io::Result<()> {
        assert!(self.current.is_none(), "finish with an open section");
        self.pad_to_align()?;
        let table_offset = self.pos;
        let mut table = Vec::with_capacity(self.sections.len() * TABLE_ENTRY_LEN);
        for s in &self.sections {
            table.extend_from_slice(&(s.kind as u32).to_le_bytes());
            table.extend_from_slice(&0u32.to_le_bytes());
            table.extend_from_slice(&s.offset.to_le_bytes());
            table.extend_from_slice(&s.len.to_le_bytes());
            table.extend_from_slice(&s.crc.to_le_bytes());
            table.extend_from_slice(&0u32.to_le_bytes());
        }
        self.file.write_all(&table)?;

        let mut header = [0u8; HEADER_LEN];
        header[0..8].copy_from_slice(&MAGIC);
        header[8..12].copy_from_slice(&VERSION.to_le_bytes());
        header[12..16].copy_from_slice(&(HEADER_LEN as u32).to_le_bytes());
        header[16..20].copy_from_slice(&(self.sections.len() as u32).to_le_bytes());
        header[24..32].copy_from_slice(&table_offset.to_le_bytes());
        header[32..36].copy_from_slice(&crc32(&table).to_le_bytes());
        let hcrc = crc32(&header[0..36]);
        header[36..40].copy_from_slice(&hcrc.to_le_bytes());
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&header)?;
        self.file.sync_all()
    }
}

// ------------------------------------------------------------------- Store

/// An opened, memory-mapped v2 store.
///
/// Cloning is cheap (the mapping is shared through an [`Arc`]); every
/// accessor returns slices *borrowed from the mapping*, so reading a
/// 20 GB store allocates a few hundred bytes of section metadata and
/// nothing else.
///
/// Opening validates structure — magic, version, the header's and the
/// section table's checksums, section bounds and alignment. Payload
/// checksums are verified by [`verify`](Store::verify) (an explicit
/// sequential pass), so `open` stays O(sections), not O(file): that split
/// is what lets a server boot in milliseconds while still being able to
/// prove a file sound end to end.
#[derive(Debug, Clone)]
pub struct Store {
    mmap: Arc<Mmap>,
    sections: Vec<Section>,
}

impl Store {
    /// Opens and structurally validates a store file.
    ///
    /// # Errors
    /// [`StoreError`] on I/O failure or any structural violation: bad
    /// magic, unsupported version, truncation, header/table checksum
    /// mismatch, out-of-bounds / misaligned / duplicate sections.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let file = File::open(path)?;
        let mmap = Mmap::map_file(&file)?;
        drop(file);
        Self::from_mmap(Arc::new(mmap))
    }

    fn from_mmap(mmap: Arc<Mmap>) -> Result<Self, StoreError> {
        let bytes = mmap.as_slice();
        if bytes.len() < HEADER_LEN {
            return Err(StoreError::Truncated {
                reading: "header",
                needed: HEADER_LEN as u64,
                actual: bytes.len() as u64,
            });
        }
        if bytes[0..8] != MAGIC {
            let mut found = [0u8; 8];
            found.copy_from_slice(&bytes[0..8]);
            return Err(StoreError::BadMagic { found });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let stored_hcrc = u32::from_le_bytes(bytes[36..40].try_into().expect("4 bytes"));
        let computed_hcrc = crc32(&bytes[0..36]);
        if stored_hcrc != computed_hcrc {
            return Err(StoreError::HeaderChecksum {
                stored: stored_hcrc,
                computed: computed_hcrc,
            });
        }
        let header_len = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
        if header_len as usize != HEADER_LEN {
            return Err(StoreError::Corrupt {
                section: "header",
                detail: "unexpected header length",
            });
        }
        let section_count = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes")) as usize;
        let table_offset = u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes"));
        let stored_tcrc = u32::from_le_bytes(bytes[32..36].try_into().expect("4 bytes"));
        let table_len = (section_count * TABLE_ENTRY_LEN) as u64;
        let table_end = table_offset
            .checked_add(table_len)
            .ok_or(StoreError::Truncated {
                reading: "section table",
                needed: u64::MAX,
                actual: bytes.len() as u64,
            })?;
        if table_offset < HEADER_LEN as u64 || table_end > bytes.len() as u64 {
            return Err(StoreError::Truncated {
                reading: "section table",
                needed: table_end,
                actual: bytes.len() as u64,
            });
        }
        let table = &bytes[table_offset as usize..table_end as usize];
        let computed_tcrc = crc32(table);
        if stored_tcrc != computed_tcrc {
            return Err(StoreError::TableChecksum {
                stored: stored_tcrc,
                computed: computed_tcrc,
            });
        }
        let mut sections = Vec::with_capacity(section_count);
        for entry in table.chunks_exact(TABLE_ENTRY_LEN) {
            let kind_raw = u32::from_le_bytes(entry[0..4].try_into().expect("4 bytes"));
            // Unknown kinds are skipped, not rejected: adding sections is
            // the format's backward-compatible evolution path.
            let Some(kind) = SectionKind::from_u32(kind_raw) else {
                continue;
            };
            let offset = u64::from_le_bytes(entry[8..16].try_into().expect("8 bytes"));
            let len = u64::from_le_bytes(entry[16..24].try_into().expect("8 bytes"));
            let crc = u32::from_le_bytes(entry[24..28].try_into().expect("4 bytes"));
            let end = offset.checked_add(len).ok_or(StoreError::SectionBounds {
                section: kind.name(),
            })?;
            if offset < HEADER_LEN as u64 || end > bytes.len() as u64 {
                return Err(StoreError::SectionBounds {
                    section: kind.name(),
                });
            }
            if offset % ALIGN != 0 {
                return Err(StoreError::Misaligned {
                    section: kind.name(),
                });
            }
            if sections.iter().any(|s: &Section| s.kind == kind) {
                return Err(StoreError::DuplicateSection {
                    section: kind.name(),
                });
            }
            sections.push(Section {
                kind,
                offset,
                len,
                crc,
            });
        }
        Ok(Self { mmap, sections })
    }

    /// Verifies every section's payload checksum in one sequential pass.
    ///
    /// # Errors
    /// [`StoreError::SectionChecksum`] naming the first damaged section.
    pub fn verify(&self) -> Result<(), StoreError> {
        self.mmap.advise(Advice::Sequential);
        for s in &self.sections {
            let payload = &self.mmap.as_slice()[s.offset as usize..(s.offset + s.len) as usize];
            let computed = crc32(payload);
            if computed != s.crc {
                return Err(StoreError::SectionChecksum {
                    section: s.kind.name(),
                    stored: s.crc,
                    computed,
                });
            }
        }
        self.mmap.advise(Advice::Random);
        Ok(())
    }

    /// The parsed section table, in file order.
    #[must_use]
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Total file size in bytes.
    #[must_use]
    pub fn file_len(&self) -> usize {
        self.mmap.len()
    }

    /// Forwards paging advice for the whole mapping.
    pub fn advise(&self, advice: Advice) {
        self.mmap.advise(advice);
    }

    fn section(&self, kind: SectionKind) -> Option<&Section> {
        self.sections.iter().find(|s| s.kind == kind)
    }

    /// True if the store contains a section of this kind.
    #[must_use]
    pub fn has(&self, kind: SectionKind) -> bool {
        self.section(kind).is_some()
    }

    /// The raw payload bytes of a section.
    ///
    /// # Errors
    /// [`StoreError::MissingSection`] if absent.
    pub fn bytes(&self, kind: SectionKind) -> Result<&[u8], StoreError> {
        let s = self.section(kind).ok_or(StoreError::MissingSection {
            section: kind.name(),
        })?;
        Ok(&self.mmap.as_slice()[s.offset as usize..(s.offset + s.len) as usize])
    }

    /// Views a section's payload as a `u32` array, in place.
    ///
    /// # Errors
    /// [`StoreError::MissingSection`], or [`StoreError::Corrupt`] if the
    /// payload length is not a multiple of 4.
    pub fn u32s(&self, kind: SectionKind) -> Result<&[u32], StoreError> {
        let bytes = self.bytes(kind)?;
        view_as(bytes, kind)
    }

    /// Views a section's payload as a `u64` array, in place.
    ///
    /// # Errors
    /// [`StoreError::MissingSection`], or [`StoreError::Corrupt`] if the
    /// payload length is not a multiple of 8.
    pub fn u64s(&self, kind: SectionKind) -> Result<&[u64], StoreError> {
        let bytes = self.bytes(kind)?;
        view_as(bytes, kind)
    }
}

/// Reinterprets aligned little-endian bytes as a primitive slice.
///
/// Sound because (a) section offsets are 64-byte aligned within a
/// page-aligned mapping, so the pointer alignment always holds (checked
/// anyway), (b) the target types have no invalid bit patterns, and (c) the
/// workspace only builds little-endian (enforced in `lib.rs`).
fn view_as<T: Pod>(bytes: &[u8], kind: SectionKind) -> Result<&[T], StoreError> {
    let size = std::mem::size_of::<T>();
    if !bytes.len().is_multiple_of(size) {
        return Err(StoreError::Corrupt {
            section: kind.name(),
            detail: "payload length is not a multiple of the element size",
        });
    }
    if bytes.is_empty() {
        return Ok(&[]);
    }
    let ptr = bytes.as_ptr();
    if !(ptr as usize).is_multiple_of(std::mem::align_of::<T>()) {
        return Err(StoreError::Misaligned {
            section: kind.name(),
        });
    }
    // SAFETY: alignment and length checked above; T is a plain integer
    // type with no invalid representations; the borrow pins the mapping.
    Ok(unsafe { std::slice::from_raw_parts(ptr.cast::<T>(), bytes.len() / size) })
}

/// Marker for the plain-old-data types [`view_as`] may produce.
trait Pod: Copy {}
impl Pod for u32 {}
impl Pod for u64 {}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("lshe_store_{name}_{}.v2", std::process::id()))
    }

    fn sample(path: &Path) {
        let mut p = Packer::create(path).expect("create");
        p.begin_section(SectionKind::Meta).expect("begin");
        p.write(b"opaque metadata").expect("write");
        p.end_section();
        p.begin_section(SectionKind::SketchIds).expect("begin");
        p.write_u32s(&[1, 2, 3, 5, 8]).expect("write");
        p.end_section();
        p.begin_section(SectionKind::SketchSizes).expect("begin");
        p.write_u64s(&[10, 20, 30, 50, 80]).expect("write");
        p.end_section();
        p.finish().expect("finish");
    }

    #[test]
    fn roundtrip_sections() {
        let path = tmp("roundtrip");
        sample(&path);
        let store = Store::open(&path).expect("open");
        store.verify().expect("verify");
        assert_eq!(
            store.bytes(SectionKind::Meta).expect("meta"),
            b"opaque metadata"
        );
        assert_eq!(
            store.u32s(SectionKind::SketchIds).expect("ids"),
            &[1, 2, 3, 5, 8]
        );
        assert_eq!(
            store.u64s(SectionKind::SketchSizes).expect("sizes"),
            &[10, 20, 30, 50, 80]
        );
        assert!(store.has(SectionKind::Meta));
        assert!(!store.has(SectionKind::Records));
        assert!(matches!(
            store.bytes(SectionKind::Records),
            Err(StoreError::MissingSection { section: "records" })
        ));
        // Every section lands on the alignment grid.
        for s in store.sections() {
            assert_eq!(s.offset % ALIGN, 0, "{:?}", s.kind);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_store_roundtrips() {
        let path = tmp("empty");
        Packer::create(&path)
            .expect("create")
            .finish()
            .expect("finish");
        let store = Store::open(&path).expect("open");
        store.verify().expect("verify");
        assert!(store.sections().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_rejected() {
        let path = tmp("magic");
        sample(&path);
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).expect("write");
        assert!(matches!(
            Store::open(&path).unwrap_err(),
            StoreError::BadMagic { .. }
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn future_version_rejected() {
        let path = tmp("version");
        sample(&path);
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[8] = 99;
        // Keep the header checksum valid so the version check is what trips.
        let hcrc = crc32(&bytes[0..36]);
        bytes[36..40].copy_from_slice(&hcrc.to_le_bytes());
        std::fs::write(&path, &bytes).expect("write");
        assert!(matches!(
            Store::open(&path).unwrap_err(),
            StoreError::UnsupportedVersion { found: 99, .. }
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_corruption_detected() {
        let path = tmp("hcrc");
        sample(&path);
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[17] ^= 0x40; // section count byte
        std::fs::write(&path, &bytes).expect("write");
        assert!(matches!(
            Store::open(&path).unwrap_err(),
            StoreError::HeaderChecksum { .. }
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_detected() {
        let path = tmp("trunc");
        sample(&path);
        let bytes = std::fs::read(&path).expect("read");
        for cut in [0usize, 10, HEADER_LEN, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..cut]).expect("write");
            let err = Store::open(&path).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::Truncated { .. } | StoreError::TableChecksum { .. }
                ),
                "cut at {cut}: {err}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn payload_corruption_found_by_verify_with_section_name() {
        let path = tmp("payload");
        sample(&path);
        let store = Store::open(&path).expect("open");
        let ids_off = store
            .sections()
            .iter()
            .find(|s| s.kind == SectionKind::SketchIds)
            .expect("ids section")
            .offset as usize;
        drop(store);
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[ids_off] ^= 0x01;
        std::fs::write(&path, &bytes).expect("write");
        // Structural open still succeeds — payloads are lazy.
        let store = Store::open(&path).expect("open");
        match store.verify().unwrap_err() {
            StoreError::SectionChecksum { section, .. } => assert_eq!(section, "sketch ids"),
            other => panic!("wrong error: {other}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_display_names_sections() {
        let e = StoreError::SectionChecksum {
            section: "tree keys",
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("tree keys"));
        assert_eq!(e.section(), Some("tree keys"));
    }
}
