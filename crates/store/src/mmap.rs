//! A std-only `mmap(2)` facade.
//!
//! Serving an index in place needs one thing the standard library does not
//! expose: "give me the file's bytes as a borrowable region backed by the
//! page cache". With no crates.io access, this module declares the three
//! libc symbols it needs — `mmap`, `munmap`, `madvise` — and builds a safe
//! read-only mapping type over them, the same shape as `lshe-serve`'s
//! epoll/poll shim.
//!
//! Mappings are always `PROT_READ` + `MAP_PRIVATE`: the store never writes
//! through a mapping, and a private mapping keeps a concurrently-truncated
//! file from feeding writes back. A mapping outlives the [`std::fs::File`]
//! it was created from (the kernel keeps the inode pinned), so callers can
//! drop the file handle immediately after mapping.

pub use sys::Mmap;

/// Paging advice forwarded to `madvise(2)`. Advisory only: failures are
/// ignored (a kernel that rejects advice still serves the mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advice {
    /// Expect sequential access (aggressive readahead) — the verify pass.
    Sequential,
    /// Expect random access (minimal readahead) — query serving.
    Random,
    /// Populate the page cache soon — warmup before a latency-sensitive
    /// benchmark or cutover.
    WillNeed,
}

#[cfg(unix)]
mod sys {
    //! POSIX `mmap` backend. The constants used here (`PROT_READ = 1`,
    //! `MAP_PRIVATE = 2`, and the three `MADV_*` values) have the same
    //! numeric values on Linux and the BSD family, so one module covers
    //! every Unix this workspace builds on.

    use super::Advice;
    use std::fs::File;
    use std::io;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::AsRawFd;

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;
    const MADV_RANDOM: c_int = 1;
    const MADV_SEQUENTIAL: c_int = 2;
    const MADV_WILLNEED: c_int = 3;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
        fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
    }

    /// `MAP_FAILED`: mmap's error sentinel is all-ones, not null.
    const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    /// A read-only, page-cache-backed mapping of an entire file.
    #[derive(Debug)]
    pub struct Mmap {
        /// Null only for the zero-length mapping (mmap rejects `len == 0`,
        /// so empty files get a dangling empty slice instead).
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is immutable (PROT_READ) for its whole lifetime,
    // so shared references to its bytes are valid from any thread.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Maps the whole of `file` read-only.
        ///
        /// # Errors
        /// Propagates `mmap` failure (or the metadata read used for the
        /// length).
        pub fn map_file(file: &File) -> io::Result<Self> {
            let len = file.metadata()?.len();
            let len = usize::try_from(len).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidInput, "file exceeds address space")
            })?;
            if len == 0 {
                return Ok(Self {
                    ptr: std::ptr::null_mut(),
                    len: 0,
                });
            }
            // SAFETY: fd is a live file descriptor and len matches the file
            // size; the kernel validates everything else.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr == MAP_FAILED {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { ptr, len })
        }

        /// The mapped bytes.
        #[must_use]
        pub fn as_slice(&self) -> &[u8] {
            if self.len == 0 {
                return &[];
            }
            // SAFETY: ptr/len describe a live PROT_READ mapping owned by
            // self; the region is never written through this mapping.
            unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
        }

        /// Mapping length in bytes.
        #[must_use]
        pub fn len(&self) -> usize {
            self.len
        }

        /// True for the mapping of an empty file.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len == 0
        }

        /// Forwards paging advice to the kernel. Best-effort: errors are
        /// swallowed (advice never affects correctness).
        pub fn advise(&self, advice: Advice) {
            if self.len == 0 {
                return;
            }
            let flag = match advice {
                Advice::Sequential => MADV_SEQUENTIAL,
                Advice::Random => MADV_RANDOM,
                Advice::WillNeed => MADV_WILLNEED,
            };
            // SAFETY: ptr/len describe a live mapping owned by self.
            unsafe { madvise(self.ptr, self.len, flag) };
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            if self.len > 0 {
                // SAFETY: ptr/len describe a live mapping owned by this
                // instance and unmapped exactly once.
                unsafe { munmap(self.ptr, self.len) };
            }
        }
    }
}

#[cfg(not(unix))]
compile_error!(
    "lshe-store's in-place reader needs POSIX mmap(2); \
     no backend exists for this target"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn tmp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("lshe_mmap_{name}_{}", std::process::id()));
        let mut f = std::fs::File::create(&path).expect("create");
        f.write_all(bytes).expect("write");
        path
    }

    #[test]
    fn maps_file_contents() {
        let path = tmp("basic", b"hello mapped world");
        let file = std::fs::File::open(&path).expect("open");
        let map = Mmap::map_file(&file).expect("map");
        drop(file); // mapping must outlive the handle
        assert_eq!(map.as_slice(), b"hello mapped world");
        assert_eq!(map.len(), 18);
        assert!(!map.is_empty());
        map.advise(Advice::Sequential);
        map.advise(Advice::Random);
        map.advise(Advice::WillNeed);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_empty() {
        let path = tmp("empty", b"");
        let file = std::fs::File::open(&path).expect("open");
        let map = Mmap::map_file(&file).expect("map");
        assert!(map.is_empty());
        assert_eq!(map.as_slice(), b"");
        map.advise(Advice::Random); // no-op, must not crash
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapping_shared_across_threads() {
        let body: Vec<u8> = (0..8192u32).flat_map(u32::to_le_bytes).collect();
        let path = tmp("threads", &body);
        let file = std::fs::File::open(&path).expect("open");
        let map = std::sync::Arc::new(Mmap::map_file(&file).expect("map"));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&map);
                std::thread::spawn(move || m.as_slice().iter().map(|&b| b as u64).sum::<u64>())
            })
            .collect();
        let sums: Vec<u64> = handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect();
        assert!(sums.windows(2).all(|w| w[0] == w[1]));
        std::fs::remove_file(&path).ok();
    }
}
