//! `lshe-store`: the memory-mapped, checksummed on-disk container format
//! (v2) for LSH Ensemble indexes.
//!
//! The v1 persistence layer decodes a container into heap structures —
//! fine for small corpora, but boot time and resident memory both scale
//! with corpus size. This crate defines a format that is *served in
//! place*: a packed file is `mmap(2)`-ed, structurally validated in
//! microseconds, and queried through zero-copy views while the kernel's
//! page cache holds the hot set.
//!
//! Pieces, bottom up:
//!
//! - [`mmap`]: a std-only `mmap(2)`/`madvise(2)` FFI shim (no libc crate).
//! - [`crc`]: CRC-32 (IEEE) for header, table, and section checksums.
//! - [`mod@format`]: the container layout — [`Packer`] writes a file once,
//!   streaming; [`Store`] maps it and hands out borrowed section slices.
//! - [`views`]: [`SketchesView`] and [`PartitionView`], the zero-copy
//!   structures the `lshe-core` mmap backend queries.
//! - [`error`]: [`StoreError`], which names the section at fault for
//!   every corruption it reports.
//!
//! This crate knows bytes, not index semantics: what the sections *mean*
//! (partitions, tuning, ranking) lives in `lshe-core`'s mmap backend and
//! the serve layer's packing code.

// The format is little-endian on disk and views integers in place, so a
// big-endian build would silently read garbage. Fail loudly instead.
#[cfg(target_endian = "big")]
compile_error!(
    "lshe-store views little-endian sections in place; big-endian targets are unsupported"
);

pub mod crc;
pub mod error;
pub mod format;
pub mod mmap;
pub mod views;

pub use crc::{crc32, Crc32};
pub use error::StoreError;
pub use format::{Packer, Section, SectionKind, Store, ALIGN, HEADER_LEN, MAGIC, VERSION};
pub use mmap::{Advice, Mmap};
pub use views::{PartitionView, SketchesView, TreeView};
