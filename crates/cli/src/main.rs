//! Thin binary wrapper over the `lshe-cli` library.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match lshe_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
