//! # lshe-cli
//!
//! The `lshe` command-line tool: build a persistent LSH Ensemble index over
//! a directory of CSV files, then run containment / top-k searches against
//! it — the end-user workflow the paper motivates (find joinable open-data
//! tables for a given attribute).
//!
//! ```text
//! lshe index --dir ./opendata --out tables.lshe [--partitions 32]
//!            [--min-size 10] [--ranked true]
//! lshe ingest --index tables.lshe --dir ./newdata [--min-size 10]
//! lshe compact --index tables.lshe
//! lshe query --index tables.lshe --csv mine.csv --column Partner
//!            [--threshold 0.7] [--top-k 10]
//! lshe stats --index tables.lshe
//! lshe serve --index tables.lshe [--addr 127.0.0.1:7878] [--threads N]
//!            [--cache 1024] [--shards 1] [--shard-id K] [--mmap]
//!            [--merge-policy leveled] [--compact-segments 8]
//!            [--compact-tombstone-pct 25]
//! lshe pack --index tables.lshe [--out tables.lshepk]
//! lshe split --index tables.lshe --shards 4 [--out prefix] [--pack]
//! lshe cluster --shards 127.0.0.1:7878,127.0.0.1:7879 [--addr 127.0.0.1:7979]
//! ```
//!
//! All logic lives in this library so it is unit-testable; `main.rs` is a
//! thin wrapper. The `.lshe` container format lives in `lshe-serve` (the
//! serving layer shares it) and is re-exported here unchanged.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub use lshe_serve::container;

use bytes::Bytes;
use container::{IndexContainer, IndexKind, LoadError};
use lshe_core::{MergePolicyKind, Query, QueryError};
use lshe_corpus::{Catalog, CsvDocument, Domain};
use lshe_minhash::MinHasher;
use lshe_serve::engine::{Engine, EngineError};
use lshe_serve::server::{start, ServerConfig};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

/// CLI failures, printable to stderr.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Usage(String),
    /// Filesystem problem.
    Io(std::io::Error),
    /// Corrupt or mismatched index file.
    Index(String),
    /// Bad query input (missing column, empty domain, malformed CSV).
    Query(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Usage(msg) => write!(f, "usage error: {msg}\n\n{USAGE}"),
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Index(msg) => write!(f, "index error: {msg}"),
            Self::Query(msg) => write!(f, "query error: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Loads an index file of either generation (v1 `.lshe` or packed v2),
/// keeping plain filesystem failures in the `Io` lane and rendering
/// decode/checksum failures — which carry the path and failing section —
/// as `Index` errors.
fn load_container(path: &str) -> Result<IndexContainer, CliError> {
    IndexContainer::load(Path::new(path)).map_err(|e| match e {
        LoadError::Io { source, .. } => CliError::Io(source),
        other => CliError::Index(other.to_string()),
    })
}

/// Usage text.
pub const USAGE: &str = "\
lshe — domain search over CSV files (LSH Ensemble, VLDB 2016)

COMMANDS
  lshe index --dir DIR --out FILE [--partitions N] [--min-size M] [--ranked]
      Ingest every *.csv and *.jsonl under DIR (one domain per column/field
      with ≥ M distinct values, default 10), build an N-way equi-depth LSH
      Ensemble (default 32), and write it to FILE. --ranked additionally
      stores domain sketches so `query --top-k`, containment estimates,
      and sharded serving work (costs ~2 KB per domain).

  lshe query --index FILE --csv FILE --column NAME [--threshold T] [--top-k K]
      Search the index with the named column of the given CSV as the query
      domain. Default: threshold search at T = 0.7. With --top-k, return
      the K best domains by estimated containment (requires a ranked index).

  lshe ingest --index FILE --dir DIR [--min-size M]
      Bulk-append every *.csv / *.jsonl domain under DIR (≥ M distinct
      values, default 10) to an existing index: new domains get fresh ids,
      staged mutations from a stopped server's delta log (FILE.delta) are
      folded in first, the index is committed (rebalancing past the skew
      trigger) and rewritten in place. Do NOT run against an index a live
      server is serving — they do not coordinate; use POST /insert there.

  lshe compact --index FILE
      Fold every sealed segment and tombstone into the base index — the
      one O(corpus) step of the tiered mutation lifecycle, run offline.
      Staged delta-log ops (FILE.delta) are applied first, the compacted
      index is rewritten atomically, and the delta log is retired. Same
      caveat as ingest: never run against an index a live server is
      serving — use its POST /compact endpoint instead.

  lshe stats --index FILE
      Print configuration and per-partition statistics.

  lshe serve --index FILE [--addr HOST:PORT] [--threads N] [--cache C] [--shards S]
             [--shard-id K] [--mmap] [--merge-policy tiered|leveled]
             [--compact-segments N] [--compact-tombstone-pct P]
      Serve the index over HTTP (default 127.0.0.1:7878) until /shutdown
      or SIGKILL. N worker threads (default: available parallelism), an
      LRU query cache of C entries (default 1024, 0 disables), and S
      query shards fanned out per request (default 1; S > 1 needs a
      ranked index). --shard-id marks this process as cluster shard K
      (surfaced on /stats; the coordinator verifies it). A packed v2
      file (from `lshe pack`) is detected by magic, checksum-verified,
      and served straight from the memory-mapped file — read-only, with
      open time independent of index size; --mmap asserts this path was
      taken. Background maintenance: a dedicated thread folds sealed
      segments off the request path, scheduled by --merge-policy
      (default leveled: size-exponential levels, only the overflowing
      level merges); --compact-segments (default 8) and
      --compact-tombstone-pct (default 25) set the trigger thresholds,
      surfaced on /stats.maintenance. Endpoints: GET /health /stats,
      POST /query /topk /batch /insert /remove /commit /compact
      /reload /shutdown — see docs/API.md.

  lshe pack --index FILE [--out FILE.lshepk]
      Pack a ranked v1 index into the checksummed, memory-mappable v2
      format (magic LSHEIDX2, see docs/FORMAT.md). Default output: FILE
      minus .lshe, plus .lshepk. The packed file is read-only; keep the
      source container for future mutations and re-pack.

  lshe split --index FILE --shards N [--out PREFIX] [--pack]
      Split a ranked index into N shard files PREFIX.shard0.lshe …
      PREFIX.shardN-1.lshe (default PREFIX: FILE minus .lshe), placing
      each domain by id % N — the same routing the coordinator and
      in-process sharding use, so a cluster serving the split answers
      bit-identically to `lshe serve --shards N` over FILE. With
      --pack, each shard is written as a packed v2 file (.lshepk) ready
      for `lshe serve --mmap`.

  lshe cluster --shards ADDR,ADDR,... [--addr HOST:PORT] [--hedge-ms H]
               [--connect-timeout-ms C] [--read-timeout-ms R] [--probe-ms P]
      Run a coordinator (default 127.0.0.1:7979) over shard servers
      listed IN SHARD-ID ORDER. Serves the same endpoints as `lshe
      serve`, scattering reads across shards with hedged retries after
      H ms (default 150) and routing /insert & /remove by id % N.
      Shard calls use a C ms connect deadline (default 1000) and an
      R ms read deadline (default 30000); shard health is probed every
      P ms (default 2000). /shutdown drains the coordinator only.";

/// Simple `--key [value]` parser for one subcommand.
///
/// A flag immediately followed by another `--flag` (or by the end of the
/// argument list) is a *bare* boolean flag: `--ranked` and
/// `--ranked true` are equivalent. Repeating a flag is an error.
#[derive(Debug)]
struct Flags {
    pairs: Vec<(String, Option<String>)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut pairs: Vec<(String, Option<String>)> = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(k) = it.next() {
            let key = k
                .strip_prefix("--")
                .filter(|k| !k.is_empty())
                .ok_or_else(|| CliError::Usage(format!("unexpected argument {k:?}")))?;
            if pairs.iter().any(|(existing, _)| existing == key) {
                return Err(CliError::Usage(format!(
                    "duplicate flag --{key}: each flag may be given once"
                )));
            }
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => Some(it.next().expect("peeked").clone()),
                _ => None,
            };
            pairs.push((key.to_owned(), value));
        }
        Ok(Self { pairs })
    }

    /// The flag's value: `Ok(None)` when absent, an error when the flag
    /// was given bare but the caller needs a value.
    fn get(&self, key: &str) -> Result<Option<&str>, CliError> {
        match self.pairs.iter().find(|(k, _)| k == key) {
            None => Ok(None),
            Some((_, Some(v))) => Ok(Some(v.as_str())),
            Some((_, None)) => Err(CliError::Usage(format!("--{key} requires a value"))),
        }
    }

    fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key)?
            .ok_or_else(|| CliError::Usage(format!("--{key} is required")))
    }

    fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.get(key)? {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{key}: cannot parse {v:?}"))),
        }
    }

    /// Boolean flag: absent → `false`, bare → `true`, valued → parsed.
    fn get_bool(&self, key: &str) -> Result<bool, CliError> {
        match self.pairs.iter().find(|(k, _)| k == key) {
            None => Ok(false),
            Some((_, None)) => Ok(true),
            Some((_, Some(v))) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{key}: cannot parse {v:?} as bool"))),
        }
    }
}

/// Entry point: dispatches a full argument vector (without `argv[0]`) and
/// returns the text to print on success.
///
/// # Errors
/// [`CliError`] on any failure; the caller prints it and exits non-zero.
pub fn run(args: &[String]) -> Result<String, CliError> {
    match args.first().map(String::as_str) {
        Some("index") => cmd_index(&Flags::parse(&args[1..])?),
        Some("ingest") => cmd_ingest(&Flags::parse(&args[1..])?),
        Some("compact") => cmd_compact(&Flags::parse(&args[1..])?),
        Some("query") => cmd_query(&Flags::parse(&args[1..])?),
        Some("stats") => cmd_stats(&Flags::parse(&args[1..])?),
        Some("serve") => cmd_serve(&Flags::parse(&args[1..])?),
        Some("pack") => cmd_pack(&Flags::parse(&args[1..])?),
        Some("split") => cmd_split(&Flags::parse(&args[1..])?),
        Some("cluster") => cmd_cluster(&Flags::parse(&args[1..])?),
        Some("help") | None => Ok(USAGE.to_owned()),
        Some(other) => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

fn cmd_index(flags: &Flags) -> Result<String, CliError> {
    let dir = flags.require("dir")?.to_owned();
    let out = flags.require("out")?.to_owned();
    let partitions: usize = flags.get_parsed("partitions", 32)?;
    let min_size: usize = flags.get_parsed("min-size", 10)?;
    let ranked: bool = flags.get_bool("ranked")?;
    if partitions == 0 {
        return Err(CliError::Usage("--partitions must be positive".into()));
    }

    let catalog = ingest_dir(Path::new(&dir), min_size)?;
    if catalog.is_empty() {
        return Err(CliError::Query(format!(
            "no domains with ≥ {min_size} distinct values found under {dir}"
        )));
    }
    let container = IndexContainer::build(&catalog, partitions, ranked);
    std::fs::write(&out, container.to_bytes())?;
    let mut report = String::new();
    let _ = writeln!(
        report,
        "indexed {} domains from {} into {out}",
        catalog.len(),
        dir
    );
    let _ = writeln!(
        report,
        "partitions: {partitions}, ranked sketches: {}",
        if ranked { "yes" } else { "no" }
    );
    Ok(report)
}

/// Bulk-appends a directory of CSV/JSONL domains to a stored index — the
/// mutation lifecycle (stage → commit → rebalance) driven from the CLI.
/// Any staged server mutations sitting in the `FILE.delta` sidecar are
/// folded in first (append order preserved), so an offline ingest never
/// discards a stopped server's uncommitted work.
///
/// The index file must not be concurrently served: `ingest` and
/// `lshe serve` do not coordinate, and a live server's next commit would
/// rewrite the file from its own (pre-ingest) snapshot. Stop the server
/// first, or ingest through its `POST /insert` endpoint instead.
fn cmd_ingest(flags: &Flags) -> Result<String, CliError> {
    let index_path = flags.require("index")?.to_owned();
    let dir = flags.require("dir")?.to_owned();
    let min_size: usize = flags.get_parsed("min-size", 10)?;

    let mut container = load_container(&index_path)?;
    if container.kind() == IndexKind::Mapped {
        return Err(CliError::Index(format!(
            "{index_path} is a packed v2 file and read-only; ingest into the source \
             .lshe container, then re-run `lshe pack`"
        )));
    }

    // Fold any staged delta-log ops first. A torn or corrupt log is a
    // typed error — never a panic, never silent data loss. The log
    // header's allocator mark is honoured too, so ids the server burned
    // on staged-then-removed inserts are never reissued here.
    let log = container::DeltaLog::sidecar(Path::new(&index_path));
    let (mark, replayed) = log
        .read_with_mark()
        .map_err(|e| CliError::Index(format!("{}: {e}", log.path().display())))?;
    container.reserve_next_id(mark);
    let replayed_count = replayed
        .iter()
        .filter(|op| !matches!(op, container::DeltaOp::Commit { .. }))
        .count();
    if !replayed.is_empty() {
        container
            .apply(&replayed)
            .map_err(|e| CliError::Index(format!("replaying {}: {e}", log.path().display())))?;
    }

    let catalog = ingest_dir(Path::new(&dir), min_size)?;
    if catalog.is_empty() && replayed_count == 0 {
        return Err(CliError::Query(format!(
            "no domains with ≥ {min_size} distinct values found under {dir}"
        )));
    }
    let hasher = MinHasher::new(container.num_perm());
    // Sketch every appended domain through the batched constructor (one
    // shared hash scratch, worker lanes spawned once for the directory).
    let sets: Vec<&[u64]> = catalog.iter().map(|(_, d)| d.hashes()).collect();
    let signatures = hasher.bulk_signatures(&sets);
    let mut ops = Vec::with_capacity(catalog.len());
    for ((next_id, (id, domain)), signature) in
        (container.next_id()..).zip(catalog.iter()).zip(signatures)
    {
        let meta = catalog.meta(id);
        ops.push(container::DeltaOp::Insert {
            record: container::DomainRecord {
                id: next_id,
                size: domain.len() as u64,
                table: meta.table.clone(),
                column: meta.column.clone(),
            },
            signature,
        });
    }
    let appended = ops.len();
    container
        .apply(&ops)
        .map_err(|e| CliError::Index(e.to_string()))?;
    // Bulk append pays the O(corpus) rewrite anyway, so fold everything —
    // replayed ops, sealed segments, tombstones, the fresh appends — into
    // one compacted base rather than persisting a segment stack.
    let report = container.compact_index();

    // Atomic rewrite, then retire the folded delta log.
    let tmp = format!("{index_path}.tmp");
    std::fs::write(&tmp, container.to_bytes())?;
    std::fs::rename(&tmp, &index_path)?;
    log.clear()?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "ingested {appended} domain(s) from {dir} into {index_path} ({} total)",
        container.len()
    );
    if replayed_count > 0 {
        let _ = writeln!(out, "folded {replayed_count} staged delta-log op(s) first");
    }
    let _ = writeln!(
        out,
        "committed: {} staged insert(s) merged, partitions {}",
        report.merged,
        if report.rebalanced {
            "rebalanced"
        } else {
            "unchanged"
        }
    );
    Ok(out)
}

fn cmd_query(flags: &Flags) -> Result<String, CliError> {
    let index_path = flags.require("index")?.to_owned();
    let csv_path = flags.require("csv")?.to_owned();
    let column = flags.require("column")?.to_owned();
    let threshold: f64 = flags.get_parsed("threshold", 0.7)?;
    let top_k: usize = flags.get_parsed("top-k", 0)?;
    if !(0.0..=1.0).contains(&threshold) {
        return Err(CliError::Usage("--threshold must be in [0, 1]".into()));
    }

    let container = load_container(&index_path)?;

    // Load the query domain from the CSV column.
    let data = std::fs::read(&csv_path)?;
    let doc = CsvDocument::parse(Bytes::from(data))
        .map_err(|e| CliError::Query(format!("{csv_path}: {e}")))?;
    let col_idx = doc
        .header()
        .iter()
        .position(|c| c == &column)
        .ok_or_else(|| {
            CliError::Query(format!(
                "column {column:?} not in {csv_path} (header: {:?})",
                doc.header()
            ))
        })?;
    let query = Domain::from_bytes_values(doc.column_values(col_idx).iter().map(Bytes::as_ref));
    if query.is_empty() {
        return Err(CliError::Query(format!("column {column:?} has no values")));
    }

    let hasher = MinHasher::new(container.num_perm());
    let sig = query.signature(&hasher);
    // One dispatch path for every index kind: open the container's backend
    // behind `dyn DomainIndex` and hand it a typed query.
    let index = container.open_index();
    let typed = if top_k > 0 {
        Query::top_k(&sig, top_k)
    } else {
        Query::threshold(&sig, threshold)
    }
    .with_size(query.len() as u64);
    let outcome = index.search(&typed).map_err(|e| match e {
        QueryError::Unsupported(msg) => CliError::Index(msg),
        QueryError::Invalid(msg) => CliError::Query(msg),
    })?;

    let mut report = String::new();
    let _ = writeln!(
        report,
        "query {column:?} ({} distinct values) → {} hit(s)",
        query.len(),
        outcome.hits.len()
    );
    for hit in &outcome.hits {
        let (table, col, size) = container.provenance(hit.id);
        match hit.estimate {
            Some(e) => {
                let _ = writeln!(report, "  t̂ = {e:.2}  {table}.{col} ({size} values)");
            }
            None => {
                let _ = writeln!(report, "  {table}.{col} ({size} values)");
            }
        }
    }
    let s = &outcome.stats;
    let _ = writeln!(
        report,
        "probed {}/{} partition(s), {} candidate(s) → {} survivor(s) in {} µs",
        s.partitions_probed, s.partitions_total, s.candidates, s.survivors, s.wall_micros
    );
    Ok(report)
}

fn cmd_stats(flags: &Flags) -> Result<String, CliError> {
    let index_path = flags.require("index")?.to_owned();
    let container = load_container(&index_path)?;
    Ok(container.describe())
}

fn engine_error(e: EngineError) -> CliError {
    match e {
        EngineError::Io(e) => CliError::Io(e),
        EngineError::Index(msg) | EngineError::Mutation(msg) => CliError::Index(msg),
        EngineError::Config(msg) => CliError::Usage(msg),
    }
}

/// Folds every sealed segment and tombstone into the base index — the
/// one O(corpus) step of the tiered mutation lifecycle, run offline
/// through the same engine path the server's `POST /compact` uses:
/// committed delta-log batches replay as segments, staged tail ops are
/// applied, the compacted container is rewritten atomically, and the
/// delta log is retired. Like `ingest`, this must not run against an
/// index a live server is serving.
fn cmd_compact(flags: &Flags) -> Result<String, CliError> {
    let index_path = flags.require("index")?.to_owned();
    let engine = Engine::load(Path::new(&index_path), 1).map_err(engine_error)?;
    let before = engine.segment_stats();
    let (snap, outcome) = engine.compact().map_err(engine_error)?;
    let mut report = String::new();
    let _ = writeln!(
        report,
        "compacted {index_path}: folded {} segment(s), {} tombstone(s), {} staged op(s)",
        before.segments, before.tombstones, outcome.applied
    );
    let _ = writeln!(
        report,
        "{} domain(s), {} entr(y/ies) merged, partitions {}",
        snap.container().len(),
        outcome.report.merged,
        if outcome.report.rebalanced {
            "rebalanced"
        } else {
            "unchanged"
        }
    );
    Ok(report)
}

/// Boots the domain-search server over a persisted index and blocks until
/// it stops (`POST /shutdown`, or the process is killed). The listening
/// line is printed *before* blocking so callers (and CI probes) know the
/// bound address.
fn cmd_serve(flags: &Flags) -> Result<String, CliError> {
    let index_path = flags.require("index")?.to_owned();
    let addr = flags.get("addr")?.unwrap_or("127.0.0.1:7878").to_owned();
    let threads: usize = flags.get_parsed("threads", 0)?;
    let cache_capacity: usize = flags.get_parsed("cache", 1024)?;
    let shards: usize = flags.get_parsed("shards", 1)?;
    if shards == 0 {
        return Err(CliError::Usage("--shards must be positive".into()));
    }
    let shard_id: Option<u64> = match flags.get("shard-id")? {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| {
            CliError::Usage(format!("--shard-id: cannot parse {v:?} as an integer"))
        })?),
    };
    let want_mmap: bool = flags.get_bool("mmap")?;
    // Maintenance knobs: which policy schedules background folds and the
    // thresholds it plans against (defaults match ServerConfig).
    let defaults = ServerConfig::default();
    let merge_policy: MergePolicyKind = flags.get_parsed("merge-policy", defaults.merge_policy)?;
    let compact_segments: usize =
        flags.get_parsed("compact-segments", defaults.compact_segments)?;
    if compact_segments == 0 {
        return Err(CliError::Usage(
            "--compact-segments must be positive".into(),
        ));
    }
    let compact_tombstone_pct: f64 =
        flags.get_parsed("compact-tombstone-pct", defaults.compact_tombstone_pct)?;
    if !(0.0..=100.0).contains(&compact_tombstone_pct) {
        return Err(CliError::Usage(
            "--compact-tombstone-pct must be between 0 and 100".into(),
        ));
    }

    let engine = Engine::load(Path::new(&index_path), shards).map_err(engine_error)?;
    // The file's magic decides how it is served; --mmap asserts the
    // operator got the zero-copy path they asked for instead of silently
    // heap-decoding a v1 file.
    let mapped = engine.snapshot().container().kind() == IndexKind::Mapped;
    if want_mmap && !mapped {
        return Err(CliError::Usage(format!(
            "--mmap: {index_path} is not a packed v2 index; create one with \
             `lshe pack --index {index_path}`"
        )));
    }
    // Copy out the banner datum rather than holding the snapshot Arc across
    // join(): a retained generation-1 snapshot would keep the whole initial
    // index resident even after hot reloads replace it.
    let domains = engine.snapshot().container().len();
    let config = ServerConfig {
        addr,
        threads,
        cache_capacity,
        shard_id,
        merge_policy,
        compact_segments,
        compact_tombstone_pct,
        ..ServerConfig::default()
    };
    let handle = start(Arc::new(engine), &config)?;
    println!(
        "lshe-serve listening on http://{} ({} domains, {} shard(s), cache {}, {} maintenance{}{})",
        handle.addr(),
        domains,
        shards,
        if cache_capacity == 0 {
            "disabled".to_owned()
        } else {
            format!("{cache_capacity} entries")
        },
        merge_policy,
        if mapped { ", mmap-served" } else { "" },
        shard_id.map_or(String::new(), |id| format!(", cluster shard {id}"))
    );
    handle.join();
    Ok("server stopped\n".to_owned())
}

/// Packs a ranked v1 container into the checksummed, memory-mappable v2
/// format (`lshe-store`, magic `LSHEIDX2`, see `docs/FORMAT.md`). The
/// packed file is read-only and served in place: `lshe serve` detects the
/// magic and maps it instead of decoding, so open time is independent of
/// index size.
fn cmd_pack(flags: &Flags) -> Result<String, CliError> {
    let index_path = flags.require("index")?.to_owned();
    let default_out = format!(
        "{}.lshepk",
        index_path.strip_suffix(".lshe").unwrap_or(&index_path)
    );
    let out = flags.get("out")?.unwrap_or(&default_out).to_owned();
    let container = load_container(&index_path)?;
    container
        .pack_v2(Path::new(&out))
        .map_err(CliError::Index)?;
    let packed_bytes = std::fs::metadata(&out)?.len();
    let mut report = String::new();
    let _ = writeln!(
        report,
        "packed {} domain(s) from {index_path} into {out} ({packed_bytes} bytes)",
        container.len()
    );
    let _ = writeln!(report, "serve it with `lshe serve --index {out} --mmap`");
    Ok(report)
}

/// Splits a ranked index into per-shard container files by `id % N` —
/// the exact placement the cluster coordinator routes by, and (for the
/// dense ids a fresh build assigns) the exact distribution the
/// in-process `--shards N` server uses, so the resulting cluster answers
/// bit-identically to the unsplit server.
fn cmd_split(flags: &Flags) -> Result<String, CliError> {
    let index_path = flags.require("index")?.to_owned();
    let shards: usize = flags.get_parsed("shards", 0)?;
    let pack: bool = flags.get_bool("pack")?;
    if shards < 2 {
        return Err(CliError::Usage(
            "--shards must be at least 2 (there is nothing to split otherwise)".into(),
        ));
    }
    let default_prefix = index_path
        .strip_suffix(".lshe")
        .unwrap_or(&index_path)
        .to_owned();
    let prefix = flags.get("out")?.unwrap_or(&default_prefix).to_owned();

    let container = load_container(&index_path)?;
    let parts = container
        .split_with(shards, lshe_cluster::shard_of)
        .map_err(CliError::Index)?;

    let ext = if pack { "lshepk" } else { "lshe" };
    let mut report = String::new();
    for (s, part) in parts.iter().enumerate() {
        let path = format!("{prefix}.shard{s}.{ext}");
        if pack {
            part.pack_v2(Path::new(&path)).map_err(CliError::Index)?;
        } else {
            std::fs::write(&path, part.to_bytes())?;
        }
        let _ = writeln!(report, "shard {s}: {} domain(s) → {path}", part.len());
    }
    let _ = writeln!(
        report,
        "serve each file with `lshe serve --index {prefix}.shardS.{ext}{} --shard-id S`,\n\
         then run `lshe cluster --shards HOST:PORT,...` listing them in shard order",
        if pack { " --mmap" } else { "" }
    );
    Ok(report)
}

/// Boots the cluster coordinator over already-running shard servers and
/// blocks until `POST /shutdown`. Mirrors `cmd_serve`'s banner-then-join
/// shape so CI probes learn the bound address the same way.
fn cmd_cluster(flags: &Flags) -> Result<String, CliError> {
    use std::net::ToSocketAddrs as _;
    let shard_list = flags.require("shards")?.to_owned();
    let addr = flags.get("addr")?.unwrap_or("127.0.0.1:7979").to_owned();
    let hedge_ms: u64 = flags.get_parsed("hedge-ms", 150)?;
    let connect_ms: u64 = flags.get_parsed("connect-timeout-ms", 1_000)?;
    let read_ms: u64 = flags.get_parsed("read-timeout-ms", 30_000)?;
    let probe_ms: u64 = flags.get_parsed("probe-ms", 2_000)?;

    let mut shards = Vec::new();
    for part in shard_list.split(',') {
        let part = part.trim();
        let resolved = part
            .to_socket_addrs()
            .ok()
            .and_then(|mut addrs| addrs.next())
            .ok_or_else(|| {
                CliError::Usage(format!("--shards: {part:?} is not a host:port address"))
            })?;
        shards.push(resolved);
    }

    let count = shards.len();
    let handle = lshe_cluster::start(lshe_cluster::ClusterConfig {
        addr,
        shards,
        connect_timeout: std::time::Duration::from_millis(connect_ms),
        read_timeout: std::time::Duration::from_millis(read_ms),
        hedge_after: std::time::Duration::from_millis(hedge_ms),
        probe_interval: std::time::Duration::from_millis(probe_ms),
    })
    .map_err(CliError::Index)?;
    println!(
        "lshe-cluster listening on http://{} ({count} shard(s), hedge after {hedge_ms} ms)",
        handle.addr()
    );
    handle.join();
    Ok("cluster stopped\n".to_owned())
}

/// Ingests every `*.csv` and `*.jsonl` under `dir` (sorted for
/// determinism). CSV and JSON values share one hash universe, so
/// cross-format joins are found like any other.
fn ingest_dir(dir: &Path, min_size: usize) -> Result<Catalog, CliError> {
    let mut catalog = Catalog::new();
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "csv" || e == "jsonl"))
        .collect();
    paths.sort();
    for path in paths {
        let table = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let data = std::fs::read(&path)?;
        if path.extension().is_some_and(|e| e == "jsonl") {
            let (_, _skipped) = catalog.ingest_jsonl(&table, &data, min_size);
        } else {
            catalog
                .ingest_csv_bytes(&table, Bytes::from(data), min_size)
                .map_err(|e| CliError::Query(format!("{}: {e}", path.display())))?;
        }
    }
    Ok(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lshe_cli_{name}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn write_corpus(dir: &Path) {
        std::fs::write(
            dir.join("registry.csv"),
            "company,sector\nacme,mfg\nborealis,ai\ncanaduck,aero\ndelta,energy\nevergreen,bio\nfalcon,mining\nglacier,sw\nharbour,log\nivory,sw\njuniper,agri\n",
        )
        .expect("write");
        std::fs::write(
            dir.join("grants.csv"),
            "partner,year\nacme,2011\nborealis,2011\ncanaduck,2011\ndelta,2011\nevergreen,2011\nfalcon,2012\nglacier,2012\nharbour,2012\n",
        )
        .expect("write");
    }

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| (*x).to_owned()).collect()
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run(&[]).expect("help").contains("COMMANDS"));
        assert!(run(&s(&["help"])).expect("help").contains("lshe index"));
        assert!(matches!(
            run(&s(&["frobnicate"])).unwrap_err(),
            CliError::Usage(_)
        ));
    }

    #[test]
    fn missing_flags_are_usage_errors() {
        assert!(matches!(
            run(&s(&["index", "--dir", "/nowhere"])).unwrap_err(),
            CliError::Usage(_)
        ));
        assert!(matches!(
            run(&s(&["query", "--index", "x"])).unwrap_err(),
            CliError::Usage(_)
        ));
    }

    #[test]
    fn bare_boolean_flags_accepted() {
        // `--ranked` with no value, mid-list and at the end.
        let flags = Flags::parse(&s(&["--ranked", "--out", "x"])).expect("parse");
        assert!(flags.get_bool("ranked").expect("bool"));
        assert_eq!(flags.get("out").expect("ok"), Some("x"));
        let flags = Flags::parse(&s(&["--out", "x", "--ranked"])).expect("parse");
        assert!(flags.get_bool("ranked").expect("bool"));
        // Explicit values still work, including `false`.
        let flags = Flags::parse(&s(&["--ranked", "true"])).expect("parse");
        assert!(flags.get_bool("ranked").expect("bool"));
        let flags = Flags::parse(&s(&["--ranked", "false"])).expect("parse");
        assert!(!flags.get_bool("ranked").expect("bool"));
        // Absent → false; junk value → usage error.
        let flags = Flags::parse(&[]).expect("parse");
        assert!(!flags.get_bool("ranked").expect("bool"));
        let flags = Flags::parse(&s(&["--ranked", "maybe"])).expect("parse");
        assert!(matches!(flags.get_bool("ranked"), Err(CliError::Usage(_))));
    }

    #[test]
    fn bare_flag_where_value_needed_is_usage_error() {
        // `--dir` swallowed no value because `--out` follows.
        let flags = Flags::parse(&s(&["--dir", "--out", "x"])).expect("parse");
        let err = flags.require("dir").unwrap_err();
        assert!(
            matches!(&err, CliError::Usage(msg) if msg.contains("requires a value")),
            "{err}"
        );
        // Same through get_parsed.
        let flags = Flags::parse(&s(&["--partitions"])).expect("parse");
        assert!(matches!(
            flags.get_parsed::<usize>("partitions", 32),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn duplicate_flags_rejected() {
        let err = Flags::parse(&s(&["--dir", "a", "--dir", "b"])).unwrap_err();
        assert!(
            matches!(&err, CliError::Usage(msg) if msg.contains("duplicate flag --dir")),
            "{err}"
        );
        // Bare + valued duplicates are rejected too.
        assert!(Flags::parse(&s(&["--ranked", "--ranked", "true"])).is_err());
        // Through the public entry point.
        assert!(matches!(
            run(&s(&["stats", "--index", "a", "--index", "b"])).unwrap_err(),
            CliError::Usage(_)
        ));
    }

    #[test]
    fn empty_and_non_flag_arguments_rejected() {
        assert!(Flags::parse(&s(&["--"])).is_err());
        assert!(Flags::parse(&s(&["positional"])).is_err());
    }

    #[test]
    fn serve_flag_validation() {
        // Missing --index.
        assert!(matches!(
            run(&s(&["serve"])).unwrap_err(),
            CliError::Usage(_)
        ));
        // Zero shards.
        assert!(matches!(
            run(&s(&["serve", "--index", "x.lshe", "--shards", "0"])).unwrap_err(),
            CliError::Usage(_)
        ));
        // Nonexistent index fails fast with an I/O error (no server boot).
        assert!(matches!(
            run(&s(&["serve", "--index", "/nowhere/missing.lshe"])).unwrap_err(),
            CliError::Io(_)
        ));
    }

    #[test]
    fn index_query_stats_end_to_end() {
        let dir = tmp_dir("e2e");
        write_corpus(&dir);
        let idx = dir.join("t.lshe");
        let out = run(&s(&[
            "index",
            "--dir",
            dir.to_str().expect("utf8"),
            "--out",
            idx.to_str().expect("utf8"),
            "--partitions",
            "4",
            "--min-size",
            "5",
        ]))
        .expect("index");
        assert!(out.contains("indexed"));

        // grants.partner (8 values) ⊆ registry.company (10 values).
        let hits = run(&s(&[
            "query",
            "--index",
            idx.to_str().expect("utf8"),
            "--csv",
            dir.join("grants.csv").to_str().expect("utf8"),
            "--column",
            "partner",
            "--threshold",
            "0.9",
        ]))
        .expect("query");
        assert!(
            hits.contains("registry.company"),
            "expected registry.company in:\n{hits}"
        );
        // Per-query stats from the unified surface surface in the report.
        assert!(hits.contains("probed"), "missing stats trailer:\n{hits}");

        let stats = run(&s(&["stats", "--index", idx.to_str().expect("utf8")])).expect("stats");
        assert!(stats.contains("partitions"), "{stats}");
        assert!(stats.contains("index:"), "{stats}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn top_k_requires_ranked_index() {
        let dir = tmp_dir("topk");
        write_corpus(&dir);
        let plain = dir.join("plain.lshe");
        run(&s(&[
            "index",
            "--dir",
            dir.to_str().expect("utf8"),
            "--out",
            plain.to_str().expect("utf8"),
            "--min-size",
            "5",
        ]))
        .expect("index");
        let err = run(&s(&[
            "query",
            "--index",
            plain.to_str().expect("utf8"),
            "--csv",
            dir.join("grants.csv").to_str().expect("utf8"),
            "--column",
            "partner",
            "--top-k",
            "3",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Index(_)), "{err}");

        let ranked = dir.join("ranked.lshe");
        run(&s(&[
            "index",
            "--dir",
            dir.to_str().expect("utf8"),
            "--out",
            ranked.to_str().expect("utf8"),
            "--min-size",
            "5",
            "--ranked",
            "true",
        ]))
        .expect("index ranked");
        let hits = run(&s(&[
            "query",
            "--index",
            ranked.to_str().expect("utf8"),
            "--csv",
            dir.join("grants.csv").to_str().expect("utf8"),
            "--column",
            "partner",
            "--top-k",
            "3",
        ]))
        .expect("topk query");
        assert!(hits.contains("t̂ ="), "{hits}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn jsonl_files_are_ingested() {
        let dir = tmp_dir("jsonl");
        write_corpus(&dir);
        std::fs::write(
            dir.join("registry_export.jsonl"),
            "{\"name\": \"acme\"}\n{\"name\": \"borealis\"}\n{\"name\": \"canaduck\"}\n{\"name\": \"delta\"}\n{\"name\": \"evergreen\"}\n{\"name\": \"falcon\"}\n{\"name\": \"glacier\"}\n{\"name\": \"harbour\"}\n",
        )
        .expect("write");
        let idx = dir.join("t.lshe");
        run(&s(&[
            "index",
            "--dir",
            dir.to_str().expect("utf8"),
            "--out",
            idx.to_str().expect("utf8"),
            "--min-size",
            "5",
        ]))
        .expect("index");
        // The JSONL `name` field holds the same companies as grants.partner:
        // a cross-format join must surface.
        let hits = run(&s(&[
            "query",
            "--index",
            idx.to_str().expect("utf8"),
            "--csv",
            dir.join("grants.csv").to_str().expect("utf8"),
            "--column",
            "partner",
            "--threshold",
            "0.9",
        ]))
        .expect("query");
        assert!(
            hits.contains("registry_export.name"),
            "cross-format join missing:\n{hits}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_appends_and_folds_delta_log() {
        let dir = tmp_dir("ingest");
        write_corpus(&dir);
        let idx = dir.join("t.lshe");
        run(&s(&[
            "index",
            "--dir",
            dir.to_str().expect("utf8"),
            "--out",
            idx.to_str().expect("utf8"),
            "--min-size",
            "5",
            "--ranked",
        ]))
        .expect("index");

        // A server left one staged insert in the delta log.
        let log = container::DeltaLog::sidecar(&idx);
        let staged_values: Vec<String> = (0..8).map(|i| format!("staged{i}")).collect();
        let staged_domain = Domain::from_strs(staged_values.iter().map(String::as_str));
        // (id 3: the built corpus holds ids 0..=2 — registry.company,
        // registry.sector, grants.partner.)
        log.append(
            &container::DeltaOp::Insert {
                record: container::DomainRecord {
                    id: 3,
                    size: staged_domain.len() as u64,
                    table: "serverlog".to_owned(),
                    column: "v".to_owned(),
                },
                signature: staged_domain.signature(&MinHasher::new(256)),
            },
            4,
        )
        .expect("append");

        // New data arrives in a second directory.
        let more = dir.join("more");
        std::fs::create_dir_all(&more).expect("mkdir");
        std::fs::write(
            more.join("suppliers.csv"),
            "vendor,city\nacme,ottawa\nborealis,oslo\ncanaduck,toronto\ndelta,denver\nevergreen,eugene\nfalcon,flint\n",
        )
        .expect("write");

        let out = run(&s(&[
            "ingest",
            "--index",
            idx.to_str().expect("utf8"),
            "--dir",
            more.to_str().expect("utf8"),
            "--min-size",
            "5",
        ]))
        .expect("ingest");
        assert!(out.contains("ingested"), "{out}");
        assert!(out.contains("folded 1 staged delta-log op(s)"), "{out}");
        assert!(!log.exists(), "delta log must be retired after ingest");

        // The appended column joins against the original corpus. Ingest
        // compacts, restoring the freshly-built equi-depth layout — whose
        // per-partition (b,r) tuned at 0.7 probabilistically misses this
        // 0.75-containment pair exactly as a from-scratch build does — so
        // probe at 0.6, under the estimate either layout produces.
        let hits = run(&s(&[
            "query",
            "--index",
            idx.to_str().expect("utf8"),
            "--csv",
            dir.join("grants.csv").to_str().expect("utf8"),
            "--column",
            "partner",
            "--threshold",
            "0.6",
        ]))
        .expect("query");
        assert!(hits.contains("suppliers.vendor"), "{hits}");
        // And the folded server insert is committed + queryable by stats.
        let stats = run(&s(&["stats", "--index", idx.to_str().expect("utf8")])).expect("stats");
        assert!(
            stats.contains("domains: 6"),
            "3 built + 1 folded + 2 ingested:\n{stats}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_rejects_torn_delta_log_with_typed_error() {
        let dir = tmp_dir("ingest_torn");
        write_corpus(&dir);
        let idx = dir.join("t.lshe");
        run(&s(&[
            "index",
            "--dir",
            dir.to_str().expect("utf8"),
            "--out",
            idx.to_str().expect("utf8"),
            "--min-size",
            "5",
        ]))
        .expect("index");
        let log = container::DeltaLog::sidecar(&idx);
        log.append(&container::DeltaOp::Remove { id: 0 }, 3)
            .expect("append");
        let bytes = std::fs::read(log.path()).expect("read");
        std::fs::write(log.path(), &bytes[..bytes.len() - 2]).expect("tear");
        let err = run(&s(&[
            "ingest",
            "--index",
            idx.to_str().expect("utf8"),
            "--dir",
            dir.to_str().expect("utf8"),
            "--min-size",
            "5",
        ]))
        .unwrap_err();
        assert!(
            matches!(&err, CliError::Index(msg) if msg.contains("torn")),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_folds_staged_ops_and_retires_the_log() {
        let dir = tmp_dir("cli_compact");
        write_corpus(&dir);
        let idx = dir.join("t.lshe");
        run(&s(&[
            "index",
            "--dir",
            dir.to_str().expect("utf8"),
            "--out",
            idx.to_str().expect("utf8"),
            "--min-size",
            "5",
            "--ranked",
        ]))
        .expect("index");

        // A server left one staged remove behind (ids 0..=2 were built).
        let log = container::DeltaLog::sidecar(&idx);
        log.append(&container::DeltaOp::Remove { id: 0 }, 3)
            .expect("append");

        let out = run(&s(&["compact", "--index", idx.to_str().expect("utf8")])).expect("compact");
        assert!(out.contains("compacted"), "{out}");
        assert!(out.contains("1 staged op(s)"), "{out}");
        assert!(!log.exists(), "delta log must be retired after compact");

        let stats = run(&s(&["stats", "--index", idx.to_str().expect("utf8")])).expect("stats");
        assert!(
            stats.contains("domains: 2"),
            "3 built - 1 removed:\n{stats}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_maintenance_flag_validation() {
        // All three maintenance knobs are validated before any file I/O.
        for bad in [
            &["serve", "--index", "x.lshe", "--merge-policy", "sorted"][..],
            &["serve", "--index", "x.lshe", "--compact-segments", "0"],
            &["serve", "--index", "x.lshe", "--compact-segments", "-3"],
            &[
                "serve",
                "--index",
                "x.lshe",
                "--compact-tombstone-pct",
                "120",
            ],
            &[
                "serve",
                "--index",
                "x.lshe",
                "--compact-tombstone-pct",
                "-1",
            ],
        ] {
            assert!(
                matches!(run(&s(bad)).unwrap_err(), CliError::Usage(_)),
                "expected usage error for {bad:?}"
            );
        }
    }

    #[test]
    fn split_flag_validation() {
        // --shards below 2 is a usage error before any file I/O.
        for bad in [
            &["split", "--index", "x.lshe"][..],
            &["split", "--index", "x.lshe", "--shards", "1"],
        ] {
            assert!(matches!(run(&s(bad)).unwrap_err(), CliError::Usage(_)));
        }
        // A plain (unranked) index cannot be split.
        let dir = tmp_dir("split_plain");
        write_corpus(&dir);
        let idx = dir.join("plain.lshe");
        run(&s(&[
            "index",
            "--dir",
            dir.to_str().expect("utf8"),
            "--out",
            idx.to_str().expect("utf8"),
            "--min-size",
            "5",
        ]))
        .expect("index");
        let err = run(&s(&[
            "split",
            "--index",
            idx.to_str().expect("utf8"),
            "--shards",
            "2",
        ]))
        .unwrap_err();
        assert!(
            matches!(&err, CliError::Index(msg) if msg.contains("--ranked")),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn split_writes_loadable_disjoint_shard_files() {
        let dir = tmp_dir("split");
        write_corpus(&dir);
        let idx = dir.join("t.lshe");
        run(&s(&[
            "index",
            "--dir",
            dir.to_str().expect("utf8"),
            "--out",
            idx.to_str().expect("utf8"),
            "--min-size",
            "5",
            "--ranked",
        ]))
        .expect("index");
        let report = run(&s(&[
            "split",
            "--index",
            idx.to_str().expect("utf8"),
            "--shards",
            "2",
        ]))
        .expect("split");
        assert!(report.contains("shard 0"), "{report}");

        let whole = IndexContainer::from_bytes(&std::fs::read(&idx).expect("read"))
            .expect("whole container");
        let mut seen = std::collections::HashSet::new();
        let mut total = 0;
        for shard in 0..2u32 {
            let path = dir.join(format!("t.shard{shard}.lshe"));
            let part = IndexContainer::from_bytes(&std::fs::read(&path).expect("shard file"))
                .expect("shard container");
            assert_eq!(part.num_perm(), whole.num_perm());
            total += part.len();
            for id in part.records().iter().map(|r| r.id) {
                assert_eq!(id % 2, shard, "id {id} misplaced on shard {shard}");
                assert!(seen.insert(id), "id {id} on two shards");
            }
        }
        assert_eq!(total, whole.len(), "split must partition every domain");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cluster_flag_validation() {
        assert!(matches!(
            run(&s(&["cluster"])).unwrap_err(),
            CliError::Usage(_)
        ));
        let err = run(&s(&["cluster", "--shards", "not-an-address"])).unwrap_err();
        assert!(
            matches!(&err, CliError::Usage(msg) if msg.contains("host:port")),
            "{err}"
        );
    }

    #[test]
    fn pack_query_stats_roundtrip_on_packed_index() {
        let dir = tmp_dir("pack");
        write_corpus(&dir);
        let idx = dir.join("t.lshe");
        run(&s(&[
            "index",
            "--dir",
            dir.to_str().expect("utf8"),
            "--out",
            idx.to_str().expect("utf8"),
            "--min-size",
            "5",
            "--ranked",
        ]))
        .expect("index");

        // Pack with the default output name (FILE minus .lshe → .lshepk).
        let out = run(&s(&["pack", "--index", idx.to_str().expect("utf8")])).expect("pack");
        assert!(out.contains("packed"), "{out}");
        let packed = dir.join("t.lshepk");
        assert!(packed.exists(), "default output path");

        // Queries against the packed file answer exactly like the source.
        let query = |index: &Path| {
            run(&s(&[
                "query",
                "--index",
                index.to_str().expect("utf8"),
                "--csv",
                dir.join("grants.csv").to_str().expect("utf8"),
                "--column",
                "partner",
                "--top-k",
                "2",
            ]))
            .expect("query")
        };
        let from_v1 = query(&idx);
        let from_v2 = query(&packed);
        // Everything except the wall-clock trailer line must agree.
        let strip = |r: &str| {
            r.lines()
                .filter(|l| !l.contains("µs"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&from_v1), strip(&from_v2));
        assert!(from_v2.contains("t̂ ="), "{from_v2}");

        let stats = run(&s(&["stats", "--index", packed.to_str().expect("utf8")])).expect("stats");
        assert!(stats.contains("ranked sketches: yes"), "{stats}");

        // Read-only: ingest into a packed file is a typed refusal.
        let err = run(&s(&[
            "ingest",
            "--index",
            packed.to_str().expect("utf8"),
            "--dir",
            dir.to_str().expect("utf8"),
            "--min-size",
            "5",
        ]))
        .unwrap_err();
        assert!(
            matches!(&err, CliError::Index(msg) if msg.contains("read-only")),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pack_requires_ranked_source() {
        let dir = tmp_dir("pack_plain");
        write_corpus(&dir);
        let idx = dir.join("plain.lshe");
        run(&s(&[
            "index",
            "--dir",
            dir.to_str().expect("utf8"),
            "--out",
            idx.to_str().expect("utf8"),
            "--min-size",
            "5",
        ]))
        .expect("index");
        let err = run(&s(&["pack", "--index", idx.to_str().expect("utf8")])).unwrap_err();
        assert!(
            matches!(&err, CliError::Index(msg) if msg.contains("--ranked")),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_mmap_flag_rejects_v1_index() {
        let dir = tmp_dir("mmap_flag");
        write_corpus(&dir);
        let idx = dir.join("t.lshe");
        run(&s(&[
            "index",
            "--dir",
            dir.to_str().expect("utf8"),
            "--out",
            idx.to_str().expect("utf8"),
            "--min-size",
            "5",
            "--ranked",
        ]))
        .expect("index");
        let err = run(&s(&[
            "serve",
            "--index",
            idx.to_str().expect("utf8"),
            "--mmap",
        ]))
        .unwrap_err();
        assert!(
            matches!(&err, CliError::Usage(msg) if msg.contains("lshe pack")),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn split_pack_writes_packed_loadable_shards() {
        let dir = tmp_dir("split_pack");
        write_corpus(&dir);
        let idx = dir.join("t.lshe");
        run(&s(&[
            "index",
            "--dir",
            dir.to_str().expect("utf8"),
            "--out",
            idx.to_str().expect("utf8"),
            "--min-size",
            "5",
            "--ranked",
        ]))
        .expect("index");
        let report = run(&s(&[
            "split",
            "--index",
            idx.to_str().expect("utf8"),
            "--shards",
            "2",
            "--pack",
        ]))
        .expect("split --pack");
        assert!(report.contains("--mmap"), "{report}");

        let mut total = 0;
        for shard in 0..2u32 {
            let path = dir.join(format!("t.shard{shard}.lshepk"));
            let part = IndexContainer::load(&path).expect("packed shard loads");
            assert_eq!(part.kind(), IndexKind::Mapped);
            total += part.len();
            assert!(part.records().iter().all(|r| r.id % 2 == shard));
        }
        assert_eq!(total, 3, "every domain lands on exactly one shard");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_index_reported() {
        let dir = tmp_dir("corrupt");
        let idx = dir.join("bad.lshe");
        std::fs::write(&idx, b"garbage").expect("write");
        std::fs::write(dir.join("q.csv"), "a\n1\n").expect("write");
        let err = run(&s(&[
            "query",
            "--index",
            idx.to_str().expect("utf8"),
            "--csv",
            dir.join("q.csv").to_str().expect("utf8"),
            "--column",
            "a",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Index(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_column_reported() {
        let dir = tmp_dir("missing_col");
        write_corpus(&dir);
        let idx = dir.join("t.lshe");
        run(&s(&[
            "index",
            "--dir",
            dir.to_str().expect("utf8"),
            "--out",
            idx.to_str().expect("utf8"),
            "--min-size",
            "5",
        ]))
        .expect("index");
        let err = run(&s(&[
            "query",
            "--index",
            idx.to_str().expect("utf8"),
            "--csv",
            dir.join("grants.csv").to_str().expect("utf8"),
            "--column",
            "nope",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Query(_)));
        std::fs::remove_dir_all(&dir).ok();
    }
}
