//! A minimal JSON parser and JSON-Lines ingestion.
//!
//! Open-data portals publish "a mixture of relational (CSV and
//! spreadsheet), semi-structured (JSON and XML) … formats" (§1 of the
//! paper). This module covers the JSON side: a small, dependency-free
//! recursive-descent parser plus an ingestion path that turns a JSON-Lines
//! document (one object per line — the common bulk-export format) into
//! domains, one per top-level scalar field.
//!
//! The parser accepts the full JSON grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null) but the ingestion deliberately flattens
//! only **top-level scalar fields** — nested structure rarely maps onto the
//! "column = domain" model, and the paper's corpora are tabular.

use crate::catalog::{Catalog, DomainId, DomainMeta};
use crate::domain::Domain;
use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, kept as its source text (lossless, hashable).
    Number(String),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (field order preserved by sorted key).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The canonical byte representation of a *scalar* used for domain
    /// hashing, or `None` for null / arrays / objects.
    #[must_use]
    pub fn scalar_bytes(&self) -> Option<Vec<u8>> {
        match self {
            Self::Bool(b) => Some(if *b {
                b"true".to_vec()
            } else {
                b"false".to_vec()
            }),
            Self::Number(n) => Some(n.as_bytes().to_vec()),
            Self::String(s) => Some(s.as_bytes().to_vec()),
            Self::Null | Self::Array(_) | Self::Object(_) => None,
        }
    }
}

/// JSON parse errors with byte offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: &'static str,
    /// Byte offset in the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            message,
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal(b"true", JsonValue::Bool(true)),
            Some(b'f') => self.literal(b"false", JsonValue::Bool(false)),
            Some(b'n') => self.literal(b"null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, text: &'static [u8], value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(text) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        Ok(JsonValue::Number(text.to_owned()))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected opening quote")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \u-escaped low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\', "expected low surrogate")?;
                                self.expect(b'u', "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("unexpected low surrogate"));
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(ch);
                            continue; // hex4 advanced past the escape
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (1–4 bytes).
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit")),
            };
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            let value = self.value()?;
            out.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(out));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses one JSON document.
///
/// # Errors
/// [`JsonError`] with a byte offset on malformed input (including trailing
/// non-whitespace).
pub fn parse_json(input: &[u8]) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input,
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != input.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

impl Catalog {
    /// Ingests a JSON-Lines buffer (one object per non-empty line): every
    /// top-level scalar field becomes a domain named after the field, with
    /// the field's distinct values across all lines. Fields with fewer than
    /// `min_size` distinct values are skipped, mirroring
    /// [`Catalog::ingest_csv`].
    ///
    /// Lines that fail to parse or are not objects are counted, not fatal —
    /// real open-data exports are messy, and a single bad record should not
    /// abort a bulk ingest. Returns `(ids, skipped_lines)`.
    pub fn ingest_jsonl(
        &mut self,
        table_name: &str,
        data: &[u8],
        min_size: usize,
    ) -> (Vec<DomainId>, usize) {
        let mut columns: BTreeMap<String, Vec<Vec<u8>>> = BTreeMap::new();
        let mut skipped = 0usize;
        for line in data.split(|&b| b == b'\n') {
            let trimmed: &[u8] = {
                let mut t = line;
                while t.first().is_some_and(|b| b.is_ascii_whitespace()) {
                    t = &t[1..];
                }
                while t.last().is_some_and(|b| b.is_ascii_whitespace()) {
                    t = &t[..t.len() - 1];
                }
                t
            };
            if trimmed.is_empty() {
                continue;
            }
            match parse_json(trimmed) {
                Ok(JsonValue::Object(fields)) => {
                    for (key, value) in fields {
                        if let Some(bytes) = value.scalar_bytes() {
                            columns.entry(key).or_default().push(bytes);
                        }
                    }
                }
                _ => skipped += 1,
            }
        }
        let mut ids = Vec::new();
        for (column, values) in columns {
            let domain = Domain::from_bytes_values(values.iter().map(Vec::as_slice));
            if domain.len() >= min_size {
                ids.push(self.push(domain, DomainMeta::new(table_name, column)));
            }
        }
        (ids, skipped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> JsonValue {
        parse_json(s.as_bytes()).expect("valid JSON")
    }

    #[test]
    fn scalars() {
        assert_eq!(parse("null"), JsonValue::Null);
        assert_eq!(parse("true"), JsonValue::Bool(true));
        assert_eq!(parse("false"), JsonValue::Bool(false));
        assert_eq!(parse("42"), JsonValue::Number("42".into()));
        assert_eq!(parse("-3.25e+2"), JsonValue::Number("-3.25e+2".into()));
        assert_eq!(parse("\"hi\""), JsonValue::String("hi".into()));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            parse(r#""a\"b\\c\nd\tA""#),
            JsonValue::String("a\"b\\c\nd\tA".into())
        );
        // Surrogate pair: U+1F600.
        assert_eq!(parse(r#""😀""#), JsonValue::String("😀".into()));
    }

    #[test]
    fn nested_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#);
        let JsonValue::Object(o) = v else {
            panic!("expected object")
        };
        assert_eq!(o.len(), 2);
        let JsonValue::Array(a) = &o["a"] else {
            panic!("expected array")
        };
        assert_eq!(a.len(), 3);
        assert_eq!(o["c"], JsonValue::String("x".into()));
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(" \n\t{ \"k\" :\r[ ] } ");
        assert_eq!(
            v,
            JsonValue::Object(BTreeMap::from([("k".into(), JsonValue::Array(vec![]))]))
        );
    }

    #[test]
    fn errors_have_offsets() {
        let err = parse_json(b"{\"a\": }").unwrap_err();
        assert_eq!(err.at, 6);
        assert!(parse_json(b"[1, 2").is_err());
        assert!(parse_json(b"12x").is_err()); // trailing garbage
        assert!(parse_json(b"\"\\u12").is_err());
        assert!(parse_json(b"\"\\ud800x\"").is_err()); // lone high surrogate
        assert!(parse_json(b"01").is_err() || parse_json(b"01").is_ok()); // leading zeros tolerated
    }

    #[test]
    fn scalar_bytes_mapping() {
        assert_eq!(parse("true").scalar_bytes(), Some(b"true".to_vec()));
        assert_eq!(parse("1.5").scalar_bytes(), Some(b"1.5".to_vec()));
        assert_eq!(parse("\"x\"").scalar_bytes(), Some(b"x".to_vec()));
        assert_eq!(parse("null").scalar_bytes(), None);
        assert_eq!(parse("[]").scalar_bytes(), None);
    }

    #[test]
    fn jsonl_ingestion() {
        let data = br#"
{"city": "Toronto", "population": 2930000, "capital": false}
{"city": "Ottawa", "population": 994837, "capital": true}
{"city": "Montreal", "population": 1780000, "capital": false}
not json at all
{"city": "Toronto", "population": 2930000, "nested": {"ignored": 1}}
"#;
        let mut catalog = Catalog::new();
        let (ids, skipped) = catalog.ingest_jsonl("cities", data, 2);
        assert_eq!(skipped, 1);
        // city: 3 distinct; population: 3 distinct; capital: 2 distinct;
        // nested is non-scalar → ignored.
        assert_eq!(ids.len(), 3);
        let names: Vec<&str> = ids
            .iter()
            .map(|&id| catalog.meta(id).column.as_str())
            .collect();
        assert_eq!(names, vec!["capital", "city", "population"]);
        let city_id = ids[1];
        assert_eq!(catalog.domain(city_id).len(), 3);
    }

    #[test]
    fn jsonl_min_size_filters() {
        let data = b"{\"a\": 1, \"b\": 2}\n{\"a\": 1, \"b\": 3}\n";
        let mut catalog = Catalog::new();
        let (ids, _) = catalog.ingest_jsonl("t", data, 2);
        // a has 1 distinct value (dropped), b has 2.
        assert_eq!(ids.len(), 1);
        assert_eq!(catalog.meta(ids[0]).column, "b");
    }

    #[test]
    fn json_and_csv_values_share_the_universe() {
        // The same value ingested via JSON and CSV must hash identically,
        // so cross-format joins work.
        let mut catalog = Catalog::new();
        let (ids, _) = catalog.ingest_jsonl("j", b"{\"v\": \"Toronto\"}\n{\"v\": \"Ottawa\"}\n", 2);
        let csv_ids = catalog
            .ingest_csv_bytes("c", bytes::Bytes::from_static(b"v\nToronto\nOttawa\n"), 2)
            .expect("csv");
        assert_eq!(
            catalog.domain(ids[0]),
            catalog.domain(csv_ids[0]),
            "cross-format value universes diverged"
        );
    }
}
