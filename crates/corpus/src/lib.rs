//! # lshe-corpus
//!
//! The corpus layer of the LSH Ensemble reproduction: domains, their
//! provenance, CSV ingestion, and exact (ground-truth) containment search.
//!
//! * [`domain::Domain`] — a set of distinct values held as sorted 64-bit
//!   universe hashes, with exact containment/Jaccard and MinHash sketching.
//! * [`csv::CsvDocument`] — a minimal RFC-4180 reader, the ingestion path
//!   for real Open-Data CSV files (§6.1 of the paper).
//! * [`catalog::Catalog`] — the searchable collection of domains with
//!   table/attribute provenance, addressed by dense [`catalog::DomainId`]s.
//! * [`exact::ExactIndex`] — inverted index computing the exact answer set
//!   `{X : t(Q,X) ≥ t*}` (Eq. 2), used as ground truth by every accuracy
//!   experiment.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod catalog;
pub mod csv;
pub mod domain;
pub mod exact;
pub mod json;

pub use catalog::{Catalog, DomainId, DomainMeta};
pub use csv::{CsvDocument, CsvError};
pub use domain::Domain;
pub use exact::ExactIndex;
pub use json::{parse_json, JsonError, JsonValue};
