//! The [`Catalog`]: the collection of domains under search, with provenance
//! metadata mapping each domain back to its table and attribute.
//!
//! The paper characterises a dataset by its domains (`dom(R)`, §2); the
//! catalog is the flat view of all domains across all ingested datasets,
//! addressed by a dense [`DomainId`]. Search indexes and the exact
//! ground-truth engine are both built over a catalog.

use crate::csv::{CsvDocument, CsvError};
use crate::domain::Domain;
use bytes::Bytes;

/// Dense identifier of a domain inside a [`Catalog`].
///
/// Kept in sync with `lshe-lsh`'s `DomainId` (both `u32`) so ids flow
/// between the catalog and the indexes without conversion.
pub type DomainId = u32;

/// Provenance of a domain: which table and attribute it came from.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DomainMeta {
    /// Source table (dataset) name; empty for synthetic domains.
    pub table: String,
    /// Attribute (column) name; empty for synthetic domains.
    pub column: String,
}

impl DomainMeta {
    /// Convenience constructor.
    #[must_use]
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        Self {
            table: table.into(),
            column: column.into(),
        }
    }
}

/// A collection of domains with provenance, addressed by dense ids.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    domains: Vec<Domain>,
    meta: Vec<DomainMeta>,
}

impl Catalog {
    /// Creates an empty catalog.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a domain, returning its id.
    ///
    /// # Panics
    /// Panics if the catalog already holds `u32::MAX` domains.
    pub fn push(&mut self, domain: Domain, meta: DomainMeta) -> DomainId {
        let id = DomainId::try_from(self.domains.len()).expect("catalog full");
        self.domains.push(domain);
        self.meta.push(meta);
        id
    }

    /// Ingests every column of a parsed CSV document as a domain, using the
    /// header row for column names. Columns whose distinct-value count is
    /// below `min_size` are skipped (the paper discards domains with fewer
    /// than ten values, §6.1).
    ///
    /// Returns the ids of the ingested domains.
    pub fn ingest_csv(
        &mut self,
        table_name: &str,
        doc: &CsvDocument,
        min_size: usize,
    ) -> Vec<DomainId> {
        let header = doc.header();
        let mut ids = Vec::new();
        for (col, name) in header.iter().enumerate() {
            let values = doc.column_values(col);
            let domain = Domain::from_bytes_values(values.iter().map(Bytes::as_ref));
            if domain.len() >= min_size {
                ids.push(self.push(domain, DomainMeta::new(table_name, name.clone())));
            }
        }
        ids
    }

    /// Parses and ingests a CSV buffer in one step.
    ///
    /// # Errors
    /// Returns [`CsvError`] on malformed input.
    pub fn ingest_csv_bytes(
        &mut self,
        table_name: &str,
        data: Bytes,
        min_size: usize,
    ) -> Result<Vec<DomainId>, CsvError> {
        let doc = CsvDocument::parse(data)?;
        Ok(self.ingest_csv(table_name, &doc, min_size))
    }

    /// Number of domains.
    #[must_use]
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// True if the catalog has no domains.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// The domain with id `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn domain(&self, id: DomainId) -> &Domain {
        &self.domains[id as usize]
    }

    /// The provenance of domain `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn meta(&self, id: DomainId) -> &DomainMeta {
        &self.meta[id as usize]
    }

    /// Iterates `(id, domain)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (DomainId, &Domain)> {
        self.domains
            .iter()
            .enumerate()
            .map(|(i, d)| (i as DomainId, d))
    }

    /// Domain sizes indexed by id — the input to partitioning.
    #[must_use]
    pub fn sizes(&self) -> Vec<usize> {
        self.domains.iter().map(Domain::len).collect()
    }

    /// Total number of values across all domains (diagnostics).
    #[must_use]
    pub fn total_values(&self) -> usize {
        self.domains.iter().map(Domain::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let mut c = Catalog::new();
        let id = c.push(Domain::from_strs(["a", "b"]), DomainMeta::new("t", "col"));
        assert_eq!(id, 0);
        assert_eq!(c.domain(id).len(), 2);
        assert_eq!(c.meta(id).table, "t");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn ingest_csv_respects_min_size() {
        let csv = "\
province,city,code
Ontario,Toronto,1
Ontario,Ottawa,2
Quebec,Montreal,3
";
        let mut c = Catalog::new();
        let ids = c
            .ingest_csv_bytes("grants", Bytes::from_static(csv.as_bytes()), 3)
            .expect("parse");
        // province has 2 distinct values (dropped); city and code have 3.
        assert_eq!(ids.len(), 2);
        assert_eq!(c.meta(ids[0]).column, "city");
        assert_eq!(c.meta(ids[1]).column, "code");
        assert_eq!(c.domain(ids[0]).len(), 3);
    }

    #[test]
    fn ingest_empty_csv_is_noop() {
        let mut c = Catalog::new();
        let ids = c.ingest_csv_bytes("empty", Bytes::new(), 1).expect("parse");
        assert!(ids.is_empty());
        assert!(c.is_empty());
    }

    #[test]
    fn sizes_and_totals() {
        let mut c = Catalog::new();
        c.push(Domain::from_hashes(vec![1, 2, 3]), DomainMeta::default());
        c.push(Domain::from_hashes(vec![4]), DomainMeta::default());
        assert_eq!(c.sizes(), vec![3, 1]);
        assert_eq!(c.total_values(), 4);
    }

    #[test]
    fn iter_yields_dense_ids() {
        let mut c = Catalog::new();
        for i in 0..5u64 {
            c.push(Domain::from_hashes(vec![i]), DomainMeta::default());
        }
        let ids: Vec<DomainId> = c.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }
}
