//! The [`Domain`] type: a set of distinct values from an unspecified
//! universe (§2 of the paper).
//!
//! Values are stored as their 64-bit universe hashes, sorted and deduplicated,
//! which makes exact intersections O(n) merges and keeps memory at 8 bytes
//! per value regardless of the original representation (string, number,
//! blob). The raw values are *not* retained — neither the search index nor
//! the exact ground-truth engine needs them, and at corpus scale they would
//! dominate memory.

use lshe_minhash::hash::{hash_bytes, DEFAULT_VALUE_SEED};
use lshe_minhash::{MinHasher, Signature};

/// A domain: a set of distinct values, held as sorted 64-bit universe hashes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Domain {
    /// Sorted, deduplicated universe hashes.
    values: Vec<u64>,
}

impl Domain {
    /// Creates a domain from pre-hashed universe values (deduplicates and
    /// sorts internally).
    #[must_use]
    pub fn from_hashes(mut values: Vec<u64>) -> Self {
        values.sort_unstable();
        values.dedup();
        Self { values }
    }

    /// Creates a domain by hashing raw byte values with the workspace value
    /// seed.
    #[must_use]
    pub fn from_bytes_values<I, B>(values: I) -> Self
    where
        I: IntoIterator<Item = B>,
        B: AsRef<[u8]>,
    {
        Self::from_hashes(
            values
                .into_iter()
                .map(|v| hash_bytes(DEFAULT_VALUE_SEED, v.as_ref()))
                .collect(),
        )
    }

    /// Creates a domain by hashing string values.
    #[must_use]
    pub fn from_strs<'a, I>(values: I) -> Self
    where
        I: IntoIterator<Item = &'a str>,
    {
        Self::from_bytes_values(values.into_iter().map(str::as_bytes))
    }

    /// Number of distinct values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the domain has no values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The sorted universe hashes.
    #[must_use]
    pub fn hashes(&self) -> &[u64] {
        &self.values
    }

    /// Membership test for a universe hash (binary search).
    #[must_use]
    pub fn contains_hash(&self, h: u64) -> bool {
        self.values.binary_search(&h).is_ok()
    }

    /// Exact intersection size with another domain (sorted-merge, O(n + m)).
    #[must_use]
    pub fn intersection_size(&self, other: &Self) -> usize {
        let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
        let (a, b) = (&self.values, &other.values);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// Exact containment `t(self, other) = |self ∩ other| / |self|` (Def. 1,
    /// with `self` playing the query role `Q`).
    ///
    /// Returns 0 for an empty query domain.
    #[must_use]
    pub fn containment_in(&self, other: &Self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.intersection_size(other) as f64 / self.values.len() as f64
    }

    /// Exact Jaccard similarity `|A ∩ B| / |A ∪ B|` (Eq. 3). Two empty
    /// domains have similarity 1.
    #[must_use]
    pub fn jaccard(&self, other: &Self) -> f64 {
        if self.values.is_empty() && other.values.is_empty() {
            return 1.0;
        }
        let i = self.intersection_size(other);
        let u = self.values.len() + other.values.len() - i;
        i as f64 / u as f64
    }

    /// MinHash signature of this domain under `hasher`.
    #[must_use]
    pub fn signature(&self, hasher: &MinHasher) -> Signature {
        hasher.signature(self.values.iter().copied())
    }

    /// Returns the sub-domain of the first `n` values (by hash order) — a
    /// cheap deterministic way to build query subsets in tests and
    /// generators.
    ///
    /// # Panics
    /// Panics if `n` exceeds the domain size.
    #[must_use]
    pub fn prefix(&self, n: usize) -> Self {
        assert!(n <= self.values.len(), "prefix longer than domain");
        Self {
            values: self.values[..n].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_order_invariance() {
        let a = Domain::from_strs(["x", "y", "x", "z"]);
        let b = Domain::from_strs(["z", "y", "x"]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn paper_running_example() {
        // §2: Q = {Ontario, Toronto}; Provinces and Locations as given.
        let q = Domain::from_strs(["Ontario", "Toronto"]);
        let provinces = Domain::from_strs(["Alberta", "Ontario", "Manitoba"]);
        let locations = Domain::from_strs([
            "Illinois",
            "Chicago",
            "New York City",
            "New York",
            "Nova Scotia",
            "Halifax",
            "California",
            "San Francisco",
            "Seattle",
            "Washington",
            "Ontario",
            "Toronto",
        ]);
        assert!((q.jaccard(&provinces) - 0.25).abs() < 1e-12);
        assert!((q.containment_in(&provinces) - 0.5).abs() < 1e-12);
        assert!((q.containment_in(&locations) - 1.0).abs() < 1e-12);
        // Jaccard prefers the small domain, containment the large one —
        // the paper's motivating asymmetry.
        assert!(q.jaccard(&provinces) > q.jaccard(&locations));
        assert!(q.containment_in(&locations) > q.containment_in(&provinces));
    }

    #[test]
    fn intersection_size_cases() {
        let a = Domain::from_hashes(vec![1, 2, 3, 4]);
        let b = Domain::from_hashes(vec![3, 4, 5]);
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(a.intersection_size(&a), 4);
        assert_eq!(a.intersection_size(&Domain::default()), 0);
    }

    #[test]
    fn containment_empty_query_is_zero() {
        let e = Domain::default();
        let x = Domain::from_hashes(vec![1, 2]);
        assert_eq!(e.containment_in(&x), 0.0);
    }

    #[test]
    fn jaccard_of_empties_is_one() {
        assert_eq!(Domain::default().jaccard(&Domain::default()), 1.0);
    }

    #[test]
    fn contains_hash_matches_membership() {
        let d = Domain::from_hashes(vec![10, 20, 30]);
        assert!(d.contains_hash(20));
        assert!(!d.contains_hash(25));
    }

    #[test]
    fn signature_matches_direct_hashing() {
        let h = MinHasher::new(64);
        let d = Domain::from_strs(["a", "b", "c"]);
        assert_eq!(d.signature(&h), h.signature(d.hashes().iter().copied()));
    }

    #[test]
    fn prefix_is_subset() {
        let d = Domain::from_hashes((0..100).collect());
        let p = d.prefix(30);
        assert_eq!(p.len(), 30);
        assert!((p.containment_in(&d) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "prefix longer")]
    fn prefix_overflow_panics() {
        let d = Domain::from_hashes(vec![1]);
        let _ = d.prefix(2);
    }
}
