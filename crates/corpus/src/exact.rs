//! Exact containment search — the ground-truth engine (Eq. 2, §6.1).
//!
//! The paper computes exact containment scores for the Canadian Open Data
//! corpus to measure precision and recall. [`ExactIndex`] does the same
//! here: an inverted index from universe hash to the domains containing it,
//! so a query of `q` values costs `Σ posting-list lengths` instead of a scan
//! over every domain.

use crate::catalog::{Catalog, DomainId};
use crate::domain::Domain;
use lshe_core::{DomainIndex, Query, QueryError, QueryMode, SearchHit, SearchOutcome};
use lshe_minhash::hash::FastHashMap;

/// Inverted index over a catalog for exact containment queries.
#[derive(Debug, Clone)]
pub struct ExactIndex {
    /// value hash → sorted ids of domains containing the value.
    postings: FastHashMap<u64, Vec<DomainId>>,
    /// Domain sizes by id (for containment normalisation of *indexed*
    /// domains if needed by callers).
    sizes: Vec<u32>,
}

impl ExactIndex {
    /// Builds the inverted index over every domain in the catalog.
    #[must_use]
    pub fn build(catalog: &Catalog) -> Self {
        let mut postings: FastHashMap<u64, Vec<DomainId>> = FastHashMap::default();
        let mut sizes = Vec::with_capacity(catalog.len());
        for (id, domain) in catalog.iter() {
            sizes.push(domain.len() as u32);
            for &h in domain.hashes() {
                postings.entry(h).or_default().push(id);
            }
        }
        Self { postings, sizes }
    }

    /// Number of indexed domains.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// True if no domain is indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Number of distinct values across the corpus.
    #[must_use]
    pub fn distinct_values(&self) -> usize {
        self.postings.len()
    }

    /// Exact intersection counts `|Q ∩ X|` for every domain X overlapping
    /// the query at all, as `(id, count)` pairs in unspecified order.
    #[must_use]
    pub fn overlap_counts(&self, query: &Domain) -> Vec<(DomainId, u32)> {
        let mut counts: FastHashMap<DomainId, u32> = FastHashMap::default();
        for &h in query.hashes() {
            if let Some(ids) = self.postings.get(&h) {
                for &id in ids {
                    *counts.entry(id).or_insert(0) += 1;
                }
            }
        }
        counts.into_iter().collect()
    }

    /// The ground-truth answer set `{X : t(Q, X) ≥ t*}` (Eq. 2), sorted by
    /// id.
    ///
    /// # Panics
    /// Panics if `threshold` is outside `[0, 1]` or the query is empty.
    #[must_use]
    pub fn search(&self, query: &Domain, threshold: f64) -> Vec<DomainId> {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0, 1]"
        );
        assert!(!query.is_empty(), "query domain must not be empty");
        let q = query.len() as f64;
        let mut out: Vec<DomainId> = self
            .overlap_counts(query)
            .into_iter()
            .filter(|&(_, c)| f64::from(c) / q >= threshold)
            .map(|(id, _)| id)
            .collect();
        out.sort_unstable();
        out
    }

    /// Exact containment scores `t(Q, X)` for all overlapping domains,
    /// sorted descending by score (ties by id). Useful for top-k style
    /// inspection and the experiment harness.
    #[must_use]
    pub fn scores(&self, query: &Domain) -> Vec<(DomainId, f64)> {
        let q = query.len() as f64;
        let mut out: Vec<(DomainId, f64)> = self
            .overlap_counts(query)
            .into_iter()
            .map(|(id, c)| (id, f64::from(c) / q))
            .collect();
        out.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN").then(a.0.cmp(&b.0)));
        out
    }
}

/// The exact engine behind the unified query surface: queries must carry
/// their raw universe hashes ([`Query::with_hashes`]); the signature is
/// ignored and every estimate is the *true* containment — which is what
/// makes this the conformance reference for every sketch-based backend.
impl DomainIndex for ExactIndex {
    fn search(&self, query: &Query<'_>) -> Result<SearchOutcome, QueryError> {
        // Exact search never reads the signature, so don't reject on
        // width; validate only the mode/size fields.
        query.validate_for(query.signature().len())?;
        let Some(hashes) = query.hashes() else {
            return Err(QueryError::Unsupported(
                "exact search needs the raw query values (Query::with_hashes)".into(),
            ));
        };
        if hashes.is_empty() {
            return Err(QueryError::Invalid("query domain must not be empty".into()));
        }
        let started = std::time::Instant::now();
        let domain = Domain::from_hashes(hashes.to_vec());
        let q = domain.len() as f64;
        let mut scored: Vec<(DomainId, f64)> = self
            .overlap_counts(&domain)
            .into_iter()
            .map(|(id, c)| (id, f64::from(c) / q))
            .collect();
        let candidates = scored.len();
        scored.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN").then(a.0.cmp(&b.0)));
        let hits: Vec<SearchHit> = match query.mode() {
            QueryMode::Threshold(t_star) => scored
                .into_iter()
                .filter(|&(_, t)| t >= t_star)
                .map(|(id, t)| SearchHit {
                    id,
                    estimate: Some(t),
                })
                .collect(),
            QueryMode::TopK(k) => scored
                .into_iter()
                .take(k)
                .map(|(id, t)| SearchHit {
                    id,
                    estimate: Some(t),
                })
                .collect(),
        };
        Ok(SearchOutcome::new(hits, 1, 1, candidates, started))
    }

    fn len(&self) -> usize {
        ExactIndex::len(self)
    }

    fn memory_bytes(&self) -> usize {
        self.postings
            .values()
            .map(|ids| 16 + ids.len() * std::mem::size_of::<DomainId>())
            .sum::<usize>()
            + self.sizes.len() * std::mem::size_of::<u32>()
    }

    fn describe(&self) -> String {
        "Exact inverted index".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::DomainMeta;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        // 0: {1..10}, 1: {1..5}, 2: {6..10}, 3: {100..110}
        c.push(
            Domain::from_hashes((1..=10).collect()),
            DomainMeta::default(),
        );
        c.push(
            Domain::from_hashes((1..=5).collect()),
            DomainMeta::default(),
        );
        c.push(
            Domain::from_hashes((6..=10).collect()),
            DomainMeta::default(),
        );
        c.push(
            Domain::from_hashes((100..=110).collect()),
            DomainMeta::default(),
        );
        c
    }

    #[test]
    fn search_matches_definition() {
        let c = catalog();
        let idx = ExactIndex::build(&c);
        let q = Domain::from_hashes((1..=5).collect());
        // t(q, 0) = 1.0; t(q, 1) = 1.0; t(q, 2) = 0; t(q, 3) = 0.
        assert_eq!(idx.search(&q, 1.0), vec![0, 1]);
        assert_eq!(idx.search(&q, 0.5), vec![0, 1]);
        let q2 = Domain::from_hashes((4..=8).collect()); // hits 0 (5/5), 1 (2/5), 2 (3/5)
        assert_eq!(idx.search(&q2, 0.6), vec![0, 2]);
        assert_eq!(idx.search(&q2, 0.4), vec![0, 1, 2]);
    }

    #[test]
    fn search_agrees_with_pairwise_containment() {
        let c = catalog();
        let idx = ExactIndex::build(&c);
        let q = Domain::from_hashes(vec![2, 3, 7, 105]);
        for t in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
            let got = idx.search(&q, t);
            let want: Vec<DomainId> = c
                .iter()
                .filter(|(_, d)| q.containment_in(d) >= t)
                .map(|(id, _)| id)
                .collect();
            assert_eq!(got, want, "threshold {t}");
        }
    }

    #[test]
    fn threshold_zero_returns_overlapping_only() {
        // By Eq. 2 every domain satisfies t ≥ 0, but domains with zero
        // overlap are uninteresting; we return overlap > 0 ∪ nothing else.
        // (The harness never queries at t* = 0; documented behaviour.)
        let c = catalog();
        let idx = ExactIndex::build(&c);
        let q = Domain::from_hashes(vec![1]);
        assert_eq!(idx.search(&q, 0.0), vec![0, 1]);
    }

    #[test]
    fn scores_sorted_descending() {
        let c = catalog();
        let idx = ExactIndex::build(&c);
        let q = Domain::from_hashes((4..=8).collect());
        let scores = idx.scores(&q);
        for w in scores.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert_eq!(scores[0].0, 0);
        assert!((scores[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_query_finds_nothing() {
        let idx = ExactIndex::build(&catalog());
        let q = Domain::from_hashes(vec![999_999]);
        assert!(idx.search(&q, 0.1).is_empty());
    }

    #[test]
    fn stats_accessors() {
        let idx = ExactIndex::build(&catalog());
        assert_eq!(idx.len(), 4);
        assert!(!idx.is_empty());
        // values 1..10 and 100..110 → 10 + 11 = 21 distinct.
        assert_eq!(idx.distinct_values(), 21);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_query_rejected() {
        let idx = ExactIndex::build(&catalog());
        let _ = idx.search(&Domain::default(), 0.5);
    }

    #[test]
    fn domain_index_surface_matches_inherent_search() {
        let idx = ExactIndex::build(&catalog());
        let hashes: Vec<u64> = (4..=8).collect();
        let hasher = lshe_minhash::MinHasher::new(64);
        let sig = hasher.signature(hashes.iter().copied());
        let query = lshe_core::Query::threshold(&sig, 0.6).with_hashes(&hashes);
        let out = DomainIndex::search(&idx, &query).expect("search");
        let mut ids: Vec<DomainId> = out.ids();
        ids.sort_unstable();
        assert_eq!(ids, idx.search(&Domain::from_hashes(hashes.clone()), 0.6));
        // Estimates are exact containments, hits sorted descending.
        for h in &out.hits {
            assert!((0.0..=1.0).contains(&h.estimate.expect("exact estimate")));
        }
        for w in out.hits.windows(2) {
            assert!(w[0].estimate >= w[1].estimate);
        }
        assert!(out.stats.candidates >= out.stats.survivors);

        // Top-k through the same surface.
        let top = DomainIndex::search(&idx, &lshe_core::Query::top_k(&sig, 2).with_hashes(&hashes))
            .expect("topk");
        assert_eq!(top.hits.len(), 2);
        assert_eq!(top.hits[0].id, 0, "perfect container ranks first");

        // Without raw values the exact engine reports a typed error.
        let err = DomainIndex::search(&idx, &lshe_core::Query::threshold(&sig, 0.5)).unwrap_err();
        assert!(matches!(err, QueryError::Unsupported(_)), "{err}");
    }
}
