//! A minimal, dependency-free RFC-4180 CSV reader.
//!
//! The paper's accuracy corpus is "the CSV files from the Canadian Open Data
//! repository"; this module provides the ingestion path for real CSV data.
//! It handles quoted fields, escaped quotes (`""`), embedded separators and
//! newlines inside quotes, and both `\n` and `\r\n` row endings. It is a
//! deliberately small reader, not a general CSV toolkit: one pass, borrowed
//! slices, no type inference.

use bytes::Bytes;

/// A parsed CSV document: zero-copy field slices over one shared buffer.
#[derive(Debug, Clone)]
pub struct CsvDocument {
    /// Rows of fields; each field is a slice of the backing buffer (or an
    /// owned unescaped copy when the field contained `""` escapes).
    rows: Vec<Vec<Bytes>>,
}

/// Errors from CSV parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// A quoted field was still open at end of input.
    UnterminatedQuote {
        /// Byte offset where the quoted field started.
        start: usize,
    },
    /// A closing quote was followed by a character other than a separator,
    /// newline, or end of input.
    InvalidQuoteEscape {
        /// Byte offset of the offending character.
        at: usize,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnterminatedQuote { start } => {
                write!(f, "unterminated quoted field starting at byte {start}")
            }
            Self::InvalidQuoteEscape { at } => {
                write!(f, "invalid character after closing quote at byte {at}")
            }
        }
    }
}

impl std::error::Error for CsvError {}

impl CsvDocument {
    /// Parses a CSV buffer with `,` as separator.
    ///
    /// # Errors
    /// Returns [`CsvError`] on malformed quoting.
    pub fn parse(data: Bytes) -> Result<Self, CsvError> {
        Self::parse_with_separator(data, b',')
    }

    /// Parses with an explicit single-byte separator (`,`, `;`, `\t`, ...).
    ///
    /// # Errors
    /// Returns [`CsvError`] on malformed quoting.
    pub fn parse_with_separator(data: Bytes, sep: u8) -> Result<Self, CsvError> {
        let mut rows = Vec::new();
        let mut row: Vec<Bytes> = Vec::new();
        let bytes = &data[..];
        let n = bytes.len();
        let mut i = 0usize;
        // Tracks whether we are mid-row (so a trailing newline doesn't emit
        // an empty final row, but `a,b\nc` still emits the `c` row).
        let mut at_row_start = true;
        while i < n {
            if bytes[i] == b'"' {
                // Quoted field.
                let start = i;
                i += 1;
                let field_start = i;
                let mut owned: Option<Vec<u8>> = None;
                let mut seg_start = i;
                loop {
                    if i >= n {
                        return Err(CsvError::UnterminatedQuote { start });
                    }
                    if bytes[i] == b'"' {
                        if i + 1 < n && bytes[i + 1] == b'"' {
                            // Escaped quote: flush segment + one quote.
                            let owned = owned.get_or_insert_with(Vec::new);
                            owned.extend_from_slice(&bytes[seg_start..i]);
                            owned.push(b'"');
                            i += 2;
                            seg_start = i;
                        } else {
                            break; // closing quote
                        }
                    } else {
                        i += 1;
                    }
                }
                let field = match owned {
                    Some(mut o) => {
                        o.extend_from_slice(&bytes[seg_start..i]);
                        Bytes::from(o)
                    }
                    None => data.slice(field_start..i),
                };
                i += 1; // past closing quote
                row.push(field);
                at_row_start = false;
                // After a quoted field: separator, newline, or EOF.
                if i < n {
                    match bytes[i] {
                        b if b == sep => {
                            i += 1;
                            if i == n {
                                row.push(Bytes::new()); // trailing empty field
                            }
                        }
                        b'\n' => {
                            i += 1;
                            rows.push(std::mem::take(&mut row));
                            at_row_start = true;
                        }
                        b'\r' if i + 1 < n && bytes[i + 1] == b'\n' => {
                            i += 2;
                            rows.push(std::mem::take(&mut row));
                            at_row_start = true;
                        }
                        _ => return Err(CsvError::InvalidQuoteEscape { at: i }),
                    }
                }
            } else {
                // Unquoted field: scan to separator or newline.
                let start = i;
                while i < n && bytes[i] != sep && bytes[i] != b'\n' && bytes[i] != b'\r' {
                    i += 1;
                }
                row.push(data.slice(start..i));
                at_row_start = false;
                if i < n {
                    match bytes[i] {
                        b if b == sep => {
                            i += 1;
                            if i == n {
                                row.push(Bytes::new()); // trailing empty field
                            }
                        }
                        b'\n' => {
                            i += 1;
                            rows.push(std::mem::take(&mut row));
                            at_row_start = true;
                        }
                        b'\r' => {
                            i += if i + 1 < n && bytes[i + 1] == b'\n' {
                                2
                            } else {
                                1
                            };
                            rows.push(std::mem::take(&mut row));
                            at_row_start = true;
                        }
                        _ => unreachable!("scan stopped on unknown byte"),
                    }
                }
            }
        }
        if !at_row_start || !row.is_empty() {
            rows.push(row);
        }
        Ok(Self { rows })
    }

    /// All rows, including the header if present.
    #[must_use]
    pub fn rows(&self) -> &[Vec<Bytes>] {
        &self.rows
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the document has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Interprets the first row as a header and returns the column names
    /// (lossily UTF-8 decoded).
    #[must_use]
    pub fn header(&self) -> Vec<String> {
        self.rows
            .first()
            .map(|r| {
                r.iter()
                    .map(|f| String::from_utf8_lossy(f).into_owned())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Extracts the distinct non-empty values of column `col` from the data
    /// rows (all rows after the header), as raw byte fields.
    #[must_use]
    pub fn column_values(&self, col: usize) -> Vec<Bytes> {
        self.rows
            .iter()
            .skip(1)
            .filter_map(|r| r.get(col))
            .filter(|f| !f.is_empty())
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(s: &str) -> CsvDocument {
        CsvDocument::parse(Bytes::copy_from_slice(s.as_bytes())).expect("parse")
    }

    fn field(d: &CsvDocument, r: usize, c: usize) -> String {
        String::from_utf8_lossy(&d.rows()[r][c]).into_owned()
    }

    #[test]
    fn simple_rows() {
        let d = doc("a,b,c\n1,2,3\n");
        assert_eq!(d.len(), 2);
        assert_eq!(field(&d, 0, 0), "a");
        assert_eq!(field(&d, 1, 2), "3");
    }

    #[test]
    fn no_trailing_newline() {
        let d = doc("a,b\n1,2");
        assert_eq!(d.len(), 2);
        assert_eq!(field(&d, 1, 1), "2");
    }

    #[test]
    fn crlf_rows() {
        let d = doc("a,b\r\n1,2\r\n");
        assert_eq!(d.len(), 2);
        assert_eq!(field(&d, 0, 1), "b");
        assert_eq!(field(&d, 1, 0), "1");
    }

    #[test]
    fn quoted_fields_with_separator_and_newline() {
        let d = doc("name,notes\n\"Smith, John\",\"line1\nline2\"\n");
        assert_eq!(d.len(), 2);
        assert_eq!(field(&d, 1, 0), "Smith, John");
        assert_eq!(field(&d, 1, 1), "line1\nline2");
    }

    #[test]
    fn escaped_quotes() {
        let d = doc("q\n\"say \"\"hi\"\"\"\n");
        assert_eq!(field(&d, 1, 0), "say \"hi\"");
    }

    #[test]
    fn empty_fields_preserved() {
        let d = doc("a,,c\n,,\n");
        assert_eq!(d.rows()[0].len(), 3);
        assert_eq!(field(&d, 0, 1), "");
        assert_eq!(d.rows()[1].len(), 3);
    }

    #[test]
    fn unterminated_quote_is_error() {
        let err = CsvDocument::parse(Bytes::from_static(b"a\n\"oops")).unwrap_err();
        assert!(matches!(err, CsvError::UnterminatedQuote { .. }));
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn junk_after_quote_is_error() {
        let err = CsvDocument::parse(Bytes::from_static(b"\"a\"x,b\n")).unwrap_err();
        assert!(matches!(err, CsvError::InvalidQuoteEscape { .. }));
    }

    #[test]
    fn header_and_column_extraction() {
        let d = doc("city,province\nToronto,Ontario\nHalifax,Nova Scotia\n,Ontario\n");
        assert_eq!(d.header(), vec!["city", "province"]);
        let cities = d.column_values(0);
        // Empty field skipped.
        assert_eq!(cities.len(), 2);
        let provinces = d.column_values(1);
        assert_eq!(provinces.len(), 3); // duplicates kept; Domain dedups
    }

    #[test]
    fn alternative_separator() {
        let d = CsvDocument::parse_with_separator(Bytes::from_static(b"a;b\n1;2\n"), b';')
            .expect("parse");
        assert_eq!(String::from_utf8_lossy(&d.rows()[1][1]), "2");
    }

    #[test]
    fn empty_input_is_empty_document() {
        let d = doc("");
        assert!(d.is_empty());
        assert!(d.header().is_empty());
    }

    #[test]
    fn trailing_separator_yields_empty_field() {
        let d = doc("a,b,");
        assert_eq!(d.rows()[0].len(), 3);
        assert_eq!(field(&d, 0, 2), "");
        let d = doc(",");
        assert_eq!(d.rows()[0].len(), 2);
    }

    #[test]
    fn lone_cr_ends_row() {
        let d = doc("a\rb");
        assert_eq!(d.len(), 2);
        assert_eq!(field(&d, 0, 0), "a");
        assert_eq!(field(&d, 1, 0), "b");
    }
}
