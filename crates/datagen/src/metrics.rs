//! Accuracy metrics: set-overlap precision, recall, and Fβ (Eq. 27–28),
//! with the paper's conventions for empty result sets.
//!
//! > "We consider an empty result having precision equal to 1.0, however,
//! > we exclude such results when computing average precisions." (§6.1)

use lshe_corpus::DomainId;

/// Precision / recall / Fβ of one query's answer set against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryAccuracy {
    /// `|A ∩ T| / |A|`; 1.0 when `A` is empty (paper's convention).
    pub precision: f64,
    /// `|A ∩ T| / |T|`; 1.0 when `T` is empty (nothing to find).
    pub recall: f64,
    /// Whether the answer set was empty (excluded from precision averages).
    pub empty_answer: bool,
    /// Whether the truth set was empty (excluded from recall averages).
    pub empty_truth: bool,
}

impl QueryAccuracy {
    /// Fβ score (Eq. 28). β = 1 weighs precision and recall equally;
    /// β = 0.5 biases toward precision as in the paper's F0.5 plots.
    #[must_use]
    pub fn f_beta(&self, beta: f64) -> f64 {
        let b2 = beta * beta;
        let denom = b2 * self.precision + self.recall;
        if denom == 0.0 {
            0.0
        } else {
            (1.0 + b2) * self.precision * self.recall / denom
        }
    }
}

/// Computes one query's accuracy. Both slices must be duplicate-free; order
/// is irrelevant.
#[must_use]
pub fn query_accuracy(answer: &[DomainId], truth: &[DomainId]) -> QueryAccuracy {
    let truth_set: std::collections::HashSet<DomainId> = truth.iter().copied().collect();
    let hits = answer.iter().filter(|id| truth_set.contains(id)).count() as f64;
    let precision = if answer.is_empty() {
        1.0
    } else {
        hits / answer.len() as f64
    };
    let recall = if truth.is_empty() {
        1.0
    } else {
        hits / truth.len() as f64
    };
    QueryAccuracy {
        precision,
        recall,
        empty_answer: answer.is_empty(),
        empty_truth: truth.is_empty(),
    }
}

/// Averaged accuracy across a query workload, following the paper's
/// exclusion conventions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadAccuracy {
    /// Mean precision over queries with non-empty answers.
    pub precision: f64,
    /// Mean recall over queries with non-empty truth sets.
    pub recall: f64,
    /// F1 computed from the averaged precision and recall.
    pub f1: f64,
    /// F0.5 computed from the averaged precision and recall.
    pub f05: f64,
    /// Number of queries whose answer set was empty.
    pub empty_answers: usize,
    /// Number of queries evaluated.
    pub queries: usize,
}

/// Aggregates per-query accuracies into workload averages.
///
/// Queries with empty answers are excluded from the precision average;
/// queries with empty truth sets are excluded from the recall average.
/// If every answer is empty, precision is reported as 1.0 (nothing asserted,
/// nothing wrong); if every truth set is empty, recall is 1.0.
#[must_use]
pub fn aggregate(per_query: &[QueryAccuracy]) -> WorkloadAccuracy {
    let mut p_sum = 0.0;
    let mut p_n = 0usize;
    let mut r_sum = 0.0;
    let mut r_n = 0usize;
    let mut empty_answers = 0usize;
    for qa in per_query {
        if qa.empty_answer {
            empty_answers += 1;
        } else {
            p_sum += qa.precision;
            p_n += 1;
        }
        if !qa.empty_truth {
            r_sum += qa.recall;
            r_n += 1;
        }
    }
    let precision = if p_n == 0 { 1.0 } else { p_sum / p_n as f64 };
    let recall = if r_n == 0 { 1.0 } else { r_sum / r_n as f64 };
    let f = |beta: f64| {
        let b2 = beta * beta;
        let denom = b2 * precision + recall;
        if denom == 0.0 {
            0.0
        } else {
            (1.0 + b2) * precision * recall / denom
        }
    };
    WorkloadAccuracy {
        precision,
        recall,
        f1: f(1.0),
        f05: f(0.5),
        empty_answers,
        queries: per_query.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_answer() {
        let qa = query_accuracy(&[1, 2, 3], &[1, 2, 3]);
        assert_eq!(qa.precision, 1.0);
        assert_eq!(qa.recall, 1.0);
        assert_eq!(qa.f_beta(1.0), 1.0);
    }

    #[test]
    fn half_precision_full_recall() {
        let qa = query_accuracy(&[1, 2, 3, 4], &[1, 2]);
        assert_eq!(qa.precision, 0.5);
        assert_eq!(qa.recall, 1.0);
        let f1 = qa.f_beta(1.0);
        assert!((f1 - 2.0 / 3.0).abs() < 1e-12);
        // F0.5 biases toward precision → lower than F1 here.
        assert!(qa.f_beta(0.5) < f1);
    }

    #[test]
    fn empty_answer_convention() {
        let qa = query_accuracy(&[], &[1, 2]);
        assert_eq!(qa.precision, 1.0);
        assert_eq!(qa.recall, 0.0);
        assert!(qa.empty_answer);
    }

    #[test]
    fn empty_truth_convention() {
        let qa = query_accuracy(&[1], &[]);
        assert_eq!(qa.recall, 1.0);
        assert!(qa.empty_truth);
        assert_eq!(qa.precision, 0.0);
    }

    #[test]
    fn aggregate_excludes_empty_answers_from_precision() {
        let qas = vec![
            query_accuracy(&[1, 9], &[1]), // precision 0.5
            query_accuracy(&[], &[1]),     // empty answer: excluded from P
        ];
        let w = aggregate(&qas);
        assert_eq!(w.precision, 0.5);
        assert_eq!(w.empty_answers, 1);
        assert_eq!(w.queries, 2);
        // Recall averages over both: (1.0 + 0.0) / 2.
        assert_eq!(w.recall, 0.5);
    }

    #[test]
    fn aggregate_excludes_empty_truth_from_recall() {
        let qas = vec![
            query_accuracy(&[1], &[]),     // empty truth: excluded from R
            query_accuracy(&[1], &[1, 2]), // recall 0.5
        ];
        let w = aggregate(&qas);
        assert_eq!(w.recall, 0.5);
    }

    #[test]
    fn aggregate_all_empty() {
        let w = aggregate(&[query_accuracy(&[], &[])]);
        assert_eq!(w.precision, 1.0);
        assert_eq!(w.recall, 1.0);
    }

    #[test]
    fn f_beta_zero_when_nothing_found() {
        let qa = query_accuracy(&[9], &[1]);
        assert_eq!(qa.precision, 0.0);
        assert_eq!(qa.recall, 0.0);
        assert_eq!(qa.f_beta(1.0), 0.0);
        assert_eq!(qa.f_beta(0.5), 0.0);
    }
}
