//! # lshe-datagen
//!
//! Synthetic workloads for the LSH Ensemble reproduction: power-law corpora
//! calibrated to the paper's Figure 1, query sampling (§6.1), accuracy
//! metrics (Eq. 27–28), and the skewness machinery behind Figure 5.
//!
//! This crate replaces the paper's proprietary corpora — Canadian Open Data
//! and the WDC Web Table Corpus 2015 — with generators that control exactly
//! the two properties the experiments exercise: the domain-size distribution
//! and the containment structure between domains. See DESIGN.md for the
//! substitution rationale.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod corpus_gen;
pub mod metrics;
pub mod powerlaw;
pub mod queries;
pub mod skew;

pub use corpus_gen::{generate_catalog, CorpusConfig, CorpusStream};
pub use metrics::{aggregate, query_accuracy, QueryAccuracy, WorkloadAccuracy};
pub use powerlaw::{log2_histogram, PowerLawSizes};
pub use queries::{sample_queries, SizeBand};
pub use skew::{nested_size_subsets, skewness, std_dev};
