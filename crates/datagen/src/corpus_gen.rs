//! Synthetic corpus generation with controlled overlap structure.
//!
//! This replaces the paper's two proprietary corpora (Canadian Open Data,
//! WDC Web Tables — see the substitution table in DESIGN.md). The generator
//! controls the two properties the paper's experiments actually exercise:
//!
//! 1. **Domain-size distribution** — truncated power law (Figure 1),
//!    via [`crate::powerlaw::PowerLawSizes`].
//! 2. **Containment structure** — domains are grouped into topic clusters
//!    that share a value pool, so domains within a cluster overlap across
//!    the whole containment spectrum (the way open-data columns like
//!    `province` or `partner` recur across tables), while domains in
//!    different clusters are (nearly) disjoint. A configurable noise
//!    fraction of per-domain fresh values keeps containments off the
//!    degenerate 0/1 extremes.
//!
//! Pool values are *virtual*: position `p` of cluster `c` materialises as
//! `hash(seed, c, p)`, so pools cost no memory and two corpora with the
//! same seed are identical.

use crate::powerlaw::PowerLawSizes;
use lshe_corpus::{Catalog, Domain, DomainMeta};
use lshe_minhash::hash::splitmix64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`generate_catalog`].
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusConfig {
    /// Number of domains to generate.
    pub num_domains: usize,
    /// Smallest domain size (the paper floors its accuracy corpus at 10).
    pub min_size: u64,
    /// Largest domain size.
    pub max_size: u64,
    /// Power-law exponent α (> 1).
    pub alpha: f64,
    /// Domains per topic cluster (overlap group).
    pub cluster_size: usize,
    /// Ratio of a cluster's value-pool size to its largest member domain
    /// (≥ 1). Larger pools thin out pairwise overlaps.
    pub pool_factor: f64,
    /// Fraction of each domain drawn as globally fresh noise values
    /// (`0.0 ..= 1.0`).
    pub noise_fraction: f64,
    /// Probability that a domain is generated as a *subset* of its cluster
    /// predecessor instead of a fresh pool draw (`0.0 ..= 1.0`). Real
    /// open-data corpora contain many repeated/projected columns across
    /// tables; this knob reproduces the resulting high-containment pairs,
    /// without which ground truth at thresholds near 1.0 degenerates to
    /// self-matches only.
    pub subset_fraction: f64,
    /// Master seed.
    pub seed: u64,
}

impl CorpusConfig {
    /// A corpus shaped like the paper's Canadian Open Data accuracy corpus:
    /// 65,533 domains of at least 10 values with a power-law size
    /// distribution (§6.1, Figure 1 left). `max_size` is kept at 2^17 so
    /// the exact ground-truth engine stays laptop-sized; the distribution
    /// shape — which drives every accuracy result — is preserved.
    #[must_use]
    pub fn canadian_open_data_like() -> Self {
        Self {
            num_domains: 65_533,
            min_size: 10,
            max_size: 1 << 17,
            alpha: 2.0,
            cluster_size: 24,
            pool_factor: 1.6,
            noise_fraction: 0.15,
            subset_fraction: 0.2,
            seed: 0xCA_0D,
        }
    }

    /// A corpus shaped like the WDC Web Table corpus used for the
    /// performance experiments (§6.3, Figure 1 right): many domains, sizes
    /// from 1 to ~2^14. `num_domains` defaults to 1 million and is meant to
    /// be scaled by the caller (`--domains` in the harness binaries).
    #[must_use]
    pub fn wdc_web_tables_like(num_domains: usize) -> Self {
        Self {
            num_domains,
            min_size: 1,
            max_size: 1 << 14,
            alpha: 2.0,
            cluster_size: 24,
            pool_factor: 1.6,
            noise_fraction: 0.15,
            subset_fraction: 0.2,
            seed: 0x3DC,
        }
    }

    /// A small smoke-test corpus for unit/integration tests.
    #[must_use]
    pub fn tiny(num_domains: usize, seed: u64) -> Self {
        Self {
            num_domains,
            min_size: 10,
            max_size: 1 << 10,
            alpha: 2.0,
            cluster_size: 10,
            pool_factor: 1.5,
            noise_fraction: 0.1,
            subset_fraction: 0.2,
            seed,
        }
    }
}

/// Virtual pool value: position `p` of cluster `c` under `seed`.
#[inline]
fn pool_value(seed: u64, cluster: u64, position: u64) -> u64 {
    // Three rounds of mixing decorrelate the coordinates; the result is a
    // point of the value universe. Distinct (cluster, position) pairs give
    // distinct values with probability 1 − 2⁻⁶⁴ per pair.
    splitmix64(
        splitmix64(seed ^ 0x9E3779B97F4A7C15) ^ splitmix64(cluster).rotate_left(17) ^ position,
    )
}

/// Globally fresh noise value `j` of domain `d`.
#[inline]
fn noise_value(seed: u64, domain: u64, j: u64) -> u64 {
    splitmix64(splitmix64(seed ^ 0x6E015E) ^ splitmix64(domain).rotate_left(31) ^ j)
}

/// Streaming corpus generator: yields `(Domain, DomainMeta)` pairs one at
/// a time, holding only the current cluster's size samples and the
/// previous member (the subset-projection parent) in memory.
///
/// This is how multi-gigabyte corpora are produced for the scaling
/// benches: the consumer sketches or packs each domain and drops it, so
/// corpus size is bounded by disk (or by nothing at all, for
/// sketch-and-discard pipelines), not by RAM. [`generate_catalog`] is a
/// `collect` over this stream, and the two are value-identical: equal
/// configs give equal domain sequences.
#[derive(Debug)]
pub struct CorpusStream {
    config: CorpusConfig,
    sizes_dist: PowerLawSizes,
    rng: StdRng,
    /// Size samples for the cluster currently being emitted.
    cluster_sizes: Vec<u64>,
    /// Virtual pool size backing the current cluster.
    pool_size: u64,
    /// Previous member of the current cluster (subset-projection parent).
    prev: Option<Domain>,
    cluster: u64,
    /// Index of the next member within the current cluster.
    member: usize,
    next_id: u64,
}

impl CorpusStream {
    /// Starts a stream over `config`.
    ///
    /// # Panics
    /// Panics on nonsensical configuration (zero domains, empty clusters,
    /// `pool_factor < 1`, noise or subset fractions outside `[0, 1]`).
    #[must_use]
    pub fn new(config: CorpusConfig) -> Self {
        assert!(config.num_domains > 0, "need at least one domain");
        assert!(config.cluster_size > 0, "clusters must be non-empty");
        assert!(config.pool_factor >= 1.0, "pool must cover largest member");
        assert!(
            (0.0..=1.0).contains(&config.noise_fraction),
            "noise fraction must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&config.subset_fraction),
            "subset fraction must be in [0, 1]"
        );
        let sizes_dist = PowerLawSizes::new(config.min_size, config.max_size, config.alpha);
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            config,
            sizes_dist,
            rng,
            cluster_sizes: Vec::new(),
            pool_size: 0,
            prev: None,
            // `member == cluster_sizes.len()` forces cluster 0 setup on the
            // first `next()`; the counter starts one shy for that reason.
            cluster: u64::MAX,
            member: 0,
            next_id: 0,
        }
    }

    /// Total number of domains this stream will yield.
    #[must_use]
    pub fn total(&self) -> usize {
        self.config.num_domains
    }

    /// Number of domains already yielded.
    #[must_use]
    pub fn emitted(&self) -> usize {
        self.next_id as usize
    }

    /// Samples the next cluster's sizes and pool, resetting member state.
    fn begin_cluster(&mut self) {
        self.cluster = self.cluster.wrapping_add(1);
        let members = self
            .config
            .cluster_size
            .min(self.config.num_domains - self.cluster as usize * self.config.cluster_size);
        self.cluster_sizes = self.sizes_dist.sample_many(&mut self.rng, members);
        let max_member = self
            .cluster_sizes
            .iter()
            .copied()
            .max()
            .unwrap_or(self.config.min_size);
        // Pool large enough that the biggest member fits its pooled share.
        self.pool_size =
            ((max_member as f64 * self.config.pool_factor).ceil() as u64).max(max_member.max(1));
        self.prev = None;
        self.member = 0;
    }

    /// Generates the current member's domain (fresh draw or projection).
    fn make_domain(&mut self, size: u64) -> Domain {
        // With probability subset_fraction, project the previous cluster
        // member instead of drawing from the pool — mirrors columns
        // republished or projected across open-data tables and produces
        // exact-containment-1.0 pairs for the ground truth.
        let as_subset = self.member > 0 && self.rng.gen_bool(self.config.subset_fraction);
        if as_subset {
            let prev = self.prev.as_ref().expect("member > 0");
            let take = (size as usize).min(prev.len());
            // Deterministic stride sampling over the parent's hashes:
            // spreads the subset across the parent without a shuffle.
            let stride = (prev.len() / take.max(1)).max(1);
            let hashes: Vec<u64> = prev
                .hashes()
                .iter()
                .step_by(stride)
                .take(take)
                .copied()
                .collect();
            Domain::from_hashes(hashes)
        } else {
            let noise = ((size as f64) * self.config.noise_fraction).round() as u64;
            let pooled = size - noise;
            let mut hashes = Vec::with_capacity(size as usize);
            // Sample `pooled` distinct positions from [0, pool_size).
            // Floyd's algorithm avoids building the full position range.
            let mut chosen = lshe_minhash::hash::FastHashSet::default();
            chosen.reserve(pooled as usize);
            for j in (self.pool_size - pooled)..self.pool_size {
                let t = self.rng.gen_range(0..=j);
                let pick = if chosen.insert(t) { t } else { j };
                if pick != t {
                    chosen.insert(pick);
                }
                hashes.push(pool_value(self.config.seed, self.cluster, pick));
            }
            for j in 0..noise {
                hashes.push(noise_value(self.config.seed, self.next_id, j));
            }
            Domain::from_hashes(hashes)
        }
    }
}

impl Iterator for CorpusStream {
    type Item = (Domain, DomainMeta);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next_id as usize >= self.config.num_domains {
            return None;
        }
        if self.member >= self.cluster_sizes.len() {
            self.begin_cluster();
        }
        let size = self.cluster_sizes[self.member];
        let domain = self.make_domain(size);
        let meta = DomainMeta::new(
            format!("synthetic/cluster{}", self.cluster),
            format!("col{}", self.next_id),
        );
        self.prev = Some(domain.clone());
        self.member += 1;
        self.next_id += 1;
        Some((domain, meta))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.config.num_domains - self.next_id as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for CorpusStream {}

/// Generates a catalog according to `config`.
///
/// Deterministic: equal configs yield equal catalogs. Domains are labelled
/// `synthetic/cluster<k>` / `col<i>` so provenance-driven code paths have
/// something to show. This materialises the whole corpus; for corpora that
/// do not fit in memory, consume [`CorpusStream`] directly.
///
/// # Panics
/// Panics on nonsensical configuration (zero domains, empty clusters,
/// `pool_factor < 1`, noise outside `[0, 1]`).
#[must_use]
pub fn generate_catalog(config: &CorpusConfig) -> Catalog {
    let mut catalog = Catalog::new();
    for (domain, meta) in CorpusStream::new(config.clone()) {
        catalog.push(domain, meta);
    }
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = CorpusConfig::tiny(200, 7);
        let a = generate_catalog(&cfg);
        let b = generate_catalog(&cfg);
        assert_eq!(a.len(), b.len());
        for (id, d) in a.iter() {
            assert_eq!(d, b.domain(id));
        }
    }

    #[test]
    fn respects_domain_count_and_size_bounds() {
        let cfg = CorpusConfig::tiny(333, 1);
        let c = generate_catalog(&cfg);
        assert_eq!(c.len(), 333);
        for (_, d) in c.iter() {
            // Noise rounding and pooled dedup can shave a value or two off
            // the target; sizes must stay in the configured ballpark.
            assert!(d.len() as u64 >= cfg.min_size - 1, "size {}", d.len());
            assert!(d.len() as u64 <= cfg.max_size);
        }
    }

    #[test]
    fn clusters_overlap_internally() {
        let cfg = CorpusConfig::tiny(40, 3); // 4 clusters of 10
        let c = generate_catalog(&cfg);
        // Two members of cluster 0 share pool values with decent odds;
        // check at least one intra-cluster pair overlaps.
        let mut found = false;
        for i in 0..10u32 {
            for j in (i + 1)..10 {
                if c.domain(i).intersection_size(c.domain(j)) > 0 {
                    found = true;
                }
            }
        }
        assert!(found, "intra-cluster overlap expected");
    }

    #[test]
    fn clusters_nearly_disjoint_externally() {
        let cfg = CorpusConfig::tiny(40, 4);
        let c = generate_catalog(&cfg);
        // Cross-cluster pairs share only astronomically unlikely hash
        // collisions.
        for i in 0..10u32 {
            for j in 10..20u32 {
                assert_eq!(
                    c.domain(i).intersection_size(c.domain(j)),
                    0,
                    "domains {i} and {j} should be disjoint"
                );
            }
        }
    }

    #[test]
    fn sizes_follow_power_law_shape() {
        let mut cfg = CorpusConfig::tiny(20_000, 5);
        cfg.min_size = 1;
        cfg.max_size = 1 << 12;
        let c = generate_catalog(&cfg);
        let sizes: Vec<u64> = c.sizes().iter().map(|&s| s as u64).collect();
        let small = sizes.iter().filter(|&&s| s <= 4).count();
        let large = sizes.iter().filter(|&&s| s > 256).count();
        assert!(small > large * 10, "small {small} vs large {large}");
    }

    #[test]
    fn noise_fraction_zero_gives_pool_only_domains() {
        let mut cfg = CorpusConfig::tiny(20, 6);
        cfg.noise_fraction = 0.0;
        let c = generate_catalog(&cfg);
        assert_eq!(c.len(), 20);
        // With no noise, every value of every domain in cluster 0 comes
        // from the shared pool; union of two domains can't exceed pool.
        // Smoke: overlap still occurs.
        let mut any = 0usize;
        for i in 0..10u32 {
            for j in (i + 1)..10 {
                any += c.domain(i).intersection_size(c.domain(j));
            }
        }
        assert!(any > 0);
    }

    #[test]
    fn provenance_is_recorded() {
        let cfg = CorpusConfig::tiny(12, 8);
        let c = generate_catalog(&cfg);
        assert!(c.meta(0).table.starts_with("synthetic/cluster"));
        assert_eq!(c.meta(3).column, "col3");
    }

    #[test]
    fn subset_domains_create_perfect_containments() {
        let mut cfg = CorpusConfig::tiny(500, 21);
        cfg.subset_fraction = 0.5;
        let c = generate_catalog(&cfg);
        // Count pairs with exact containment 1.0 among cluster neighbours.
        let mut perfect = 0usize;
        for id in 1..c.len() as u32 {
            if c.meta(id).table == c.meta(id - 1).table
                && c.domain(id).containment_in(c.domain(id - 1)) >= 1.0 - 1e-12
            {
                perfect += 1;
            }
        }
        assert!(
            perfect >= 100,
            "expected many subset pairs at fraction 0.5, got {perfect}"
        );
    }

    #[test]
    fn zero_subset_fraction_has_no_forced_duplicates() {
        let mut cfg = CorpusConfig::tiny(100, 22);
        cfg.subset_fraction = 0.0;
        let c = generate_catalog(&cfg);
        assert_eq!(c.len(), 100);
    }

    #[test]
    #[should_panic(expected = "at least one domain")]
    fn zero_domains_rejected() {
        let mut cfg = CorpusConfig::tiny(1, 0);
        cfg.num_domains = 0;
        let _ = generate_catalog(&cfg);
    }

    #[test]
    fn stream_matches_batch_catalog() {
        // The streaming generator must be value-identical to the batch
        // path (which is now a collect over it, but keep the contract
        // pinned independently): same domains, same metadata, same order.
        let cfg = CorpusConfig::tiny(137, 11);
        let batch = generate_catalog(&cfg);
        let mut n = 0u32;
        for (domain, meta) in CorpusStream::new(cfg.clone()) {
            assert_eq!(&domain, batch.domain(n), "domain {n} diverges");
            assert_eq!(meta.table, batch.meta(n).table);
            assert_eq!(meta.column, batch.meta(n).column);
            n += 1;
        }
        assert_eq!(n as usize, batch.len());
    }

    #[test]
    fn stream_reports_progress_and_length() {
        let cfg = CorpusConfig::tiny(57, 13);
        let mut stream = CorpusStream::new(cfg);
        assert_eq!(stream.total(), 57);
        assert_eq!(stream.len(), 57);
        assert_eq!(stream.emitted(), 0);
        let _ = stream.next();
        assert_eq!(stream.emitted(), 1);
        assert_eq!(stream.len(), 56);
        assert_eq!(stream.by_ref().count(), 56);
        assert_eq!(stream.emitted(), 57);
        assert!(stream.next().is_none(), "stream must stay exhausted");
    }

    #[test]
    fn stream_holds_at_most_one_cluster_of_state() {
        // Memory contract: after each yield, retained state is the current
        // cluster's size vector and one parent domain — not the corpus.
        // Proxy check: a large-domain-count stream can be advanced a few
        // steps without materialising everything (this would OOM or take
        // minutes if the constructor pre-generated the corpus).
        let mut cfg = CorpusConfig::tiny(10_000_000, 17);
        cfg.min_size = 10;
        cfg.max_size = 1 << 8;
        let mut stream = CorpusStream::new(cfg);
        for _ in 0..100 {
            let (domain, _) = stream.next().expect("stream yields");
            assert!(!domain.hashes().is_empty());
        }
        assert_eq!(stream.emitted(), 100);
    }
}
