//! Truncated power-law samplers for domain sizes.
//!
//! Figure 1 of the paper shows that both the Canadian Open Data corpus and
//! the WDC Web Table corpus have domain-size distributions following a
//! power law `f(x) ∝ x^(−α)` with `α > 1`. All synthetic corpora in this
//! workspace draw their sizes from [`PowerLawSizes`], a truncated continuous
//! Pareto sampled by inverse transform and floored to integers.

use rand::Rng;

/// A truncated power-law size distribution on `[min_size, max_size]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawSizes {
    min_size: u64,
    max_size: u64,
    alpha: f64,
}

impl PowerLawSizes {
    /// Creates a sampler for `f(x) ∝ x^(−α)` truncated to
    /// `[min_size, max_size]`.
    ///
    /// # Panics
    /// Panics unless `1 < α`, `0 < min_size ≤ max_size`.
    #[must_use]
    pub fn new(min_size: u64, max_size: u64, alpha: f64) -> Self {
        assert!(alpha > 1.0, "power-law exponent must exceed 1");
        assert!(min_size > 0, "minimum size must be positive");
        assert!(min_size <= max_size, "size range must be non-empty");
        Self {
            min_size,
            max_size,
            alpha,
        }
    }

    /// Lower bound of the support.
    #[must_use]
    pub fn min_size(&self) -> u64 {
        self.min_size
    }

    /// Upper bound of the support.
    #[must_use]
    pub fn max_size(&self) -> u64 {
        self.max_size
    }

    /// The exponent α.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Draws one size.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.min_size == self.max_size {
            return self.min_size;
        }
        // Inverse transform for the truncated Pareto on [l, u+1):
        //   F^{-1}(p) = [l^(1−α) + p·((u+1)^(1−α) − l^(1−α))]^(1/(1−α))
        // flooring maps the continuous draw onto integers l..=u with the
        // correct tail shape.
        let l = self.min_size as f64;
        let u = (self.max_size + 1) as f64;
        let one_minus_a = 1.0 - self.alpha;
        let p: f64 = rng.gen();
        let x = (l.powf(one_minus_a) + p * (u.powf(one_minus_a) - l.powf(one_minus_a)))
            .powf(1.0 / one_minus_a);
        (x.floor() as u64).clamp(self.min_size, self.max_size)
    }

    /// Draws `n` sizes.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Theoretical complementary CDF `P(X ≥ x)` of the continuous
    /// truncation — used by tests to validate the sampler.
    #[must_use]
    pub fn ccdf(&self, x: f64) -> f64 {
        let l = self.min_size as f64;
        let u = (self.max_size + 1) as f64;
        if x <= l {
            return 1.0;
        }
        if x >= u {
            return 0.0;
        }
        let one_minus_a = 1.0 - self.alpha;
        (u.powf(one_minus_a) - x.powf(one_minus_a)) / (u.powf(one_minus_a) - l.powf(one_minus_a))
    }
}

/// Builds a log2-bucketed histogram of sizes: bucket `k` counts sizes in
/// `[2^k, 2^(k+1))`. This is the exact presentation of Figure 1.
#[must_use]
pub fn log2_histogram(sizes: &[u64]) -> Vec<(u32, usize)> {
    let mut buckets: Vec<usize> = Vec::new();
    for &s in sizes {
        if s == 0 {
            continue;
        }
        let k = 63 - s.leading_zeros();
        if buckets.len() <= k as usize {
            buckets.resize(k as usize + 1, 0);
        }
        buckets[k as usize] += 1;
    }
    buckets
        .into_iter()
        .enumerate()
        .map(|(k, c)| (k as u32, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let d = PowerLawSizes::new(10, 1 << 20, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!((10..=(1 << 20)).contains(&s));
        }
    }

    #[test]
    fn degenerate_range_is_constant() {
        let d = PowerLawSizes::new(7, 7, 2.0);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(d.sample(&mut rng), 7);
    }

    #[test]
    fn empirical_ccdf_matches_theory() {
        let d = PowerLawSizes::new(10, 100_000, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let sizes = d.sample_many(&mut rng, n);
        for &x in &[20.0f64, 100.0, 1_000.0, 10_000.0] {
            let emp = sizes.iter().filter(|&&s| (s as f64) >= x).count() as f64 / n as f64;
            let theory = d.ccdf(x);
            assert!(
                (emp - theory).abs() < 0.01 + theory * 0.15,
                "x={x}: empirical {emp} vs theory {theory}"
            );
        }
    }

    #[test]
    fn smaller_sizes_dominate() {
        let d = PowerLawSizes::new(10, 1 << 16, 2.0);
        let mut rng = StdRng::seed_from_u64(4);
        let sizes = d.sample_many(&mut rng, 20_000);
        let small = sizes.iter().filter(|&&s| s < 100).count();
        assert!(
            small > sizes.len() / 2,
            "power law must be bottom-heavy: {small}"
        );
    }

    #[test]
    fn log2_histogram_buckets_correctly() {
        let h = log2_histogram(&[1, 2, 3, 4, 7, 8, 1024]);
        // bucket 0: {1}; bucket 1: {2,3}; bucket 2: {4,7}; bucket 3: {8};
        // bucket 10: {1024}.
        let get = |k: u32| h.iter().find(|&&(b, _)| b == k).map_or(0, |&(_, c)| c);
        assert_eq!(get(0), 1);
        assert_eq!(get(1), 2);
        assert_eq!(get(2), 2);
        assert_eq!(get(3), 1);
        assert_eq!(get(10), 1);
    }

    #[test]
    fn log2_histogram_slope_reflects_alpha() {
        // For f(x) ∝ x^-2, the count in bucket k falls roughly by 2× per
        // bucket (density integral over dyadic ranges ∝ 2^-k).
        let d = PowerLawSizes::new(1, 1 << 16, 2.0);
        let mut rng = StdRng::seed_from_u64(5);
        let h = log2_histogram(&d.sample_many(&mut rng, 200_000));
        let get = |k: u32| h.iter().find(|&&(b, _)| b == k).map_or(0, |&(_, c)| c);
        for k in 0..6 {
            let ratio = get(k) as f64 / get(k + 1).max(1) as f64;
            assert!(
                ratio > 1.4 && ratio < 2.8,
                "bucket {k}->{}: ratio {ratio}",
                k + 1
            );
        }
    }

    #[test]
    #[should_panic(expected = "exponent must exceed 1")]
    fn alpha_at_most_one_rejected() {
        let _ = PowerLawSizes::new(1, 10, 1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let d = PowerLawSizes::new(5, 5_000, 1.8);
        let a = d.sample_many(&mut StdRng::seed_from_u64(9), 100);
        let b = d.sample_many(&mut StdRng::seed_from_u64(9), 100);
        assert_eq!(a, b);
    }
}
