//! Query workload construction.
//!
//! The paper's evaluation samples 3,000 domains from the corpus and uses
//! them as queries (§6.1, §6.3), with two side experiments restricting the
//! workload to the smallest and largest 10% of query sizes (Figures 6–7).

use lshe_corpus::{Catalog, DomainId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Which slice of the query-size distribution to draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeBand {
    /// Any size (the default workload).
    All,
    /// Only the smallest `percent`% of domains by size (Figure 7 uses 10).
    SmallestPercent(u8),
    /// Only the largest `percent`% of domains by size (Figure 6 uses 10).
    LargestPercent(u8),
}

/// Samples `n` query domain ids from the catalog without replacement
/// (or all matching ids if fewer than `n` qualify), restricted to `band`.
///
/// Deterministic under `seed`. Returned ids are in sampling order.
///
/// # Panics
/// Panics if the catalog is empty, `n == 0`, or a percent band is 0 or
/// above 100.
#[must_use]
pub fn sample_queries(catalog: &Catalog, n: usize, band: SizeBand, seed: u64) -> Vec<DomainId> {
    assert!(!catalog.is_empty(), "cannot sample from an empty catalog");
    assert!(n > 0, "query count must be positive");
    let mut ids: Vec<DomainId> = match band {
        SizeBand::All => catalog.iter().map(|(id, _)| id).collect(),
        SizeBand::SmallestPercent(p) | SizeBand::LargestPercent(p) => {
            assert!(p > 0 && p < 100, "percent band must be in (0, 100)");
            let mut by_size: Vec<(usize, DomainId)> =
                catalog.iter().map(|(id, d)| (d.len(), id)).collect();
            by_size.sort_unstable();
            let k = (by_size.len() * usize::from(p) / 100).max(1);
            let slice: Vec<DomainId> = match band {
                SizeBand::SmallestPercent(_) => by_size[..k].iter().map(|&(_, id)| id).collect(),
                _ => by_size[by_size.len() - k..]
                    .iter()
                    .map(|&(_, id)| id)
                    .collect(),
            };
            slice
        }
    };
    let mut rng = StdRng::seed_from_u64(seed);
    ids.shuffle(&mut rng);
    ids.truncate(n);
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus_gen::{generate_catalog, CorpusConfig};

    fn catalog() -> Catalog {
        generate_catalog(&CorpusConfig::tiny(500, 42))
    }

    #[test]
    fn samples_requested_count_without_duplicates() {
        let c = catalog();
        let q = sample_queries(&c, 100, SizeBand::All, 1);
        assert_eq!(q.len(), 100);
        let set: std::collections::HashSet<_> = q.iter().collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn deterministic_under_seed() {
        let c = catalog();
        assert_eq!(
            sample_queries(&c, 50, SizeBand::All, 9),
            sample_queries(&c, 50, SizeBand::All, 9)
        );
        assert_ne!(
            sample_queries(&c, 50, SizeBand::All, 9),
            sample_queries(&c, 50, SizeBand::All, 10)
        );
    }

    #[test]
    fn smallest_band_yields_small_domains() {
        let c = catalog();
        let small = sample_queries(&c, 30, SizeBand::SmallestPercent(10), 2);
        let all_sizes: Vec<usize> = c.sizes();
        let mut sorted = all_sizes.clone();
        sorted.sort_unstable();
        let decile_cap = sorted[sorted.len() / 10];
        for id in small {
            assert!(
                c.domain(id).len() <= decile_cap,
                "domain {id} too large for bottom decile"
            );
        }
    }

    #[test]
    fn largest_band_yields_large_domains() {
        let c = catalog();
        let large = sample_queries(&c, 30, SizeBand::LargestPercent(10), 3);
        let mut sorted = c.sizes();
        sorted.sort_unstable();
        let decile_floor = sorted[sorted.len() - sorted.len() / 10];
        for id in large {
            assert!(
                c.domain(id).len() >= decile_floor,
                "domain {id} too small for top decile"
            );
        }
    }

    #[test]
    fn oversampling_returns_all() {
        let c = generate_catalog(&CorpusConfig::tiny(20, 5));
        let q = sample_queries(&c, 1000, SizeBand::All, 4);
        assert_eq!(q.len(), 20);
    }

    #[test]
    #[should_panic(expected = "percent band")]
    fn zero_percent_rejected() {
        let c = catalog();
        let _ = sample_queries(&c, 5, SizeBand::SmallestPercent(0), 1);
    }
}
