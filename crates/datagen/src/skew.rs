//! Skewness of the domain-size distribution and the nested-subset
//! construction behind Figure 5.
//!
//! The paper measures skew with the standardized third moment
//! `skewness = m₃ / m₂^{3/2}` (Eq. 29, CRC formula) and studies accuracy on
//! "20 subsets of the Canadian Open Data: the first contained a small
//! (contiguous) interval of domain sizes, then expanded repeatedly" (§6.1).

/// Standardized-moment skewness `m₃ / m₂^{3/2}` (Eq. 29).
///
/// Returns 0 for samples with fewer than two points or zero variance.
#[must_use]
pub fn skewness(sizes: &[usize]) -> f64 {
    if sizes.len() < 2 {
        return 0.0;
    }
    let n = sizes.len() as f64;
    let mean = sizes.iter().map(|&s| s as f64).sum::<f64>() / n;
    let (mut m2, mut m3) = (0.0f64, 0.0f64);
    for &s in sizes {
        let d = s as f64 - mean;
        m2 += d * d;
        m3 += d * d * d;
    }
    m2 /= n;
    m3 /= n;
    if m2 <= 0.0 {
        0.0
    } else {
        m3 / m2.powf(1.5)
    }
}

/// Population standard deviation.
#[must_use]
pub fn std_dev(values: &[usize]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let n = values.len() as f64;
    let mean = values.iter().map(|&v| v as f64).sum::<f64>() / n;
    let var = values
        .iter()
        .map(|&v| {
            let d = v as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    var.sqrt()
}

/// Builds the Figure 5 subset ladder: `steps` nested families of domain ids,
/// where family `k` contains the domains whose sizes fall in a contiguous
/// interval that starts near the bottom of the size range and expands with
/// `k` until the final family covers every domain.
///
/// Returns for each step the ids (indices into `sizes`) included. Because
/// sizes follow a power law, later (wider) families have strictly larger
/// skewness — the x-axis of Figure 5.
///
/// # Panics
/// Panics if `steps == 0` or `sizes` is empty.
#[must_use]
pub fn nested_size_subsets(sizes: &[usize], steps: usize) -> Vec<Vec<u32>> {
    assert!(steps > 0, "need at least one step");
    assert!(!sizes.is_empty(), "sizes must not be empty");
    let min = *sizes.iter().min().expect("non-empty");
    let max = *sizes.iter().max().expect("non-empty");
    // Interval upper bounds grow geometrically from ~2·min to max so the
    // first subset is nearly flat and the last covers the power-law tail.
    let lo = (min.max(1) * 2) as f64;
    let hi = max as f64;
    let mut out = Vec::with_capacity(steps);
    for k in 0..steps {
        let frac = (k + 1) as f64 / steps as f64;
        let cap = if steps == 1 {
            hi
        } else {
            lo * (hi / lo).powf(frac)
        };
        let ids: Vec<u32> = sizes
            .iter()
            .enumerate()
            .filter(|&(_, &s)| (s as f64) <= cap)
            .map(|(i, _)| i as u32)
            .collect();
        out.push(ids);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_sample_has_zero_skew() {
        let s = skewness(&[1, 2, 3, 4, 5]);
        assert!(s.abs() < 1e-12, "skew {s}");
    }

    #[test]
    fn right_tail_gives_positive_skew() {
        let s = skewness(&[1, 1, 1, 1, 1, 1, 1, 100]);
        assert!(s > 1.0, "skew {s}");
    }

    #[test]
    fn left_tail_gives_negative_skew() {
        let s = skewness(&[100, 100, 100, 100, 100, 1]);
        assert!(s < -1.0, "skew {s}");
    }

    #[test]
    fn degenerate_samples_are_zero() {
        assert_eq!(skewness(&[]), 0.0);
        assert_eq!(skewness(&[5]), 0.0);
        assert_eq!(skewness(&[5, 5, 5]), 0.0);
    }

    #[test]
    fn std_dev_known_value() {
        // Population std-dev of {2, 4, 4, 4, 5, 5, 7, 9} is 2.
        let sd = std_dev(&[2, 4, 4, 4, 5, 5, 7, 9]);
        assert!((sd - 2.0).abs() < 1e-12);
        assert_eq!(std_dev(&[]), 0.0);
    }

    #[test]
    fn nested_subsets_are_nested_and_complete() {
        let sizes: Vec<usize> = (0..1000).map(|i| 10 + (i % 500) * 4).collect();
        let fams = nested_size_subsets(&sizes, 10);
        assert_eq!(fams.len(), 10);
        for w in fams.windows(2) {
            let prev: std::collections::HashSet<_> = w[0].iter().collect();
            assert!(w[0].len() <= w[1].len());
            for id in &w[0] {
                assert!(prev.contains(id));
            }
            let next: std::collections::HashSet<_> = w[1].iter().collect();
            for id in &w[0] {
                assert!(next.contains(id), "nesting violated");
            }
        }
        assert_eq!(fams.last().expect("steps > 0").len(), sizes.len());
    }

    #[test]
    fn nested_subsets_skew_increases_on_power_law() {
        use crate::powerlaw::PowerLawSizes;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let d = PowerLawSizes::new(10, 1 << 14, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        let sizes: Vec<usize> = d
            .sample_many(&mut rng, 30_000)
            .into_iter()
            .map(|s| s as usize)
            .collect();
        let fams = nested_size_subsets(&sizes, 8);
        let skews: Vec<f64> = fams
            .iter()
            .map(|ids| {
                let sub: Vec<usize> = ids.iter().map(|&i| sizes[i as usize]).collect();
                skewness(&sub)
            })
            .collect();
        assert!(
            skews.last().expect("non-empty") > skews.first().expect("non-empty"),
            "skew must grow along the ladder: {skews:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_rejected() {
        let _ = nested_size_subsets(&[1, 2], 0);
    }
}
