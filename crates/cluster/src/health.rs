//! Per-shard health: a consecutive-failure state machine.
//!
//! Every shard call — scatter fan-outs and background probes alike —
//! reports its outcome here. [`DEGRADE_AFTER`] consecutive failures mark
//! the shard *degraded*: the coordinator stops scattering queries to it
//! (so one dead shard costs nothing per request instead of a connect
//! timeout each) and reports it in `/health`. Probes keep hitting
//! degraded shards, and a single success re-admits the shard — the
//! counter is consecutive, not cumulative, so recovery is immediate.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Consecutive failures after which a shard is considered degraded.
/// Two, not one: a single hedge-salvaged straggle or connection reset
/// should not eject a shard from the query path.
pub const DEGRADE_AFTER: u32 = 2;

/// Failure-tracking state for one shard.
#[derive(Debug, Default)]
pub struct HealthState {
    /// Failures since the last success.
    consecutive: AtomicU32,
    /// Lifetime failures (observability; never resets).
    total_failures: AtomicU64,
}

impl HealthState {
    /// Fresh, healthy state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A call to the shard succeeded: the shard is (back to) healthy.
    pub fn record_ok(&self) {
        self.consecutive.store(0, Ordering::Release);
    }

    /// A call to the shard failed at the transport level.
    pub fn record_failure(&self) {
        self.consecutive.fetch_add(1, Ordering::AcqRel);
        self.total_failures.fetch_add(1, Ordering::AcqRel);
    }

    /// Whether the shard has crossed [`DEGRADE_AFTER`] consecutive
    /// failures and should be skipped by the query scatter.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.consecutive.load(Ordering::Acquire) >= DEGRADE_AFTER
    }

    /// Failures since the last success.
    #[must_use]
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive.load(Ordering::Acquire)
    }

    /// Lifetime failure count.
    #[must_use]
    pub fn total_failures(&self) -> u64 {
        self.total_failures.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrades_only_after_consecutive_failures() {
        let h = HealthState::new();
        assert!(!h.is_degraded());
        h.record_failure();
        assert!(!h.is_degraded(), "one blip does not degrade");
        h.record_failure();
        assert!(h.is_degraded());
        assert_eq!(h.consecutive_failures(), 2);
        assert_eq!(h.total_failures(), 2);
    }

    #[test]
    fn success_resets_the_streak_but_not_the_lifetime_count() {
        let h = HealthState::new();
        for _ in 0..5 {
            h.record_failure();
        }
        assert!(h.is_degraded());
        h.record_ok();
        assert!(!h.is_degraded(), "one success re-admits the shard");
        assert_eq!(h.consecutive_failures(), 0);
        assert_eq!(h.total_failures(), 5);
    }

    #[test]
    fn interleaved_blips_never_degrade() {
        let h = HealthState::new();
        for _ in 0..10 {
            h.record_failure();
            h.record_ok();
        }
        assert!(!h.is_degraded());
        assert_eq!(h.total_failures(), 10);
    }
}
