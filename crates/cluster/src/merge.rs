//! Union/rank merge of per-shard query answers.
//!
//! Each shard returns its hits already ranked the way `RankedIndex`
//! ranks them: containment estimate descending, id ascending among
//! ties. The single-process `ShardedRanked` produces the *global*
//! version of that order by unioning per-shard candidate ids and
//! ranking once — and because every shard applies the same estimator to
//! the same signatures, the global order is exactly the merge of the
//! per-shard orders. So the coordinator never recomputes an estimate:
//! it concatenates the shard hit objects verbatim (estimates included,
//! bit-for-bit — the JSON layer renders `f64` at shortest-round-trip
//! precision) and re-sorts by the same key.
//!
//! The id union runs through [`lshe_core::batch::merge_sorted_disjoint`]
//! — the exact primitive the in-process sharded path unions candidates
//! with — after an explicit disjointness check: a duplicate id across
//! shards means two processes claim the same domain (a mis-placed
//! split, or one shard file served twice) and the cluster's answers
//! would silently diverge from the single-process truth, so the merge
//! refuses rather than guessing.

use lshe_core::batch::merge_sorted_disjoint;
use lshe_serve::json::Json;
use std::collections::HashSet;

/// Merges per-shard ranked hit lists into the global ranked order.
///
/// Input: one `Vec<Json>` of hit objects (`{"id", "table", "column",
/// "size", "estimate", ...}`) per shard, each in that shard's ranked
/// order. Output: all hits in global order — estimate descending, id
/// ascending among equal estimates, hits without a numeric estimate
/// last.
///
/// # Errors
/// A human-readable message when a hit lacks a valid `id`, or when two
/// shards answer with the same id (overlapping shard contents — a
/// misconfigured cluster).
pub fn merge_hits(per_shard: Vec<Vec<Json>>) -> Result<Vec<Json>, String> {
    let mut runs: Vec<Vec<u32>> = Vec::with_capacity(per_shard.len());
    let mut seen: HashSet<u32> = HashSet::new();
    let mut total = 0usize;
    for (shard, hits) in per_shard.iter().enumerate() {
        let mut ids = Vec::with_capacity(hits.len());
        for hit in hits {
            let id = hit
                .get("id")
                .and_then(Json::as_u64)
                .and_then(|id| u32::try_from(id).ok())
                .ok_or_else(|| format!("shard {shard} returned a hit without a valid id"))?;
            if !seen.insert(id) {
                return Err(format!(
                    "shards returned overlapping answers (id {id} twice) — \
                     cluster shards must hold disjoint domains; was the same \
                     shard file served more than once?"
                ));
            }
            ids.push(id);
        }
        total += ids.len();
        ids.sort_unstable();
        runs.push(ids);
    }
    // The same union primitive the in-process sharded path uses; the
    // disjointness pre-check above guarantees its contract holds.
    let union = merge_sorted_disjoint(runs);
    debug_assert_eq!(union.len(), total, "disjoint union keeps every id");

    let mut keyed: Vec<(f64, u32, Json)> = per_shard
        .into_iter()
        .flatten()
        .map(|hit| {
            let estimate = hit
                .get("estimate")
                .and_then(Json::as_f64)
                .unwrap_or(f64::NEG_INFINITY);
            let id = hit
                .get("id")
                .and_then(Json::as_u64)
                .and_then(|id| u32::try_from(id).ok())
                .expect("validated above");
            (estimate, id, hit)
        })
        .collect();
    keyed.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    Ok(keyed.into_iter().map(|(_, _, hit)| hit).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(id: u32, estimate: Option<f64>) -> Json {
        let mut fields = vec![
            ("id", Json::uint(u64::from(id))),
            ("table", Json::str(format!("t{id}"))),
            ("column", Json::str("c")),
            ("size", Json::uint(10)),
        ];
        fields.push(("estimate", estimate.map_or(Json::Null, Json::num)));
        Json::obj(fields)
    }

    fn ids(hits: &[Json]) -> Vec<u64> {
        hits.iter()
            .map(|h| h.get("id").and_then(Json::as_u64).unwrap())
            .collect()
    }

    #[test]
    fn merges_into_global_ranked_order() {
        // Shard orders are each (estimate desc, id asc); the merge must
        // interleave them into one global such order.
        let s0 = vec![hit(0, Some(0.9)), hit(4, Some(0.5)), hit(2, Some(0.5))];
        // (4 before 2 would be wrong within a shard, but the merge
        // re-sorts totally, so even that is repaired — keep shard input
        // honest except for this pair to prove the total sort.)
        let s1 = vec![hit(1, Some(0.7)), hit(3, Some(0.5))];
        let merged = merge_hits(vec![s0, s1]).expect("disjoint");
        assert_eq!(ids(&merged), vec![0, 1, 2, 3, 4]);
        // ties at 0.5 break id-ascending: 2, 3, 4.
    }

    #[test]
    fn hits_survive_verbatim() {
        let original = hit(7, Some(0.625));
        let merged = merge_hits(vec![vec![original.clone()], Vec::new()]).expect("disjoint");
        assert_eq!(merged, vec![original], "merge must not rewrite hit objects");
    }

    #[test]
    fn missing_estimate_ranks_last() {
        let merged =
            merge_hits(vec![vec![hit(5, None)], vec![hit(6, Some(0.1))]]).expect("disjoint");
        assert_eq!(ids(&merged), vec![6, 5]);
    }

    #[test]
    fn overlapping_shards_are_refused() {
        let err = merge_hits(vec![vec![hit(3, Some(0.8))], vec![hit(3, Some(0.8))]])
            .expect_err("same id from two shards");
        assert!(err.contains("id 3"), "error names the id: {err}");
        assert!(
            err.contains("disjoint"),
            "error explains the invariant: {err}"
        );
    }

    #[test]
    fn hit_without_id_is_refused() {
        let bogus = Json::obj(vec![("estimate", Json::num(0.5))]);
        let err = merge_hits(vec![vec![bogus]]).expect_err("no id");
        assert!(err.contains("shard 0"), "error names the shard: {err}");
    }

    #[test]
    fn empty_inputs_merge_to_empty() {
        assert_eq!(merge_hits(Vec::new()).unwrap(), Vec::<Json>::new());
        assert_eq!(
            merge_hits(vec![Vec::new(), Vec::new()]).unwrap(),
            Vec::<Json>::new()
        );
    }
}
