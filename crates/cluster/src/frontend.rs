//! The coordinator HTTP frontend.
//!
//! Serves the same endpoint surface as a single `lshe-serve` process —
//! `/query`, `/topk`, `/batch`, `/insert`, `/remove`, `/commit`,
//! `/reload`, `/stats`, `/health`, `/shutdown` — by scattering each
//! request across the shard processes and merging their answers. A
//! client moving from one process to a cluster changes a URL, nothing
//! else.
//!
//! Request semantics:
//!
//! - **Reads** (`/query`, `/topk`, `/batch`) forward the request body
//!   verbatim to every non-degraded shard (hedged — see
//!   [`crate::scatter::hedged_call`]) and merge the ranked hit lists via
//!   [`crate::merge::merge_hits`]. A shard 4xx is a deterministic
//!   request rejection (every shard parses identically), so the first
//!   one is forwarded as-is. Transport failures degrade the response —
//!   `200` with `"degraded": true` and the failed shard ids — rather
//!   than failing it, as long as at least one shard answered.
//! - **Mutations** (`/insert`, `/remove`) are routed to the single
//!   owning shard by [`crate::placement::shard_of`] and never hedged (a
//!   losing hedge may still have applied). `/commit`, `/compact`, and
//!   `/reload` broadcast to every shard, unhedged, and aggregate.
//!   `/commit` and `/compact` retry each failed shard exactly once —
//!   safe because a shard commit is idempotent (re-committing an empty
//!   stage is a no-op), and necessary because a lost response does not
//!   mean a lost commit. Each shard's last acknowledged commit
//!   generation is tracked and surfaced on `/stats`, so a diverged
//!   cluster names the shard that is behind.
//! - `/health` live-probes every shard — including degraded ones, which
//!   is how a recovered shard is re-admitted between background probe
//!   rounds. `/shutdown` drains the coordinator only; shards keep
//!   running.

use crate::health::HealthState;
use crate::merge::merge_hits;
use crate::placement::shard_of;
use crate::pool::ConnPool;
use crate::scatter::{call, hedged_call, scatter, CallOutcome};
use lshe_serve::client::ClientError;
use lshe_serve::http::{write_head, write_head_with, write_response, Request, RequestParser};
use lshe_serve::json::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a keep-alive connection may sit idle before the coordinator
/// closes it.
const IDLE_LIMIT: Duration = Duration::from_secs(60);
/// Whole-request read bound once a request's first byte has arrived
/// (slow-loris bound, mirroring `lshe-serve`).
const REQUEST_TIMEOUT: Duration = Duration::from_secs(10);
/// Socket-level read timeout for connection threads: the granularity at
/// which idle connections notice a shutdown.
const POLL_TICK: Duration = Duration::from_millis(250);
/// `Retry-After` seconds advertised on drain-time 503s.
const RETRY_AFTER_SECS: u64 = 1;

/// Coordinator construction parameters. Construct with struct-update
/// syntax so new knobs keep their defaults.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Coordinator bind address (`:0` for an ephemeral port).
    pub addr: String,
    /// Shard addresses **in shard-id order**: position `s` must serve
    /// the shard file that `lshe split` wrote for shard `s`.
    pub shards: Vec<SocketAddr>,
    /// TCP connect deadline for shard connections.
    pub connect_timeout: Duration,
    /// Full read deadline for shard responses.
    pub read_timeout: Duration,
    /// Straggler threshold: a read that has not answered within this
    /// window gets a hedged second request on a fresh connection.
    pub hedge_after: Duration,
    /// Background health-probe period.
    pub probe_interval: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7979".to_owned(),
            shards: Vec::new(),
            connect_timeout: Duration::from_secs(1),
            read_timeout: Duration::from_secs(30),
            hedge_after: Duration::from_millis(150),
            probe_interval: Duration::from_secs(2),
        }
    }
}

/// One rendered coordinator response, ready for the connection loop.
struct Response {
    status: u16,
    reason: &'static str,
    body: String,
    retry_after: Option<u64>,
    close: bool,
}

impl Response {
    fn ok(body: Json) -> Self {
        Self {
            status: 200,
            reason: "OK",
            body: body.render(),
            retry_after: None,
            close: false,
        }
    }

    fn error(status: u16, msg: impl Into<String>) -> Self {
        Self {
            status,
            reason: reason_for(status),
            body: Json::obj(vec![("error", Json::str(msg.into()))]).render(),
            retry_after: None,
            close: false,
        }
    }

    /// A shard response forwarded verbatim.
    fn forwarded(outcome: CallOutcome) -> Self {
        Self {
            status: outcome.status,
            reason: reason_for(outcome.status),
            body: outcome.body,
            retry_after: None,
            close: false,
        }
    }
}

fn reason_for(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

/// Shared coordinator state: one pool and one health record per shard.
struct Coordinator {
    config: ClusterConfig,
    /// The coordinator's own bound address (the shutdown wake target).
    self_addr: SocketAddr,
    pools: Vec<ConnPool>,
    health: Vec<HealthState>,
    /// Cluster-wide id allocator for `/insert` without an explicit id;
    /// seeded at startup from the max shard `next_id`.
    next_id: AtomicU32,
    /// Per-shard generation from the last `/commit` (or `/compact`) the
    /// shard acknowledged through this coordinator; 0 = none yet.
    /// Surfaced on `/stats` so a partially-failed broadcast names the
    /// shard whose state lags the cluster.
    last_commit_generation: Vec<AtomicU64>,
    hedges_fired: AtomicU64,
    shutting_down: AtomicBool,
}

impl Coordinator {
    fn n(&self) -> usize {
        self.pools.len()
    }

    /// Records one shard call's outcome against the shard's health: any
    /// transport failure or 5xx counts against it, everything else
    /// (including 4xx — the shard is alive and parsing) resets it.
    fn record(&self, s: usize, res: &Result<CallOutcome, ClientError>) {
        match res {
            Ok(out) if out.status < 500 => self.health[s].record_ok(),
            _ => self.health[s].record_failure(),
        }
    }

    /// One hedged read call with health + hedge accounting.
    fn read_call(
        &self,
        s: usize,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<CallOutcome, ClientError> {
        let res = hedged_call(&self.pools[s], method, path, body, self.config.hedge_after);
        if matches!(&res, Ok(out) if out.hedged) {
            self.hedges_fired.fetch_add(1, Ordering::AcqRel);
        }
        self.record(s, &res);
        res
    }

    /// One unhedged call with health accounting (mutations, probes).
    fn plain_call(
        &self,
        s: usize,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<CallOutcome, ClientError> {
        let res = call(&self.pools[s], method, path, body);
        self.record(s, &res);
        res
    }

    /// Shards currently in the query path (not degraded).
    fn active_shards(&self) -> Vec<usize> {
        (0..self.n())
            .filter(|&s| !self.health[s].is_degraded())
            .collect()
    }

    /// Startup validation: every reachable shard must agree on the
    /// signature width and sit at the list position matching its
    /// reported shard id; the id allocator seeds from the max shard
    /// `next_id`. Unreachable shards are tolerated (the cluster starts
    /// degraded) unless ALL are unreachable.
    fn validate_topology(&self) -> Result<(), String> {
        let outcomes = scatter(self.n(), |s| self.plain_call(s, "GET", "/stats", None));
        let mut reachable = 0usize;
        let mut num_perm: Option<(u64, usize)> = None;
        let mut max_next = 0u32;
        for (s, res) in outcomes.iter().enumerate() {
            let Ok(out) = res else { continue };
            if out.status != 200 {
                continue;
            }
            let stats =
                Json::parse(&out.body).map_err(|e| format!("shard {s} /stats is not JSON: {e}"))?;
            reachable += 1;
            if let Some(np) = stats.get("num_perm").and_then(Json::as_u64) {
                match num_perm {
                    None => num_perm = Some((np, s)),
                    Some((prev, first)) if prev != np => {
                        return Err(format!(
                            "signature widths differ: shard {first} has num_perm {prev}, \
                             shard {s} has {np} — every shard must be split from one index"
                        ));
                    }
                    Some(_) => {}
                }
            }
            match stats.get("shard_id") {
                Some(Json::Null) | None => {}
                Some(sid) => {
                    let sid = sid.as_u64();
                    if sid != Some(s as u64) {
                        return Err(format!(
                            "shard at {} reports shard id {sid:?} but is listed at \
                             position {s} — the shard list must follow split order",
                            self.pools[s].addr()
                        ));
                    }
                }
            }
            if let Some(next) = stats.get("next_id").and_then(Json::as_u64) {
                max_next = max_next.max(u32::try_from(next).unwrap_or(u32::MAX));
            }
        }
        if reachable == 0 {
            return Err(format!(
                "none of the {} shards is reachable — refusing to start an empty cluster",
                self.n()
            ));
        }
        self.next_id.store(max_next, Ordering::Release);
        Ok(())
    }

    fn handle(&self, request: &Request) -> Response {
        match (request.method.as_str(), request.path()) {
            ("GET", "/health") => self.cluster_health(),
            ("GET", "/stats") => self.cluster_stats(),
            ("POST", "/query") => self.fanout_query(request, "/query"),
            ("POST", "/topk") => self.fanout_query(request, "/topk"),
            ("POST", "/batch") => self.fanout_batch(request),
            ("POST", "/insert") => self.route_insert(request),
            ("POST", "/remove") => self.route_remove(request),
            ("POST", "/commit") => self.broadcast(request, "/commit"),
            ("POST", "/compact") => self.broadcast(request, "/compact"),
            ("POST", "/reload") => self.broadcast(request, "/reload"),
            ("POST", "/shutdown") => self.begin_shutdown(),
            (
                _,
                "/health" | "/stats" | "/query" | "/topk" | "/batch" | "/insert" | "/remove"
                | "/commit" | "/compact" | "/reload" | "/shutdown",
            ) => Response::error(405, "wrong method for this path"),
            (_, path) => Response::error(404, format!("no such endpoint: {path}")),
        }
    }

    /// `/query` and `/topk`: scatter the body verbatim, merge ranked
    /// hits, truncate to `k` when the request asked for top-k.
    fn fanout_query(&self, request: &Request, path: &str) -> Response {
        let started = Instant::now();
        let Ok(body) = std::str::from_utf8(&request.body) else {
            return Response::error(400, "request body must be UTF-8");
        };
        // The shards validate the body; the coordinator only needs `k`
        // for the post-merge truncation.
        let k = Json::parse(body)
            .ok()
            .and_then(|j| j.get("k").and_then(Json::as_u64))
            .map(|k| k as usize);
        let active = self.active_shards();
        if active.is_empty() {
            return Response::error(503, "every shard is degraded");
        }
        let skipped: Vec<usize> = (0..self.n()).filter(|s| !active.contains(s)).collect();
        let outcomes = scatter(active.len(), |i| {
            self.read_call(active[i], "POST", path, Some(body))
        });

        let mut failed = skipped;
        let mut per_shard_hits: Vec<Vec<Json>> = Vec::new();
        let mut generation = 0u64;
        for (i, res) in outcomes.into_iter().enumerate() {
            let s = active[i];
            match res {
                Ok(out) if out.status == 200 => {
                    let Ok(parsed) = Json::parse(&out.body) else {
                        return Response::error(502, format!("shard {s} returned invalid JSON"));
                    };
                    generation = generation
                        .max(parsed.get("generation").and_then(Json::as_u64).unwrap_or(0));
                    let hits = parsed
                        .get("hits")
                        .and_then(Json::as_array)
                        .map(<[Json]>::to_vec)
                        .unwrap_or_default();
                    per_shard_hits.push(hits);
                }
                // Deterministic rejection — every shard parses the body
                // identically, so the first 4xx speaks for the cluster.
                Ok(out) if (400..500).contains(&out.status) => return Response::forwarded(out),
                Ok(_) | Err(_) => failed.push(s),
            }
        }
        if per_shard_hits.is_empty() {
            return Response::error(503, "no shard answered");
        }
        let mut hits = match merge_hits(per_shard_hits) {
            Ok(hits) => hits,
            Err(msg) => return Response::error(500, msg),
        };
        if let Some(k) = k.filter(|&k| k > 0) {
            hits.truncate(k);
        }
        failed.sort_unstable();
        let mut fields = vec![
            ("count", Json::uint(hits.len() as u64)),
            ("cached", Json::Bool(false)),
            ("generation", Json::uint(generation)),
            (
                "query_time_us",
                Json::uint(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)),
            ),
            ("hits", Json::Arr(hits)),
        ];
        push_degraded(&mut fields, &failed);
        Response::ok(Json::obj(fields))
    }

    /// `/batch`: one pipelined wire call per shard for the WHOLE batch,
    /// then an element-wise merge of the per-item results.
    fn fanout_batch(&self, request: &Request) -> Response {
        let started = Instant::now();
        let Ok(body) = std::str::from_utf8(&request.body) else {
            return Response::error(400, "request body must be UTF-8");
        };
        // Per-item `k` for post-merge truncation; invalid bodies are
        // rejected by the shards (forwarded below), so a failed local
        // parse just means no truncation data is needed.
        let per_item_k: Vec<Option<u64>> = Json::parse(body)
            .ok()
            .and_then(|j| {
                j.get("queries").and_then(Json::as_array).map(|qs| {
                    qs.iter()
                        .map(|q| q.get("k").and_then(Json::as_u64))
                        .collect()
                })
            })
            .unwrap_or_default();
        let active = self.active_shards();
        if active.is_empty() {
            return Response::error(503, "every shard is degraded");
        }
        let skipped: Vec<usize> = (0..self.n()).filter(|s| !active.contains(s)).collect();
        let outcomes = scatter(active.len(), |i| {
            self.read_call(active[i], "POST", "/batch", Some(body))
        });

        let mut failed = skipped;
        let mut shard_results: Vec<Vec<Json>> = Vec::new();
        let mut generation = 0u64;
        for (i, res) in outcomes.into_iter().enumerate() {
            let s = active[i];
            match res {
                Ok(out) if out.status == 200 => {
                    let Ok(parsed) = Json::parse(&out.body) else {
                        return Response::error(502, format!("shard {s} returned invalid JSON"));
                    };
                    generation = generation
                        .max(parsed.get("generation").and_then(Json::as_u64).unwrap_or(0));
                    let Some(results) = parsed.get("results").and_then(Json::as_array) else {
                        return Response::error(502, format!("shard {s} /batch lost its results"));
                    };
                    shard_results.push(results.to_vec());
                }
                Ok(out) if (400..500).contains(&out.status) => return Response::forwarded(out),
                Ok(_) | Err(_) => failed.push(s),
            }
        }
        if shard_results.is_empty() {
            return Response::error(503, "no shard answered");
        }
        let items = shard_results[0].len();
        if shard_results.iter().any(|r| r.len() != items) {
            return Response::error(502, "shards disagree on batch length");
        }

        let mut results = Vec::with_capacity(items);
        for j in 0..items {
            // Per-item validation errors are deterministic and pinned to
            // their position on every shard; forward the first.
            if let Some(err) = shard_results
                .iter()
                .map(|r| &r[j])
                .find(|r| r.get("error").is_some())
            {
                results.push(err.clone());
                continue;
            }
            let per_shard: Vec<Vec<Json>> = shard_results
                .iter()
                .map(|r| {
                    r[j].get("hits")
                        .and_then(Json::as_array)
                        .map(<[Json]>::to_vec)
                        .unwrap_or_default()
                })
                .collect();
            let mut hits = match merge_hits(per_shard) {
                Ok(hits) => hits,
                Err(msg) => return Response::error(500, msg),
            };
            if let Some(k) = per_item_k.get(j).copied().flatten().filter(|&k| k > 0) {
                hits.truncate(k as usize);
            }
            results.push(Json::obj(vec![
                ("count", Json::uint(hits.len() as u64)),
                ("cached", Json::Bool(false)),
                ("hits", Json::Arr(hits)),
            ]));
        }
        failed.sort_unstable();
        let mut fields = vec![
            ("count", Json::uint(items as u64)),
            ("generation", Json::uint(generation)),
            (
                "batch_time_us",
                Json::uint(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)),
            ),
            ("results", Json::Arr(results)),
        ];
        push_degraded(&mut fields, &failed);
        Response::ok(Json::obj(fields))
    }

    /// `/insert`: allocate (or honour) the id, route to the owning
    /// shard, forward its staging response verbatim. Never hedged.
    fn route_insert(&self, request: &Request) -> Response {
        let Ok(body) = std::str::from_utf8(&request.body) else {
            return Response::error(400, "request body must be UTF-8");
        };
        let Ok(parsed) = Json::parse(body) else {
            return Response::error(400, "request body must be JSON");
        };
        let id = match parsed.get("id") {
            None => self.next_id.fetch_add(1, Ordering::AcqRel),
            Some(id) => {
                let Some(id) = id.as_u64().and_then(|id| u32::try_from(id).ok()) else {
                    return Response::error(400, "\"id\" must be an unsigned 32-bit integer");
                };
                id
            }
        };
        let Json::Obj(mut fields) = parsed else {
            return Response::error(400, "request body must be a JSON object");
        };
        fields.retain(|(key, _)| key != "id");
        fields.push(("id".to_owned(), Json::uint(u64::from(id))));
        let routed = Json::Obj(fields).render();

        let s = shard_of(id, self.n());
        if self.health[s].is_degraded() {
            return Response::error(
                503,
                format!("shard {s} owning id {id} is degraded; retry when it recovers"),
            );
        }
        match self.plain_call(s, "POST", "/insert", Some(&routed)) {
            Ok(out) => {
                if out.status == 200 {
                    self.next_id.fetch_max(id + 1, Ordering::AcqRel);
                }
                Response::forwarded(out)
            }
            Err(e) => Response::error(502, format!("shard {s} failed: {e}")),
        }
    }

    /// `/remove`: route by the (required) id, forward. Never hedged.
    fn route_remove(&self, request: &Request) -> Response {
        let Ok(body) = std::str::from_utf8(&request.body) else {
            return Response::error(400, "request body must be UTF-8");
        };
        let id = Json::parse(body)
            .ok()
            .and_then(|j| j.get("id").and_then(Json::as_u64))
            .and_then(|id| u32::try_from(id).ok());
        let Some(id) = id else {
            return Response::error(400, "missing \"id\": expected an unsigned 32-bit integer");
        };
        let s = shard_of(id, self.n());
        if self.health[s].is_degraded() {
            return Response::error(
                503,
                format!("shard {s} owning id {id} is degraded; retry when it recovers"),
            );
        }
        match self.plain_call(s, "POST", "/remove", Some(body)) {
            Ok(out) => Response::forwarded(out),
            Err(e) => Response::error(502, format!("shard {s} failed: {e}")),
        }
    }

    /// `/commit`, `/compact`, and `/reload`: broadcast to EVERY shard
    /// (degraded ones included — skipping a shard would fork cluster
    /// state), aggregate on full success, 502 naming the failed shards
    /// otherwise. Commit-class paths retry each failed shard exactly
    /// once: a transport failure or 5xx does not say whether the shard
    /// applied the op before the response was lost, and because a shard
    /// commit is idempotent (re-committing an empty stage is "nothing
    /// staged"), one retry converges either way instead of reporting a
    /// divergence that may not exist.
    fn broadcast(&self, request: &Request, path: &str) -> Response {
        let Ok(body) = std::str::from_utf8(&request.body) else {
            return Response::error(400, "request body must be UTF-8");
        };
        let commit_class = path == "/commit" || path == "/compact";
        let outcomes = scatter(self.n(), |s| {
            let first = self.plain_call(s, "POST", path, Some(body));
            let settled = matches!(&first, Ok(out) if out.status < 500);
            if settled || !commit_class {
                first
            } else {
                self.plain_call(s, "POST", path, Some(body))
            }
        });
        let mut failed: Vec<usize> = Vec::new();
        let mut parsed: Vec<Json> = Vec::new();
        for (s, res) in outcomes.into_iter().enumerate() {
            match res {
                Ok(out) if out.status == 200 => match Json::parse(&out.body) {
                    Ok(json) => {
                        if commit_class {
                            if let Some(generation) = json.get("generation").and_then(Json::as_u64)
                            {
                                self.last_commit_generation[s]
                                    .fetch_max(generation, Ordering::AcqRel);
                            }
                        }
                        parsed.push(json);
                    }
                    Err(_) => failed.push(s),
                },
                Ok(out) if (400..500).contains(&out.status) => return Response::forwarded(out),
                Ok(_) | Err(_) => failed.push(s),
            }
        }
        if !failed.is_empty() {
            return Response::error(
                502,
                format!(
                    "{path} failed on shard(s) {failed:?} — cluster state may be \
                     divergent; retry once every shard is reachable"
                ),
            );
        }
        let sum = |key: &str| -> u64 {
            parsed
                .iter()
                .filter_map(|j| j.get(key).and_then(Json::as_u64))
                .sum()
        };
        let max = |key: &str| -> u64 {
            parsed
                .iter()
                .filter_map(|j| j.get(key).and_then(Json::as_u64))
                .max()
                .unwrap_or(0)
        };
        if path == "/reload" {
            return Response::ok(Json::obj(vec![
                ("status", Json::str("reloaded")),
                ("generation", Json::uint(max("generation"))),
                ("domains", Json::uint(sum("domains"))),
                ("shards", Json::uint(self.n() as u64)),
            ]));
        }
        let rebalanced = parsed
            .iter()
            .any(|j| j.get("rebalanced").and_then(Json::as_bool) == Some(true));
        if path == "/compact" {
            return Response::ok(Json::obj(vec![
                ("status", Json::str("compacted")),
                ("applied", Json::uint(sum("applied"))),
                ("merged", Json::uint(sum("merged"))),
                ("rebalanced", Json::Bool(rebalanced)),
                ("segments", Json::uint(sum("segments"))),
                ("tombstones", Json::uint(sum("tombstones"))),
                ("generation", Json::uint(max("generation"))),
                ("domains", Json::uint(sum("domains"))),
            ]));
        }
        let applied = sum("applied");
        let sealed = parsed
            .iter()
            .any(|j| j.get("sealed").and_then(Json::as_bool) == Some(true));
        Response::ok(Json::obj(vec![
            (
                "status",
                Json::str(if applied > 0 {
                    "committed"
                } else {
                    "nothing staged"
                }),
            ),
            ("applied", Json::uint(applied)),
            ("merged", Json::uint(sum("merged"))),
            ("rebalanced", Json::Bool(rebalanced)),
            ("sealed", Json::Bool(sealed)),
            ("segments", Json::uint(sum("segments"))),
            ("tombstones", Json::uint(sum("tombstones"))),
            ("generation", Json::uint(max("generation"))),
            ("domains", Json::uint(sum("domains"))),
        ]))
    }

    /// `/health`: live-probe every shard. Probing degraded shards too is
    /// the fast re-admission path — one success resets the streak.
    fn cluster_health(&self) -> Response {
        let outcomes = scatter(self.n(), |s| self.plain_call(s, "GET", "/health", None));
        let mut reports = Vec::with_capacity(self.n());
        let mut degraded_now: Vec<usize> = Vec::new();
        let mut domains = 0u64;
        let mut generation = 0u64;
        for (s, res) in outcomes.into_iter().enumerate() {
            let probe_ok = matches!(&res, Ok(out) if out.status == 200);
            if let Ok(out) = &res {
                if let Ok(json) = Json::parse(&out.body) {
                    domains += json.get("domains").and_then(Json::as_u64).unwrap_or(0);
                    generation =
                        generation.max(json.get("generation").and_then(Json::as_u64).unwrap_or(0));
                }
            }
            let status = if probe_ok {
                "ok"
            } else if matches!(res, Err(ClientError::Connect(_))) {
                "unreachable"
            } else {
                "failing"
            };
            if !probe_ok || self.health[s].is_degraded() {
                degraded_now.push(s);
            }
            reports.push(Json::obj(vec![
                ("shard", Json::uint(s as u64)),
                ("addr", Json::str(self.pools[s].addr().to_string())),
                ("status", Json::str(status)),
                (
                    "consecutive_failures",
                    Json::uint(u64::from(self.health[s].consecutive_failures())),
                ),
                (
                    "total_failures",
                    Json::uint(self.health[s].total_failures()),
                ),
            ]));
        }
        Response::ok(Json::obj(vec![
            (
                "status",
                Json::str(if degraded_now.is_empty() {
                    "ok"
                } else {
                    "degraded"
                }),
            ),
            ("shards", Json::uint(self.n() as u64)),
            ("domains", Json::uint(domains)),
            ("generation", Json::uint(generation)),
            (
                "degraded_shards",
                Json::Arr(degraded_now.iter().map(|&s| Json::uint(s as u64)).collect()),
            ),
            ("shard_health", Json::Arr(reports)),
        ]))
    }

    /// `/stats`: aggregate counts plus each shard's own stats verbatim.
    fn cluster_stats(&self) -> Response {
        let outcomes = scatter(self.n(), |s| self.plain_call(s, "GET", "/stats", None));
        let mut per_shard = Vec::with_capacity(self.n());
        let mut domains = 0u64;
        let mut generation = 0u64;
        let mut num_perm = Json::Null;
        let mut degraded: Vec<usize> = Vec::new();
        // Cluster-wide maintenance rollup across the shards' own
        // `maintenance` objects (each shard runs its own thread).
        let mut maint_queued = 0u64;
        let mut maint_running = 0u64;
        let mut maint_merges = 0u64;
        let mut maint_full = 0u64;
        let mut maint_folded = 0u64;
        let mut maint_last_us = 0u64;
        for (s, res) in outcomes.into_iter().enumerate() {
            let stats = match &res {
                Ok(out) if out.status == 200 => Json::parse(&out.body).ok(),
                _ => None,
            };
            if let Some(stats) = &stats {
                domains += stats.get("domains").and_then(Json::as_u64).unwrap_or(0);
                generation =
                    generation.max(stats.get("generation").and_then(Json::as_u64).unwrap_or(0));
                if num_perm == Json::Null {
                    if let Some(np) = stats.get("num_perm") {
                        num_perm = np.clone();
                    }
                }
                if let Some(m) = stats.get("maintenance") {
                    maint_queued += m.get("queued").and_then(Json::as_u64).unwrap_or(0);
                    maint_running += u64::from(m.get("running").is_some_and(|r| *r != Json::Null));
                    maint_merges += m.get("merges").and_then(Json::as_u64).unwrap_or(0);
                    maint_full += m.get("full_merges").and_then(Json::as_u64).unwrap_or(0);
                    maint_folded += m.get("entries_folded").and_then(Json::as_u64).unwrap_or(0);
                    maint_last_us = maint_last_us
                        .max(m.get("last_merge_us").and_then(Json::as_u64).unwrap_or(0));
                }
            }
            if self.health[s].is_degraded() {
                degraded.push(s);
            }
            per_shard.push(Json::obj(vec![
                ("shard", Json::uint(s as u64)),
                ("addr", Json::str(self.pools[s].addr().to_string())),
                ("reachable", Json::Bool(stats.is_some())),
                ("degraded", Json::Bool(self.health[s].is_degraded())),
                // The commit-convergence witness: equal values across
                // shards mean the last broadcast landed everywhere; a
                // lagging value names the shard to re-commit.
                (
                    "last_commit_generation",
                    Json::uint(self.last_commit_generation[s].load(Ordering::Acquire)),
                ),
                ("stats", stats.unwrap_or(Json::Null)),
            ]));
        }
        Response::ok(Json::obj(vec![
            ("cluster", Json::Bool(true)),
            ("shards", Json::uint(self.n() as u64)),
            ("domains", Json::uint(domains)),
            ("num_perm", num_perm),
            ("generation", Json::uint(generation)),
            (
                "next_id",
                Json::uint(u64::from(self.next_id.load(Ordering::Acquire))),
            ),
            (
                "hedges_fired",
                Json::uint(self.hedges_fired.load(Ordering::Acquire)),
            ),
            (
                "degraded_shards",
                Json::Arr(degraded.into_iter().map(|s| Json::uint(s as u64)).collect()),
            ),
            // Summed/maxed across reachable shards; each shard's full
            // maintenance object (level layout, policy, thresholds) rides
            // along verbatim under per_shard[].stats.maintenance.
            (
                "maintenance",
                Json::obj(vec![
                    ("queued", Json::uint(maint_queued)),
                    ("running_shards", Json::uint(maint_running)),
                    ("merges", Json::uint(maint_merges)),
                    ("full_merges", Json::uint(maint_full)),
                    ("entries_folded", Json::uint(maint_folded)),
                    ("last_merge_us", Json::uint(maint_last_us)),
                ]),
            ),
            ("per_shard", Json::Arr(per_shard)),
        ]))
    }

    /// `/shutdown`: drain the COORDINATOR. Shards are left running —
    /// they are independent processes with their own `/shutdown`.
    fn begin_shutdown(&self) -> Response {
        self.shutting_down.store(true, Ordering::Release);
        // Wake the blocking accept loop so it observes the flag.
        let _ = TcpStream::connect(self.self_addr);
        Response {
            status: 200,
            reason: "OK",
            body: Json::obj(vec![("status", Json::str("shutting down"))]).render(),
            retry_after: None,
            close: true,
        }
    }
}

/// Appends the degraded markers to a response under construction.
fn push_degraded(fields: &mut Vec<(&str, Json)>, failed: &[usize]) {
    if !failed.is_empty() {
        fields.push(("degraded", Json::Bool(true)));
        fields.push((
            "degraded_shards",
            Json::Arr(failed.iter().map(|&s| Json::uint(s as u64)).collect()),
        ));
    }
}

/// A running coordinator. Obtain via [`start`]; stop via
/// [`shutdown`](ClusterHandle::shutdown) or a `POST /shutdown` followed
/// by [`join`](ClusterHandle::join).
pub struct ClusterHandle {
    addr: SocketAddr,
    coordinator: Arc<Coordinator>,
    accept: Option<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ClusterHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterHandle")
            .field("addr", &self.addr)
            .field("shards", &self.coordinator.n())
            .finish_non_exhaustive()
    }
}

impl ClusterHandle {
    /// The coordinator's bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates shutdown and waits for the accept and prober threads.
    pub fn shutdown(mut self) {
        self.coordinator
            .shutting_down
            .store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
        self.join_threads();
    }

    /// Blocks until the coordinator shuts down (via `POST /shutdown`).
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(prober) = self.prober.take() {
            let _ = prober.join();
        }
    }
}

/// Starts a coordinator for the given shard topology.
///
/// Validates the topology against the live shards first (signature
/// widths must agree; reported shard ids must match list positions; at
/// least one shard must be reachable), then binds and begins serving.
///
/// # Errors
/// A human-readable message when the bind fails or the topology is
/// invalid.
pub fn start(config: ClusterConfig) -> Result<ClusterHandle, String> {
    if config.shards.is_empty() {
        return Err("a cluster needs at least one shard address".to_owned());
    }
    let listener =
        TcpListener::bind(&config.addr).map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    let pools = config
        .shards
        .iter()
        .map(|&shard| ConnPool::new(shard, config.connect_timeout, config.read_timeout))
        .collect::<Vec<_>>();
    let health = (0..pools.len()).map(|_| HealthState::new()).collect();
    let last_commit_generation = (0..pools.len()).map(|_| AtomicU64::new(0)).collect();
    let coordinator = Arc::new(Coordinator {
        config,
        self_addr: addr,
        pools,
        health,
        next_id: AtomicU32::new(0),
        last_commit_generation,
        hedges_fired: AtomicU64::new(0),
        shutting_down: AtomicBool::new(false),
    });
    coordinator.validate_topology()?;

    let accept = {
        let coordinator = Arc::clone(&coordinator);
        std::thread::Builder::new()
            .name("cluster-accept".to_owned())
            .spawn(move || accept_loop(&listener, &coordinator))
            .map_err(|e| format!("cannot spawn accept thread: {e}"))?
    };
    let prober = {
        let coordinator = Arc::clone(&coordinator);
        std::thread::Builder::new()
            .name("cluster-prober".to_owned())
            .spawn(move || prober_loop(&coordinator))
            .map_err(|e| format!("cannot spawn prober thread: {e}"))?
    };
    Ok(ClusterHandle {
        addr,
        coordinator,
        accept: Some(accept),
        prober: Some(prober),
    })
}

fn accept_loop(listener: &TcpListener, coordinator: &Arc<Coordinator>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if coordinator.shutting_down.load(Ordering::Acquire) {
                    // The shutdown wake connection (or a too-late client).
                    return;
                }
                let coordinator = Arc::clone(coordinator);
                std::thread::spawn(move || handle_conn(&coordinator, stream));
            }
            Err(_) => {
                if coordinator.shutting_down.load(Ordering::Acquire) {
                    return;
                }
            }
        }
    }
}

/// Background health prober: keeps degraded shards under observation so
/// recovery does not depend on `/health` traffic.
fn prober_loop(coordinator: &Coordinator) {
    let done = |c: &Coordinator| c.shutting_down.load(Ordering::Acquire);
    while !done(coordinator) {
        for s in 0..coordinator.n() {
            if done(coordinator) {
                return;
            }
            let _ = coordinator.plain_call(s, "GET", "/health", None);
        }
        let wake = Instant::now() + coordinator.config.probe_interval;
        while Instant::now() < wake {
            if done(coordinator) {
                return;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
    }
}

/// One keep-alive client connection: a persistent [`RequestParser`] fed
/// from a short-timeout socket, so idle connections notice shutdown and
/// idle limits at [`POLL_TICK`] granularity while pipelined requests
/// drain back-to-back.
fn handle_conn(coordinator: &Coordinator, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(POLL_TICK)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut parser = RequestParser::new();
    let mut last_activity = Instant::now();
    loop {
        match parser.next_request() {
            Ok(Some(request)) => {
                last_activity = Instant::now();
                let draining = coordinator.shutting_down.load(Ordering::Acquire);
                let response = if draining && request.path() != "/shutdown" {
                    // Drain-time refusal, mirroring `lshe-serve`: typed
                    // 503 with Retry-After, then close.
                    Response {
                        status: 503,
                        reason: "Service Unavailable",
                        body: Json::obj(vec![("error", Json::str("shutting down"))]).render(),
                        retry_after: Some(RETRY_AFTER_SECS),
                        close: true,
                    }
                } else {
                    coordinator.handle(&request)
                };
                let keep_alive = !request.wants_close() && !response.close;
                if write_reply(&mut writer, &response, keep_alive).is_err() || !keep_alive {
                    return;
                }
                continue;
            }
            Ok(None) => {}
            Err(e) => {
                let body = Json::obj(vec![("error", Json::str(e.to_string()))]).render();
                let _ = write_response(
                    &mut writer,
                    400,
                    "Bad Request",
                    "application/json",
                    body.as_bytes(),
                    false,
                );
                return;
            }
        }
        if parser.is_idle() {
            if coordinator.shutting_down.load(Ordering::Acquire)
                || last_activity.elapsed() > IDLE_LIMIT
            {
                return;
            }
        } else if last_activity.elapsed() > REQUEST_TIMEOUT {
            let body = Json::obj(vec![("error", Json::str("request read timed out"))]).render();
            let _ = write_response(
                &mut writer,
                400,
                "Bad Request",
                "application/json",
                body.as_bytes(),
                false,
            );
            return;
        }
        match reader.fill_buf() {
            Ok([]) => return,
            Ok(chunk) => {
                let n = chunk.len();
                parser.feed(chunk);
                reader.consume(n);
                last_activity = Instant::now();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return,
        }
    }
}

fn write_reply(
    writer: &mut TcpStream,
    response: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = Vec::with_capacity(160);
    if let Some(secs) = response.retry_after {
        write_head_with(
            &mut head,
            response.status,
            response.reason,
            "application/json",
            response.body.len(),
            keep_alive,
            &[("retry-after", &secs.to_string())],
        );
    } else {
        write_head(
            &mut head,
            response.status,
            response.reason,
            "application/json",
            response.body.len(),
            keep_alive,
        );
    }
    writer.write_all(&head)?;
    writer.write_all(response.body.as_bytes())?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshe_serve::client::HttpClient;
    use lshe_serve::http::read_request;

    fn hit(id: u32, estimate: f64) -> Json {
        Json::obj(vec![
            ("id", Json::uint(u64::from(id))),
            ("table", Json::str(format!("t{id}"))),
            ("column", Json::str("c")),
            ("size", Json::uint(10)),
            ("estimate", Json::num(estimate)),
        ])
    }

    /// A canned shard process: real HTTP over the real codec, scripted
    /// answers. `shard_id` is what it reports on `/stats`; `hits` is its
    /// ranked answer to every query (and every batch item).
    fn fake_shard(shard_id: u64, hits: Vec<Json>) -> SocketAddr {
        fake_shard_failing_commits(shard_id, hits, 0)
    }

    /// Like [`fake_shard`], but the first `fail_commits` `/commit`
    /// attempts answer 500 — the wire shape of a shard killed (or
    /// wedged) mid-commit, used to exercise the coordinator's
    /// retry-once convergence.
    fn fake_shard_failing_commits(shard_id: u64, hits: Vec<Json>, fail_commits: u64) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let commits = Arc::new(AtomicU64::new(0));
        std::thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                let hits = hits.clone();
                let commits = Arc::clone(&commits);
                std::thread::spawn(move || {
                    let Ok(read_half) = stream.try_clone() else {
                        return;
                    };
                    let mut reader = BufReader::new(read_half);
                    let mut writer = stream;
                    while let Ok(Some(req)) = read_request(&mut reader, None) {
                        let (status, body) = answer(&req, shard_id, &hits, &commits, fail_commits);
                        let keep = !req.wants_close();
                        if write_response(
                            &mut writer,
                            status,
                            reason_for(status),
                            "application/json",
                            body.as_bytes(),
                            keep,
                        )
                        .is_err()
                            || !keep
                        {
                            return;
                        }
                    }
                });
            }
        });
        addr
    }

    fn answer(
        req: &Request,
        shard_id: u64,
        hits: &[Json],
        commits: &AtomicU64,
        fail_commits: u64,
    ) -> (u16, String) {
        let query_answer = || {
            Json::obj(vec![
                ("count", Json::uint(hits.len() as u64)),
                ("cached", Json::Bool(false)),
                ("hits", Json::Arr(hits.to_vec())),
            ])
        };
        match (req.method.as_str(), req.path()) {
            ("GET", "/stats") => (
                200,
                Json::obj(vec![
                    ("domains", Json::uint(hits.len() as u64)),
                    ("num_perm", Json::uint(128)),
                    ("shard_id", Json::uint(shard_id)),
                    ("next_id", Json::uint(100)),
                    ("generation", Json::uint(1)),
                ])
                .render(),
            ),
            ("GET", "/health") => (
                200,
                Json::obj(vec![
                    ("status", Json::str("ok")),
                    ("domains", Json::uint(hits.len() as u64)),
                    ("generation", Json::uint(1)),
                ])
                .render(),
            ),
            ("POST", "/query") | ("POST", "/topk") => {
                let mut fields = match query_answer() {
                    Json::Obj(fields) => fields,
                    _ => unreachable!(),
                };
                fields.insert(2, ("generation".to_owned(), Json::uint(1)));
                fields.insert(3, ("query_time_us".to_owned(), Json::uint(5)));
                (200, Json::Obj(fields).render())
            }
            ("POST", "/commit") => {
                let attempt = commits.fetch_add(1, Ordering::SeqCst);
                if attempt < fail_commits {
                    (500, r#"{"error":"injected commit failure"}"#.to_owned())
                } else {
                    (
                        200,
                        Json::obj(vec![
                            ("status", Json::str("committed")),
                            ("applied", Json::uint(1)),
                            ("merged", Json::uint(1)),
                            ("rebalanced", Json::Bool(false)),
                            ("sealed", Json::Bool(true)),
                            ("segments", Json::uint(1)),
                            ("tombstones", Json::uint(0)),
                            ("generation", Json::uint(2)),
                            ("domains", Json::uint(hits.len() as u64)),
                        ])
                        .render(),
                    )
                }
            }
            ("POST", "/batch") => {
                let items = std::str::from_utf8(&req.body)
                    .ok()
                    .and_then(|b| Json::parse(b).ok())
                    .and_then(|j| j.get("queries").and_then(Json::as_array).map(<[Json]>::len))
                    .unwrap_or(0);
                let results: Vec<Json> = (0..items).map(|_| query_answer()).collect();
                (
                    200,
                    Json::obj(vec![
                        ("count", Json::uint(items as u64)),
                        ("generation", Json::uint(1)),
                        ("batch_time_us", Json::uint(7)),
                        ("results", Json::Arr(results)),
                    ])
                    .render(),
                )
            }
            _ => (404, r#"{"error":"no such endpoint"}"#.to_owned()),
        }
    }

    /// An address that refuses connections (bound then dropped).
    fn dead_addr() -> SocketAddr {
        TcpListener::bind("127.0.0.1:0")
            .expect("bind")
            .local_addr()
            .expect("addr")
    }

    fn boot(shards: Vec<SocketAddr>) -> ClusterHandle {
        start(ClusterConfig {
            addr: "127.0.0.1:0".to_owned(),
            shards,
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_secs(5),
            hedge_after: Duration::from_millis(300),
            // Long: these tests drive health via requests, not probes.
            probe_interval: Duration::from_secs(60),
        })
        .expect("cluster start")
    }

    fn hit_ids(body: &Json) -> Vec<u64> {
        body.get("hits")
            .and_then(Json::as_array)
            .expect("hits array")
            .iter()
            .map(|h| h.get("id").and_then(Json::as_u64).expect("hit id"))
            .collect()
    }

    const QUERY: &str = r#"{"values": ["a", "b"], "threshold": 0.1}"#;

    #[test]
    fn coordinator_merges_shards_and_aggregates_stats() {
        let handle = boot(vec![
            fake_shard(0, vec![hit(0, 0.9), hit(2, 0.4)]),
            fake_shard(1, vec![hit(1, 0.7)]),
        ]);
        let mut client = HttpClient::connect(handle.addr());

        let (status, body) = client.post("/query", QUERY);
        assert_eq!(status, 200, "{body}");
        assert_eq!(hit_ids(&body), vec![0, 1, 2], "global estimate order");
        assert_eq!(body.get("count").and_then(Json::as_u64), Some(3));
        assert!(body.get("degraded").is_none(), "healthy cluster: {body}");

        // k truncates the MERGED ranking, not a per-shard one.
        let (status, body) =
            client.post("/query", r#"{"values": ["a"], "threshold": 0.1, "k": 2}"#);
        assert_eq!(status, 200, "{body}");
        assert_eq!(hit_ids(&body), vec![0, 1], "top-2 of the merged order");

        let (status, health) = client.get("/health");
        assert_eq!(status, 200);
        assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(health.get("domains").and_then(Json::as_u64), Some(3));

        let (status, stats) = client.get("/stats");
        assert_eq!(status, 200);
        assert_eq!(stats.get("cluster").and_then(Json::as_bool), Some(true));
        assert_eq!(stats.get("shards").and_then(Json::as_u64), Some(2));
        assert_eq!(stats.get("domains").and_then(Json::as_u64), Some(3));
        assert_eq!(stats.get("num_perm").and_then(Json::as_u64), Some(128));
        assert_eq!(
            stats.get("next_id").and_then(Json::as_u64),
            Some(100),
            "allocator seeds from the max shard next_id"
        );

        // Unknown path / wrong method mirror the shard server.
        let (status, _) = client.request("GET", "/nope", None);
        assert_eq!(status, 404);
        let (status, _) = client.request("GET", "/query", None);
        assert_eq!(status, 405);
        handle.shutdown();
    }

    #[test]
    fn batch_merges_element_wise_with_per_item_k() {
        let handle = boot(vec![
            fake_shard(0, vec![hit(0, 0.9), hit(2, 0.4)]),
            fake_shard(1, vec![hit(1, 0.7)]),
        ]);
        let mut client = HttpClient::connect(handle.addr());
        let (status, body) = client.post(
            "/batch",
            r#"{"queries": [{"values": ["a"]}, {"values": ["b"], "k": 2}]}"#,
        );
        assert_eq!(status, 200, "{body}");
        assert_eq!(body.get("count").and_then(Json::as_u64), Some(2));
        let results = body
            .get("results")
            .and_then(Json::as_array)
            .expect("results");
        assert_eq!(results.len(), 2);
        assert_eq!(hit_ids(&results[0]), vec![0, 1, 2]);
        assert_eq!(
            hit_ids(&results[1]),
            vec![0, 1],
            "item k truncates its merge"
        );
        handle.shutdown();
    }

    #[test]
    fn dead_shard_degrades_but_queries_survive() {
        let live = fake_shard(0, vec![hit(0, 0.9)]);
        let handle = boot(vec![live, dead_addr()]);
        let mut client = HttpClient::connect(handle.addr());

        // Startup already counted one failure; this query's failure is
        // the second, crossing DEGRADE_AFTER.
        let (status, body) = client.post("/query", QUERY);
        assert_eq!(status, 200, "surviving shards still answer: {body}");
        assert_eq!(body.get("degraded").and_then(Json::as_bool), Some(true));
        assert_eq!(hit_ids(&body), vec![0]);

        let (status, health) = client.get("/health");
        assert_eq!(status, 200);
        assert_eq!(
            health.get("status").and_then(Json::as_str),
            Some("degraded"),
            "{health}"
        );
        let degraded = health
            .get("degraded_shards")
            .and_then(Json::as_array)
            .expect("degraded_shards");
        assert_eq!(
            degraded.iter().filter_map(Json::as_u64).collect::<Vec<_>>(),
            vec![1]
        );

        // Now degraded: the shard is skipped, answers stay degraded-200.
        let (status, body) = client.post("/query", QUERY);
        assert_eq!(status, 200, "{body}");
        assert_eq!(body.get("degraded").and_then(Json::as_bool), Some(true));
        assert_eq!(hit_ids(&body), vec![0]);

        // Mutations owned by the degraded shard are refused, not lost.
        let (status, body) = client.post("/remove", r#"{"id": 1}"#);
        assert_eq!(status, 503, "{body}");
        handle.shutdown();
    }

    /// The commit-convergence satellite: a shard that dies on its first
    /// `/commit` attempt but recovers must not fork cluster state — the
    /// coordinator's single idempotent retry lands the commit, the
    /// client sees one clean success, and `/stats` shows every shard at
    /// the same `last_commit_generation`.
    #[test]
    fn commit_retries_once_and_converges_after_shard_failure() {
        let handle = boot(vec![
            fake_shard(0, vec![hit(0, 0.9)]),
            fake_shard_failing_commits(1, vec![hit(1, 0.7)], 1),
        ]);
        let mut client = HttpClient::connect(handle.addr());
        let (status, body) = client.post("/commit", "");
        assert_eq!(status, 200, "retry must converge: {body}");
        assert_eq!(body.get("status").and_then(Json::as_str), Some("committed"));
        assert_eq!(body.get("applied").and_then(Json::as_u64), Some(2));
        assert_eq!(body.get("sealed").and_then(Json::as_bool), Some(true));
        assert_eq!(body.get("segments").and_then(Json::as_u64), Some(2));

        let (status, stats) = client.get("/stats");
        assert_eq!(status, 200);
        let per_shard = stats
            .get("per_shard")
            .and_then(Json::as_array)
            .expect("per_shard");
        for entry in per_shard {
            assert_eq!(
                entry.get("last_commit_generation").and_then(Json::as_u64),
                Some(2),
                "shard lagging after converged commit: {entry}"
            );
        }
        handle.shutdown();
    }

    /// When the retry fails too, the coordinator reports the divergence
    /// — and `last_commit_generation` pins exactly which shard is
    /// behind (the healthy shard committed; skipping it was never an
    /// option, or cluster state would fork silently).
    #[test]
    fn exhausted_commit_retry_names_the_lagging_shard() {
        let handle = boot(vec![
            fake_shard(0, vec![hit(0, 0.9)]),
            fake_shard_failing_commits(1, vec![hit(1, 0.7)], 10),
        ]);
        let mut client = HttpClient::connect(handle.addr());
        let (status, body) = client.post("/commit", "");
        assert_eq!(status, 502, "{body}");
        let msg = body.get("error").and_then(Json::as_str).expect("error");
        assert!(msg.contains("[1]"), "failed shard not named: {msg}");

        let (_, stats) = client.get("/stats");
        let per_shard = stats
            .get("per_shard")
            .and_then(Json::as_array)
            .expect("per_shard");
        let generations: Vec<u64> = per_shard
            .iter()
            .map(|e| {
                e.get("last_commit_generation")
                    .and_then(Json::as_u64)
                    .expect("generation")
            })
            .collect();
        assert_eq!(
            generations,
            vec![2, 0],
            "stats must pin the lagging shard: {stats}"
        );
        handle.shutdown();
    }

    #[test]
    fn all_shards_dead_refuses_to_start() {
        let err = start(ClusterConfig {
            addr: "127.0.0.1:0".to_owned(),
            shards: vec![dead_addr(), dead_addr()],
            connect_timeout: Duration::from_millis(200),
            ..ClusterConfig::default()
        })
        .expect_err("no reachable shard");
        assert!(err.contains("reachable"), "{err}");
    }

    #[test]
    fn misplaced_shard_is_a_config_error() {
        // A shard reporting id 1 listed at position 0: routing would
        // diverge from the split, so startup must refuse.
        let err = start(ClusterConfig {
            addr: "127.0.0.1:0".to_owned(),
            shards: vec![fake_shard(1, vec![hit(0, 0.5)])],
            ..ClusterConfig::default()
        })
        .expect_err("misplaced shard");
        assert!(err.contains("position 0"), "{err}");
    }

    #[test]
    fn shutdown_endpoint_drains_and_stops_accepting() {
        let handle = boot(vec![fake_shard(0, vec![hit(0, 0.9)])]);
        let addr = handle.addr();
        let mut client = HttpClient::connect(addr);
        let (status, body) = client.post("/shutdown", "");
        assert_eq!(status, 200, "{body}");
        assert_eq!(
            body.get("status").and_then(Json::as_str),
            Some("shutting down")
        );
        handle.join();
        assert!(
            TcpStream::connect(addr).is_err(),
            "listener must be gone after shutdown"
        );
    }
}
