//! Parallel shard fan-out and hedged straggler retries.
//!
//! [`scatter`] runs one closure per shard concurrently, budgeted by the
//! process-wide [`lshe_minhash::lanes`] pool — the same governor every
//! batched layer in the workspace draws worker threads from, so a
//! coordinator colocated with other work degrades toward sequential
//! fan-out instead of oversubscribing the host. It deliberately does NOT
//! go through `lanes::run_chunked`: that helper keeps batches of fewer
//! than `MIN_ITEMS_PER_LANE` items inline because its callers are
//! CPU-bound, whereas a shard call is IO-bound — four shards at 5 ms
//! each are worth four lanes even though four is a "tiny" batch.
//!
//! [`hedged_call`] is the straggler defence: send on a pooled
//! connection, and if no response arrives within the hedge deadline,
//! race a second request on a fresh connection against the original
//! in-flight one — first answer wins, the loser is discarded. Hedging is
//! safe **only for idempotent reads** (`/query`, `/topk`, `/batch`,
//! `/health`, `/stats`); mutations go through the unhedged [`call`],
//! because a hedged `/insert` that "lost" may still have been applied.

use crate::pool::ConnPool;
use lshe_minhash::lanes;
use lshe_serve::client::ClientError;
use std::sync::mpsc;
use std::time::Duration;

/// The result of one shard HTTP exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallOutcome {
    /// HTTP status the shard answered with.
    pub status: u16,
    /// Raw response body (JSON text).
    pub body: String,
    /// Whether a hedge request fired for this exchange (regardless of
    /// which of the two racing requests ultimately won).
    pub hedged: bool,
}

/// Runs `f(0..n)` concurrently across budget-governed lanes and returns
/// the outputs in index order. The calling thread is always a lane of
/// its own (it works the first chunk while spawned lanes work the
/// rest), so with an exhausted budget the fan-out degrades to a plain
/// sequential loop rather than blocking.
pub fn scatter<T: Send>(n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    if n == 0 {
        return Vec::new();
    }
    let guard = lanes::acquire(n - 1);
    let lanes_held = guard.lanes().min(n);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    if lanes_held <= 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = Some(f(i));
        }
    } else {
        let chunk = n.div_ceil(lanes_held);
        std::thread::scope(|scope| {
            let f = &f;
            let mut chunks = slots.chunks_mut(chunk).enumerate();
            let first = chunks.next();
            for (ci, chunk_slots) in chunks {
                scope.spawn(move || {
                    for (j, slot) in chunk_slots.iter_mut().enumerate() {
                        *slot = Some(f(ci * chunk + j));
                    }
                });
            }
            if let Some((_, chunk_slots)) = first {
                for (j, slot) in chunk_slots.iter_mut().enumerate() {
                    *slot = Some(f(j));
                }
            }
        });
    }
    slots
        .into_iter()
        .map(|s| s.expect("scatter filled every slot"))
        .collect()
}

/// One unhedged exchange over a pooled connection. Healthy connections
/// return to the pool; errored ones are dropped (a half-read response
/// cannot be resynchronised). This is the only transport mutations
/// (`/insert`, `/remove`, `/commit`, `/reload`) may use.
///
/// # Errors
/// Any [`ClientError`] from connect, send, or read.
pub fn call(
    pool: &ConnPool,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<CallOutcome, ClientError> {
    let mut conn = pool.checkout()?;
    let (status, body) = conn.try_request(method, path, body)?;
    pool.checkin(conn);
    Ok(CallOutcome {
        status,
        body,
        hedged: false,
    })
}

/// One exchange with a hedged retry: if the shard has not answered
/// within `hedge_after`, a second copy of the request races on a fresh
/// connection while the original keeps waiting up to the pool's full
/// read deadline. The first successful response wins; both racing
/// connections are discarded afterwards (one of them may still carry an
/// in-flight response, so neither can be pooled).
///
/// Only safe for idempotent requests — see the module docs.
///
/// # Errors
/// The last racer's [`ClientError`] when both lose (e.g. the shard is
/// down: the original times out and the hedge cannot connect).
pub fn hedged_call(
    pool: &ConnPool,
    method: &str,
    path: &str,
    body: Option<&str>,
    hedge_after: Duration,
) -> Result<CallOutcome, ClientError> {
    let full = pool.read_timeout();
    let mut conn = pool.checkout()?;
    conn.set_read_timeout(hedge_after)?;
    conn.try_send(method, path, body)?;
    match conn.try_read_response() {
        Ok((status, body)) => {
            conn.set_read_timeout(full)?;
            pool.checkin(conn);
            Ok(CallOutcome {
                status,
                body,
                hedged: false,
            })
        }
        Err(ClientError::Timeout) => {
            let (tx, rx) = mpsc::channel();
            // Straggler reader: the original request is still in flight on
            // `conn`; keep waiting for it under the full deadline. Runs
            // detached so a win on the other racer returns immediately —
            // the loser finishes (or times out) in the background and its
            // connection drops with the thread.
            let straggler_tx = tx.clone();
            std::thread::spawn(move || {
                let res = conn
                    .set_read_timeout(full)
                    .and_then(|()| conn.try_read_response());
                let _ = straggler_tx.send(res);
            });
            // Hedge: the same request again on a brand-new connection.
            // Connect happens here on the calling thread (the pool is not
            // 'static), the exchange in a detached racer.
            match pool.fresh() {
                Ok(mut fresh) => {
                    let (method, path) = (method.to_string(), path.to_string());
                    let body = body.map(str::to_string);
                    std::thread::spawn(move || {
                        let res = fresh.try_request(&method, &path, body.as_deref());
                        let _ = tx.send(res);
                    });
                }
                // Shard refuses new connections: only the straggler can
                // still answer. Dropping `tx` lets recv() observe the end.
                Err(_) => drop(tx),
            }
            let mut last_err = ClientError::Timeout;
            loop {
                match rx.recv() {
                    Ok(Ok((status, body))) => {
                        return Ok(CallOutcome {
                            status,
                            body,
                            hedged: true,
                        })
                    }
                    Ok(Err(e)) => last_err = e,
                    Err(_) => return Err(last_err),
                }
            }
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::{SocketAddr, TcpListener, TcpStream};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    fn respond(conn: &mut TcpStream, body: &str) {
        let head = format!(
            "HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: keep-alive\r\n\r\n",
            body.len()
        );
        let _ = conn.write_all(head.as_bytes());
        let _ = conn.write_all(body.as_bytes());
    }

    /// Reads request head + body off a shard-side connection; true when a
    /// full request arrived, false on EOF/error.
    fn read_one_request(reader: &mut BufReader<TcpStream>) -> bool {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return false,
            Ok(_) => {}
        }
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            if reader.read_line(&mut header).map_or(true, |n| n == 0) {
                return false;
            }
            let header = header.trim_end().to_ascii_lowercase();
            if header.is_empty() {
                break;
            }
            if let Some(v) = header.strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap_or(0);
            }
        }
        let mut body = vec![0u8; content_length];
        std::io::Read::read_exact(reader, &mut body).is_ok()
    }

    /// A fake shard whose FIRST request (per server) stalls for `delay`
    /// before answering `slow`; every other request answers `fast`
    /// immediately. Handles each connection on its own thread, so a
    /// hedge connection is served while the first one sleeps.
    fn slow_then_fast_shard(delay: Duration) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let served = Arc::new(AtomicUsize::new(0));
        std::thread::spawn(move || {
            while let Ok((conn, _)) = listener.accept() {
                let served = Arc::clone(&served);
                std::thread::spawn(move || {
                    let mut writer = conn.try_clone().expect("clone");
                    let mut reader = BufReader::new(conn);
                    while read_one_request(&mut reader) {
                        if served.fetch_add(1, Ordering::AcqRel) == 0 {
                            std::thread::sleep(delay);
                            respond(&mut writer, r#"{"who":"slow"}"#);
                        } else {
                            respond(&mut writer, r#"{"who":"fast"}"#);
                        }
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn scatter_preserves_index_order() {
        for n in [0usize, 1, 3, 4, 17] {
            let out = scatter(n, |i| i * i);
            assert_eq!(out, (0..n).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn scatter_runs_every_index_exactly_once() {
        let hits = AtomicUsize::new(0);
        let out = scatter(8, |i| {
            hits.fetch_add(1, Ordering::AcqRel);
            i
        });
        assert_eq!(hits.load(Ordering::Acquire), 8);
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn fast_shard_never_hedges() {
        let addr = slow_then_fast_shard(Duration::ZERO);
        let pool = ConnPool::new(addr, Duration::from_secs(2), Duration::from_secs(5));
        let out = hedged_call(&pool, "GET", "/health", None, Duration::from_secs(2))
            .expect("fast exchange");
        assert_eq!(out.status, 200);
        assert!(!out.hedged);
        assert_eq!(pool.idle_len(), 1, "unhedged connection returns to pool");
    }

    #[test]
    fn hedge_fires_on_injected_slow_shard_and_fast_answer_wins() {
        // First request stalls 3 s; hedge fires after 100 ms and the
        // fresh connection answers immediately.
        let addr = slow_then_fast_shard(Duration::from_secs(3));
        let pool = ConnPool::new(addr, Duration::from_secs(2), Duration::from_secs(10));
        let started = Instant::now();
        let out = hedged_call(&pool, "GET", "/health", None, Duration::from_millis(100))
            .expect("hedged exchange");
        let elapsed = started.elapsed();
        assert!(out.hedged, "hedge must fire for the stalled first request");
        assert_eq!(out.status, 200);
        assert_eq!(
            out.body, r#"{"who":"fast"}"#,
            "the hedge racer's answer wins"
        );
        assert!(
            elapsed < Duration::from_secs(2),
            "hedged call returned in {elapsed:?}, must not wait out the straggler"
        );
        assert_eq!(pool.idle_len(), 0, "neither racing connection is pooled");
    }

    #[test]
    fn dead_shard_yields_typed_error_from_both_racers() {
        // Bind-then-drop: the port refuses connections outright.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let pool = ConnPool::new(addr, Duration::from_millis(200), Duration::from_secs(1));
        let err = hedged_call(&pool, "GET", "/health", None, Duration::from_millis(50))
            .expect_err("dead shard");
        assert!(matches!(err, ClientError::Connect(_)), "got {err:?}");
    }
}
