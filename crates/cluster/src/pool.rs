//! Per-shard keep-alive connection pool.
//!
//! Each shard gets one [`ConnPool`]: scatter workers check a connection
//! out, run one (or one pipelined batch of) exchange(s), and check it
//! back in on success. A connection that saw an error — timeout, reset,
//! protocol garbage — is dropped, never pooled: after a half-read
//! response the stream cannot be resynchronised. Hedge connections are
//! likewise single-use ([`ConnPool::fresh`]).

use lshe_serve::client::{ClientError, HttpClient};
use std::net::SocketAddr;
use std::sync::Mutex;
use std::time::Duration;

/// Idle connections retained per shard. The coordinator's scatter touches
/// every shard once per request, so a small constant covers steady state;
/// bursts simply open (and afterwards discard) extras.
const MAX_IDLE: usize = 4;

/// A pool of keep-alive connections to one shard.
pub struct ConnPool {
    addr: SocketAddr,
    connect_timeout: Duration,
    read_timeout: Duration,
    idle: Mutex<Vec<HttpClient>>,
}

impl ConnPool {
    /// A pool for `addr` whose connections handshake within
    /// `connect_timeout` and time reads out after `read_timeout`.
    #[must_use]
    pub fn new(addr: SocketAddr, connect_timeout: Duration, read_timeout: Duration) -> Self {
        Self {
            addr,
            connect_timeout,
            read_timeout,
            idle: Mutex::new(Vec::new()),
        }
    }

    /// The shard's address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The pool's configured read deadline.
    #[must_use]
    pub fn read_timeout(&self) -> Duration {
        self.read_timeout
    }

    /// An idle pooled connection, or a fresh one.
    ///
    /// # Errors
    /// [`ClientError::Connect`] when the shard is unreachable within the
    /// connect deadline.
    pub fn checkout(&self) -> Result<HttpClient, ClientError> {
        if let Some(conn) = self.idle.lock().expect("pool lock poisoned").pop() {
            return Ok(conn);
        }
        self.fresh()
    }

    /// Always a brand-new connection — the hedge path, which must not
    /// inherit a possibly-wedged pooled stream.
    ///
    /// # Errors
    /// As [`checkout`](Self::checkout).
    pub fn fresh(&self) -> Result<HttpClient, ClientError> {
        HttpClient::try_connect(self.addr, self.connect_timeout, self.read_timeout)
    }

    /// Returns a healthy connection for reuse. Beyond the idle bound
    /// (`MAX_IDLE`) the connection is simply dropped (closed).
    pub fn checkin(&self, conn: HttpClient) {
        let mut idle = self.idle.lock().expect("pool lock poisoned");
        if idle.len() < MAX_IDLE {
            idle.push(conn);
        }
    }

    /// Number of idle pooled connections (observability / tests).
    #[must_use]
    pub fn idle_len(&self) -> usize {
        self.idle.lock().expect("pool lock poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::TcpListener;

    /// A tiny single-thread HTTP responder: answers every request with an
    /// empty 200 until dropped.
    fn fake_shard() -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = std::thread::spawn(move || {
            while let Ok((mut conn, _)) = listener.accept() {
                let mut buf = [0u8; 4096];
                loop {
                    match conn.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {
                            let _ = conn.write_all(
                                b"HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: 2\r\nconnection: keep-alive\r\n\r\n{}",
                            );
                        }
                    }
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn checkout_reuses_checked_in_connections() {
        let (addr, _srv) = fake_shard();
        let pool = ConnPool::new(addr, Duration::from_secs(2), Duration::from_secs(2));
        let mut conn = pool.checkout().expect("connect");
        let (status, _) = conn.try_request("GET", "/health", None).expect("exchange");
        assert_eq!(status, 200);
        pool.checkin(conn);
        assert_eq!(pool.idle_len(), 1);
        let mut again = pool.checkout().expect("pooled");
        assert_eq!(pool.idle_len(), 0, "checkout drained the idle list");
        let (status, _) = again
            .try_request("GET", "/health", None)
            .expect("reused connection still works");
        assert_eq!(status, 200);
    }

    #[test]
    fn idle_list_is_bounded() {
        let (addr, _srv) = fake_shard();
        let pool = ConnPool::new(addr, Duration::from_secs(2), Duration::from_secs(2));
        let conns: Vec<HttpClient> = (0..MAX_IDLE + 3)
            .map(|_| pool.checkout().expect("connect"))
            .collect();
        for conn in conns {
            pool.checkin(conn);
        }
        assert_eq!(pool.idle_len(), MAX_IDLE);
    }

    #[test]
    fn unreachable_shard_is_a_typed_connect_error() {
        // A bound-then-dropped listener's port refuses connections.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let pool = ConnPool::new(addr, Duration::from_millis(300), Duration::from_secs(1));
        assert!(matches!(pool.checkout(), Err(ClientError::Connect(_))));
    }
}
