//! # lshe-cluster
//!
//! The multi-**process** tier of the paper's §6.3 deployment story: where
//! `lshe_core::ShardedRanked` fans a query out across in-process shards,
//! this crate fans it out across N independent `lshe-serve` processes over
//! their existing HTTP/JSON protocol — a coordinator that speaks the same
//! endpoint surface downstream clients already use, so moving from one
//! process to a cluster changes a URL, not a client.
//!
//! | module | role |
//! |---|---|
//! | [`placement`] | deterministic domain→shard routing (`id % shards`, the same modulus [`lshe_core::ShardedEnsemble`] inserts route by) |
//! | [`pool`] | per-shard keep-alive connection pool with connect/read deadlines |
//! | [`health`] | per-shard consecutive-failure state machine; degraded shards are skipped, probes re-admit them |
//! | [`scatter`](mod@scatter) | lanes-budgeted parallel fan-out and hedged retries for straggler shards |
//! | [`merge`] | union/rank merge of shard answers (estimate-descending, id-ascending — the global [`lshe_core::ShardedRanked`] order) |
//! | [`frontend`] | the coordinator HTTP server: `/query` `/topk` `/batch` `/insert` `/remove` `/commit` `/reload` `/stats` `/health` `/shutdown` |
//!
//! ## Why the answers match the single process bit-for-bit
//!
//! `IndexContainer::split_with` builds each shard file with the *same*
//! per-shard ensemble construction `open_index_sharded` performs, and the
//! server's JSON layer renders `f64` estimates at shortest-round-trip
//! precision — so the coordinator can forward query bodies verbatim,
//! merge the shard responses' already-ranked hit lists, and re-render,
//! producing exactly the hits (ids, estimates, order) the one-process
//! `--shards N` server would have produced.
//!
//! ## Topology
//!
//! ```text
//! client ──► coordinator (this crate) ──► shard 0  (lshe serve --shard-id 0)
//!                  │  scatter/gather  ──► shard 1  (lshe serve --shard-id 1)
//!                  │  hedged retries  ──► …
//!                  └─ id % N routing  ──► shard N-1
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod frontend;
pub mod health;
pub mod merge;
pub mod placement;
pub mod pool;
pub mod scatter;

pub use frontend::{start, ClusterConfig, ClusterHandle};
pub use health::{HealthState, DEGRADE_AFTER};
pub use placement::shard_of;
pub use pool::ConnPool;
pub use scatter::{scatter, CallOutcome};
