//! Deterministic domain→shard placement.
//!
//! One function, used by every layer that must agree on where a domain
//! lives: `lshe split` when it partitions a container into shard files,
//! the coordinator when it routes `/insert` and `/remove`, and (by
//! construction) `lshe_core::ShardedEnsemble::try_insert`, which routes
//! live inserts to `id % num_shards` in the single-process topology.
//!
//! For the dense ids a fresh `IndexContainer::build` assigns (0..n), the
//! modulus also coincides with the positional round-robin
//! `ShardedEnsemble::build_from_parts` distributes sorted-by-id entries
//! with — which is what makes a split-file cluster answer bit-identically
//! to the one-process `--shards N` server over the same corpus.

/// The shard that owns domain `id` in an `num_shards`-way cluster.
///
/// # Panics
/// Panics if `num_shards == 0`.
#[must_use]
pub fn shard_of(id: u32, num_shards: usize) -> usize {
    assert!(num_shards > 0, "a cluster has at least one shard");
    id as usize % num_shards
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modular_and_total() {
        for n in 1..6 {
            let mut counts = vec![0usize; n];
            for id in 0..1000u32 {
                let s = shard_of(id, n);
                assert!(s < n);
                assert_eq!(s, id as usize % n);
                counts[s] += 1;
            }
            // Dense ids spread evenly.
            assert!(counts.iter().all(|&c| c >= 1000 / n - 1));
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = shard_of(0, 0);
    }
}
