//! A minimal blocking HTTP/1.1 keep-alive client for driving an
//! `lshe-serve` instance over loopback — and the transport the
//! `lshe-cluster` coordinator scatters shard calls over.
//!
//! Two API levels share one framing implementation:
//!
//! - The `try_*` methods return typed [`ClientError`]s and honour
//!   explicit connect/read deadlines — a dead or wedged peer yields a
//!   clean [`ClientError::Timeout`] instead of blocking forever. The
//!   coordinator (and any test that exercises failure paths) uses these.
//! - The panicking convenience methods ([`connect`](HttpClient::connect),
//!   [`request`](HttpClient::request), [`get`](HttpClient::get),
//!   [`post`](HttpClient::post), …) wrap them for load tests, benches,
//!   examples, and CI smoke probes, where a broken exchange must fail
//!   loudly rather than masquerade as a fast one.

use crate::json::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Default read timeout for responses: generous enough for debug-mode
/// servers under load, finite so a hung server fails the caller.
const RESPONSE_TIMEOUT: Duration = Duration::from_secs(30);

/// Default connect timeout for the panicking constructor.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

/// Typed transport/framing failures from the `try_*` client methods.
#[derive(Debug)]
pub enum ClientError {
    /// The TCP connection could not be established within the deadline.
    Connect(std::io::Error),
    /// The peer did not produce (or accept) bytes within the read timeout.
    Timeout,
    /// Transport failure mid-exchange (reset, closed, short read).
    Io(std::io::Error),
    /// The peer's bytes do not parse as an HTTP/1.1 response.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Connect(e) => write!(f, "connect failed: {e}"),
            Self::Timeout => write!(f, "timed out waiting for response"),
            Self::Io(e) => write!(f, "transport error: {e}"),
            Self::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Maps an I/O error on an established connection: read-timeout kinds
/// become [`ClientError::Timeout`], everything else stays transport.
fn io_err(e: std::io::Error) -> ClientError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ClientError::Timeout,
        _ => ClientError::Io(e),
    }
}

/// One keep-alive connection to an `lshe-serve` instance.
pub struct HttpClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    /// `Retry-After` (seconds) from the most recent response, when the
    /// server sent one — how a draining peer says "come back later".
    last_retry_after: Option<u64>,
}

impl HttpClient {
    /// Connects with `TCP_NODELAY`, a 10 s connect timeout, and a 30 s
    /// read timeout.
    ///
    /// # Panics
    /// Panics if the connection cannot be established or configured.
    #[must_use]
    pub fn connect(addr: SocketAddr) -> Self {
        Self::try_connect(addr, CONNECT_TIMEOUT, RESPONSE_TIMEOUT).expect("connect to lshe-serve")
    }

    /// Connects with explicit deadlines: the TCP handshake must complete
    /// within `connect_timeout`, and every subsequent read returns
    /// [`ClientError::Timeout`] after `read_timeout` without bytes.
    ///
    /// # Errors
    /// [`ClientError::Connect`] when the peer is unreachable or the
    /// handshake exceeds the deadline; [`ClientError::Io`] if the socket
    /// cannot be configured.
    pub fn try_connect(
        addr: SocketAddr,
        connect_timeout: Duration,
        read_timeout: Duration,
    ) -> Result<Self, ClientError> {
        let stream =
            TcpStream::connect_timeout(&addr, connect_timeout).map_err(ClientError::Connect)?;
        stream.set_nodelay(true).map_err(ClientError::Io)?;
        stream
            .set_read_timeout(Some(read_timeout))
            .map_err(ClientError::Io)?;
        let reader = BufReader::new(stream.try_clone().map_err(ClientError::Io)?);
        Ok(Self {
            stream,
            reader,
            last_retry_after: None,
        })
    }

    /// The `Retry-After` header (seconds) of the most recently read
    /// response, if any. A 503 with `Retry-After` marks a draining peer
    /// (retry elsewhere / later); a 503 without one is a hard failure.
    #[must_use]
    pub fn last_retry_after(&self) -> Option<u64> {
        self.last_retry_after
    }

    /// Changes the read deadline on the live connection (both the buffered
    /// reader and the raw stream share one socket).
    ///
    /// # Errors
    /// [`ClientError::Io`] if the socket option cannot be set.
    pub fn set_read_timeout(&mut self, read_timeout: Duration) -> Result<(), ClientError> {
        self.stream
            .set_read_timeout(Some(read_timeout))
            .map_err(ClientError::Io)
    }

    /// Sends one request and reads one response; the connection stays
    /// open. Returns `(status, body)`.
    ///
    /// # Panics
    /// Panics on transport failure or unparseable response framing.
    pub fn request(&mut self, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
        self.try_request(method, path, body).expect("http exchange")
    }

    /// Sends one request and reads one response, with typed failures.
    ///
    /// # Errors
    /// Any [`ClientError`]; the connection must be considered dead after
    /// an error (a half-read response cannot be resynchronised).
    pub fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), ClientError> {
        self.try_send(method, path, body)?;
        self.try_read_response()
    }

    /// Sends one request WITHOUT reading the response — the pipelining
    /// half of [`request`](Self::request). Pair each send with one later
    /// [`read_response`](Self::read_response); the server answers
    /// pipelined requests strictly in order.
    ///
    /// # Panics
    /// Panics on transport failure.
    pub fn send(&mut self, method: &str, path: &str, body: Option<&str>) {
        self.try_send(method, path, body).expect("send request");
    }

    /// Sends one request without reading the response, with typed
    /// failures.
    ///
    /// # Errors
    /// [`ClientError::Io`] / [`ClientError::Timeout`] on transport
    /// failure.
    pub fn try_send(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(), ClientError> {
        let mut raw = format!("{method} {path} HTTP/1.1\r\nhost: lshe\r\n");
        if let Some(body) = body {
            raw.push_str(&format!("content-length: {}\r\n", body.len()));
        }
        raw.push_str("\r\n");
        if let Some(body) = body {
            raw.push_str(body);
        }
        self.stream.write_all(raw.as_bytes()).map_err(io_err)
    }

    /// Reads one response off the connection. Returns `(status, body)`.
    ///
    /// # Panics
    /// Panics on transport failure or unparseable response framing.
    pub fn read_response(&mut self) -> (u16, String) {
        self.try_read_response().expect("read response")
    }

    /// Reads one response off the connection, with typed failures.
    ///
    /// # Errors
    /// [`ClientError::Timeout`] when the read deadline passes without a
    /// complete response, [`ClientError::Io`] on transport failure,
    /// [`ClientError::Protocol`] on unparseable framing.
    pub fn try_read_response(&mut self) -> Result<(u16, String), ClientError> {
        let mut status_line = String::new();
        let n = self.reader.read_line(&mut status_line).map_err(io_err)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before response",
            )));
        }
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("bad status line: {status_line:?}")))?;
        let mut content_length = 0usize;
        let mut retry_after = None;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).map_err(io_err)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            let lower = line.to_ascii_lowercase();
            if let Some(v) = lower.strip_prefix("content-length:") {
                content_length = v
                    .trim()
                    .parse()
                    .map_err(|_| ClientError::Protocol(format!("bad content-length: {line:?}")))?;
            } else if let Some(v) = lower.strip_prefix("retry-after:") {
                retry_after = v.trim().parse::<u64>().ok();
            }
        }
        self.last_retry_after = retry_after;
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).map_err(io_err)?;
        String::from_utf8(body)
            .map(|body| (status, body))
            .map_err(|e| ClientError::Protocol(format!("non-utf8 body: {e}")))
    }

    /// `GET path`, response body parsed as JSON.
    ///
    /// # Panics
    /// As [`Self::request`], plus on a non-JSON body.
    pub fn get(&mut self, path: &str) -> (u16, Json) {
        let (status, body) = self.request("GET", path, None);
        let json = Json::parse(&body).unwrap_or_else(|e| panic!("bad JSON ({e}): {body}"));
        (status, json)
    }

    /// `POST path` with a body, response body parsed as JSON.
    ///
    /// # Panics
    /// As [`Self::request`], plus on a non-JSON body.
    pub fn post(&mut self, path: &str, body: &str) -> (u16, Json) {
        let (status, body) = self.request("POST", path, Some(body));
        let json = Json::parse(&body).unwrap_or_else(|e| panic!("bad JSON ({e}): {body}"));
        (status, json)
    }
}
