//! A minimal blocking HTTP/1.1 keep-alive client for driving an
//! `lshe-serve` instance over loopback.
//!
//! This is deliberately a *driver*, not a general-purpose client: the
//! integration tests, benches, examples, and CI smoke probes all need to
//! speak to the server over real TCP, and response framing should be
//! parsed in exactly one place. Methods panic on transport or framing
//! failures — in a load test or bench, a broken exchange must fail loudly
//! rather than masquerade as a fast one.

use crate::json::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Read timeout for responses: generous enough for debug-mode servers
/// under load, finite so a hung server fails the caller.
const RESPONSE_TIMEOUT: Duration = Duration::from_secs(30);

/// One keep-alive connection to an `lshe-serve` instance.
pub struct HttpClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl HttpClient {
    /// Connects with `TCP_NODELAY` and a 30 s read timeout.
    ///
    /// # Panics
    /// Panics if the connection cannot be established or configured.
    #[must_use]
    pub fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect to lshe-serve");
        stream.set_nodelay(true).expect("set TCP_NODELAY");
        stream
            .set_read_timeout(Some(RESPONSE_TIMEOUT))
            .expect("set read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Self { stream, reader }
    }

    /// Sends one request and reads one response; the connection stays
    /// open. Returns `(status, body)`.
    ///
    /// # Panics
    /// Panics on transport failure or unparseable response framing.
    pub fn request(&mut self, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
        self.send(method, path, body);
        self.read_response()
    }

    /// Sends one request WITHOUT reading the response — the pipelining
    /// half of [`request`](Self::request). Pair each send with one later
    /// [`read_response`](Self::read_response); the server answers
    /// pipelined requests strictly in order.
    ///
    /// # Panics
    /// Panics on transport failure.
    pub fn send(&mut self, method: &str, path: &str, body: Option<&str>) {
        let mut raw = format!("{method} {path} HTTP/1.1\r\nhost: lshe\r\n");
        if let Some(body) = body {
            raw.push_str(&format!("content-length: {}\r\n", body.len()));
        }
        raw.push_str("\r\n");
        if let Some(body) = body {
            raw.push_str(body);
        }
        self.stream.write_all(raw.as_bytes()).expect("send request");
    }

    /// Reads one response off the connection. Returns `(status, body)`.
    ///
    /// # Panics
    /// Panics on transport failure or unparseable response framing.
    pub fn read_response(&mut self) -> (u16, String) {
        let mut status_line = String::new();
        self.reader
            .read_line(&mut status_line)
            .expect("read status line");
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line: {status_line:?}"));
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("read header");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().expect("content-length value");
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("read body");
        (status, String::from_utf8(body).expect("utf8 body"))
    }

    /// `GET path`, response body parsed as JSON.
    ///
    /// # Panics
    /// As [`Self::request`], plus on a non-JSON body.
    pub fn get(&mut self, path: &str) -> (u16, Json) {
        let (status, body) = self.request("GET", path, None);
        let json = Json::parse(&body).unwrap_or_else(|e| panic!("bad JSON ({e}): {body}"));
        (status, json)
    }

    /// `POST path` with a body, response body parsed as JSON.
    ///
    /// # Panics
    /// As [`Self::request`], plus on a non-JSON body.
    pub fn post(&mut self, path: &str, body: &str) -> (u16, Json) {
        let (status, body) = self.request("POST", path, Some(body));
        let json = Json::parse(&body).unwrap_or_else(|e| panic!("bad JSON ({e}): {body}"));
        (status, json)
    }
}
