//! A thread-safe LRU cache for query results.
//!
//! Repeated domain-search queries are common in practice (dashboards,
//! retried crawls, popular tables), and an LSH Ensemble query is pure: the
//! same (domain, query size, threshold, k) against the same index
//! snapshot always yields the same hits. The server therefore memoises
//! results keyed on a digest of the query's *raw domain hashes* — taken
//! before MinHash sketching, so a cache hit skips the sketch entirely —
//! with hit/miss counters exposed on `/stats`.
//!
//! The implementation is a classic `HashMap` + intrusive doubly-linked
//! list over a slab of nodes, giving O(1) lookup, insert, touch, and
//! eviction — hand-rolled because the image has no crates.io access.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cache key for one containment query. `generation` ties entries to an
/// index snapshot so a hot reload can never serve stale results.
///
/// EVERY request field that shapes the response must be part of the key:
/// the query mode (`k` distinguishes top-k from threshold, with the
/// unused threshold canonicalised by the caller), and the per-request
/// `debug` flag — a cached non-debug response must never answer a debug
/// request, nor the reverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryKey {
    /// FNV-1a digest of the query domain's raw (pre-sketch) hash set.
    pub digest: u64,
    /// Query-domain cardinality.
    pub query_size: u64,
    /// Threshold bits (`f64::to_bits`; NaN never reaches the cache).
    pub threshold_bits: u64,
    /// Top-k parameter (0 for threshold search).
    pub k: u32,
    /// Whether the request asked for per-query debug stats.
    pub debug: bool,
    /// Engine snapshot generation the result was computed against.
    pub generation: u64,
}

/// FNV-1a over the little-endian bytes of a `u64` slice (domain hash
/// sets and MinHash signature slots alike).
#[must_use]
pub fn signature_digest(slots: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &slot in slots {
        for b in slot.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Monotonically-true counters snapshot for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to be computed.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Configured capacity (0 = caching disabled).
    pub capacity: usize,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 when nothing was looked up yet.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

#[derive(Debug)]
struct Inner<K, V> {
    map: HashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    /// Most-recently-used node index, or [`NIL`].
    head: usize,
    /// Least-recently-used node index, or [`NIL`].
    tail: usize,
    /// Recycled slab slots.
    free: Vec<usize>,
}

impl<K: Eq + Hash + Clone, V> Inner<K, V> {
    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next].prev = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

/// A mutex-guarded LRU map with atomic hit/miss counters.
#[derive(Debug)]
pub struct LruCache<K, V> {
    inner: Mutex<Inner<K, V>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries. Capacity 0
    /// disables storage entirely (lookups still count as misses, so the
    /// hit-rate metric stays meaningful).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::with_capacity(capacity.min(4096)),
                nodes: Vec::with_capacity(capacity.min(4096)),
                head: NIL,
                tail: NIL,
                free: Vec::new(),
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, marking it most-recently-used on a hit and counting
    /// hit/miss either way.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut inner = self.inner.lock().expect("cache poisoned");
        if let Some(&idx) = inner.map.get(key) {
            inner.unlink(idx);
            inner.push_front(idx);
            self.hits.fetch_add(1, Ordering::Relaxed);
            Some(inner.nodes[idx].value.clone())
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry when at capacity.
    pub fn insert(&self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache poisoned");
        if let Some(&idx) = inner.map.get(&key) {
            inner.nodes[idx].value = value;
            inner.unlink(idx);
            inner.push_front(idx);
            return;
        }
        if inner.map.len() >= self.capacity {
            let lru = inner.tail;
            inner.unlink(lru);
            let old_key = inner.nodes[lru].key.clone();
            inner.map.remove(&old_key);
            inner.free.push(lru);
        }
        let idx = match inner.free.pop() {
            Some(slot) => {
                inner.nodes[slot].key = key.clone();
                inner.nodes[slot].value = value;
                slot
            }
            None => {
                inner.nodes.push(Node {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                inner.nodes.len() - 1
            }
        };
        inner.map.insert(key, idx);
        inner.push_front(idx);
    }

    /// Drops every entry (hit/miss counters are preserved — they describe
    /// traffic, not contents). Called on index reload.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("cache poisoned");
        inner.map.clear();
        inner.nodes.clear();
        inner.free.clear();
        inner.head = NIL;
        inner.tail = NIL;
    }

    /// Counters + occupancy snapshot.
    pub fn stats(&self) -> CacheStats {
        let entries = self.inner.lock().expect("cache poisoned").map.len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_accounting() {
        let cache: LruCache<u32, String> = LruCache::new(4);
        assert_eq!(cache.get(&1), None);
        cache.insert(1, "one".into());
        assert_eq!(cache.get(&1).as_deref(), Some("one"));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_order() {
        let cache: LruCache<u32, u32> = LruCache::new(3);
        for i in 0..3 {
            cache.insert(i, i * 10);
        }
        // Touch 0 so it becomes MRU; inserting 3 must evict 1 (the LRU).
        assert!(cache.get(&0).is_some());
        cache.insert(3, 30);
        assert_eq!(cache.get(&1), None, "LRU entry should be evicted");
        assert_eq!(cache.get(&0), Some(0));
        assert_eq!(cache.get(&2), Some(20));
        assert_eq!(cache.get(&3), Some(30));
        assert_eq!(cache.stats().entries, 3);
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let cache: LruCache<u32, u32> = LruCache::new(2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        cache.insert(1, 11); // refresh → 2 is now LRU
        cache.insert(3, 30);
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.get(&1), Some(11));
        assert_eq!(cache.get(&3), Some(30));
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache: LruCache<u32, u32> = LruCache::new(0);
        cache.insert(1, 10);
        assert_eq!(cache.get(&1), None);
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.misses), (0, 1));
    }

    #[test]
    fn clear_keeps_counters() {
        let cache: LruCache<u32, u32> = LruCache::new(2);
        cache.insert(1, 10);
        let _ = cache.get(&1);
        cache.clear();
        assert_eq!(cache.get(&1), None);
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn slab_slots_recycle() {
        let cache: LruCache<u32, u32> = LruCache::new(2);
        for i in 0..100 {
            cache.insert(i, i);
        }
        let inner = cache.inner.lock().expect("lock");
        assert!(inner.nodes.len() <= 3, "slab grew: {}", inner.nodes.len());
    }

    #[test]
    fn digest_is_order_sensitive_and_stable() {
        let a = signature_digest(&[1, 2, 3]);
        let b = signature_digest(&[3, 2, 1]);
        assert_ne!(a, b);
        assert_eq!(a, signature_digest(&[1, 2, 3]));
        assert_ne!(signature_digest(&[]), signature_digest(&[0]));
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache: std::sync::Arc<LruCache<u64, u64>> = std::sync::Arc::new(LruCache::new(64));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let c = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        let k = (t * 37 + i) % 96;
                        if let Some(v) = c.get(&k) {
                            assert_eq!(v, k * 2);
                        } else {
                            c.insert(k, k * 2);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics");
        }
        assert!(cache.stats().entries <= 64);
    }
}
