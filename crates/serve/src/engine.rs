//! The engine layer: lock-free snapshot reads over a hot-reloadable index.
//!
//! A loaded [`IndexContainer`] is wrapped in an immutable [`Snapshot`]
//! behind an `Arc`. Readers clone the `Arc` (one brief `RwLock` read to
//! copy a pointer — never held across a query), so a `/reload` swaps in a
//! fresh snapshot without blocking or invalidating in-flight queries:
//! they finish against the snapshot they started with, exactly the
//! semantics a serving system wants.
//!
//! Every snapshot holds its backend as a `Box<dyn DomainIndex>` opened by
//! [`IndexContainer::open_index_sharded`]: unsharded ranked, unsharded
//! plain, and sharded (`--shards N`, the paper's §6.3 cluster topology)
//! all answer through the same trait — the engine never matches on a
//! concrete index type.

use crate::container::IndexContainer;
use lshe_core::{DomainIndex, Query, QueryError, SearchOutcome};
use lshe_minhash::{MinHasher, Signature};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One hit: domain id plus estimated containment when sketches are stored.
pub type Hit = (u32, Option<f64>);

/// Engine failures.
#[derive(Debug)]
pub enum EngineError {
    /// Filesystem problem while (re)loading.
    Io(std::io::Error),
    /// Corrupt or incompatible index file.
    Index(String),
    /// Invalid engine configuration (e.g. sharding an unranked index).
    Config(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Index(msg) => write!(f, "index error: {msg}"),
            Self::Config(msg) => write!(f, "config error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// An immutable view of one loaded index generation.
#[derive(Debug)]
pub struct Snapshot {
    container: IndexContainer,
    index: Box<dyn DomainIndex>,
    hasher: MinHasher,
    generation: u64,
    shards: usize,
}

impl Snapshot {
    fn new(container: IndexContainer, shards: usize, generation: u64) -> Result<Self, EngineError> {
        // The container owns backend selection: plain, ranked, or sharded
        // fan-out all come back as one trait object. Invalid shard
        // configurations are rejected here, at load time, with a typed
        // error — never a panic on the query path.
        let index = container
            .open_index_sharded(shards)
            .map_err(EngineError::Config)?;
        let hasher = MinHasher::new(container.num_perm());
        Ok(Self {
            container,
            index,
            hasher,
            generation,
            shards: shards.max(1),
        })
    }

    /// The underlying container.
    #[must_use]
    pub fn container(&self) -> &IndexContainer {
        &self.container
    }

    /// The query backend for this snapshot.
    #[must_use]
    pub fn index(&self) -> &dyn DomainIndex {
        &*self.index
    }

    /// The hasher queries must be sketched with (same permutation family
    /// and width as the index).
    #[must_use]
    pub fn hasher(&self) -> &MinHasher {
        &self.hasher
    }

    /// Snapshot generation (starts at 1, bumps on every reload).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Shard count (1 = unsharded single ensemble).
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// Answers one typed query through the snapshot's backend.
    ///
    /// # Errors
    /// [`QueryError`] for malformed or unsupported queries (the server
    /// maps these to HTTP 400).
    pub fn query(&self, query: &Query<'_>) -> Result<SearchOutcome, QueryError> {
        self.index.search(query)
    }

    /// Threshold search; thin wrapper over [`query`](Self::query) kept for
    /// direct-embedding callers and benches.
    ///
    /// # Panics
    /// Panics on malformed query inputs; use [`query`](Self::query) for
    /// typed errors.
    #[must_use]
    pub fn search(&self, sig: &Signature, query_size: u64, threshold: f64) -> Vec<Hit> {
        self.query(&Query::threshold(sig, threshold).with_size(query_size))
            .expect("valid threshold query")
            .into_pairs()
    }

    /// Top-k search (requires a ranked container); thin wrapper over
    /// [`query`](Self::query).
    ///
    /// # Errors
    /// A message when the index stores no sketches.
    pub fn top_k(&self, sig: &Signature, query_size: u64, k: usize) -> Result<Vec<Hit>, String> {
        self.query(&Query::top_k(sig, k).with_size(query_size))
            .map(SearchOutcome::into_pairs)
            .map_err(|e| e.to_string())
    }
}

/// The hot-reloadable engine: an atomic pointer to the current snapshot.
#[derive(Debug)]
pub struct Engine {
    current: RwLock<Arc<Snapshot>>,
    path: RwLock<Option<PathBuf>>,
    /// Serialises whole reloads (read → build → swap); without it two
    /// concurrent reloads could commit out of generation order and leave
    /// the older snapshot live.
    reload_lock: std::sync::Mutex<()>,
    shards: usize,
    generation: AtomicU64,
}

impl Engine {
    /// Loads an index file and builds generation 1.
    ///
    /// # Errors
    /// [`EngineError`] on I/O failure, a corrupt file, or an invalid
    /// shard configuration.
    pub fn load(path: &Path, shards: usize) -> Result<Self, EngineError> {
        let bytes = std::fs::read(path)?;
        let container = IndexContainer::from_bytes(&bytes)
            .map_err(|e| EngineError::Index(format!("{}: {e}", path.display())))?;
        let snapshot = Snapshot::new(container, shards, 1)?;
        Ok(Self {
            current: RwLock::new(Arc::new(snapshot)),
            path: RwLock::new(Some(path.to_owned())),
            reload_lock: std::sync::Mutex::new(()),
            shards,
            generation: AtomicU64::new(1),
        })
    }

    /// Wraps an in-memory container (tests, examples, benches). `/reload`
    /// then requires an explicit path.
    ///
    /// # Errors
    /// [`EngineError::Config`] on an invalid shard configuration.
    pub fn from_container(container: IndexContainer, shards: usize) -> Result<Self, EngineError> {
        let snapshot = Snapshot::new(container, shards, 1)?;
        Ok(Self {
            current: RwLock::new(Arc::new(snapshot)),
            path: RwLock::new(None),
            reload_lock: std::sync::Mutex::new(()),
            shards,
            generation: AtomicU64::new(1),
        })
    }

    /// The current snapshot. Cheap (one `Arc` clone under a read lock);
    /// hold it for the duration of one query so a concurrent reload cannot
    /// pull the index out from under you.
    #[must_use]
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read().expect("engine lock poisoned"))
    }

    /// Configured shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Reloads the index from `path` (or the path of the previous load)
    /// and atomically swaps it in as a new generation. In-flight queries
    /// keep their old snapshot; new queries see the new one.
    ///
    /// # Errors
    /// [`EngineError`] on I/O failure, a corrupt file, a missing path, or
    /// an invalid shard configuration — the old snapshot stays live in
    /// every error case.
    pub fn reload(&self, path: Option<&Path>) -> Result<Arc<Snapshot>, EngineError> {
        // One reload at a time: generation allocation, the path update, and
        // the snapshot swap must commit as a unit.
        let _guard = self.reload_lock.lock().expect("reload lock poisoned");
        let target = match path {
            Some(p) => p.to_owned(),
            None => self
                .path
                .read()
                .expect("engine lock poisoned")
                .clone()
                .ok_or_else(|| {
                    EngineError::Config(
                        "no index path on record; pass {\"path\": …} to /reload".into(),
                    )
                })?,
        };
        let bytes = std::fs::read(&target)?;
        let container = IndexContainer::from_bytes(&bytes)
            .map_err(|e| EngineError::Index(format!("{}: {e}", target.display())))?;
        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        let snapshot = Arc::new(Snapshot::new(container, self.shards, generation)?);
        *self.path.write().expect("engine lock poisoned") = Some(target);
        *self.current.write().expect("engine lock poisoned") = Arc::clone(&snapshot);
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshe_corpus::{Catalog, Domain, DomainMeta};

    fn catalog(n: usize) -> Catalog {
        let mut c = Catalog::new();
        let pool = MinHasher::synthetic_values(11, 20 * n);
        for k in 0..n {
            c.push(
                Domain::from_hashes(pool[..20 * (k + 1)].to_vec()),
                DomainMeta::new(format!("t{k}"), "col"),
            );
        }
        c
    }

    fn sig_for(cat: &Catalog, id: u32, num_perm: usize) -> (Signature, u64) {
        let hasher = MinHasher::new(num_perm);
        let d = cat.domain(id);
        (d.signature(&hasher), d.len() as u64)
    }

    #[test]
    fn unsharded_matches_container() {
        let cat = catalog(12);
        let container = IndexContainer::build(&cat, 4, true);
        let reference = IndexContainer::build(&cat, 4, true);
        let engine = Engine::from_container(container, 1).expect("engine");
        let snap = engine.snapshot();
        let (sig, q) = sig_for(&cat, 5, snap.container().num_perm());
        assert_eq!(snap.search(&sig, q, 0.7), reference.search(&sig, q, 0.7));
        assert_eq!(snap.num_shards(), 1);
    }

    #[test]
    fn sharded_finds_self_and_estimates() {
        let cat = catalog(24);
        let container = IndexContainer::build(&cat, 4, true);
        let engine = Engine::from_container(container, 3).expect("engine");
        let snap = engine.snapshot();
        assert_eq!(snap.num_shards(), 3);
        let (sig, q) = sig_for(&cat, 7, snap.container().num_perm());
        let hits = snap.search(&sig, q, 0.8);
        assert!(hits.iter().any(|&(id, _)| id == 7), "self hit missing");
        for (_, est) in &hits {
            let e = est.expect("sharded search attaches estimates");
            assert!((0.0..=1.0).contains(&e));
        }
        // Sorted by estimate, descending.
        for w in hits.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn sharding_requires_ranked_container() {
        let cat = catalog(10);
        let container = IndexContainer::build(&cat, 4, false);
        let err = Engine::from_container(container, 2).unwrap_err();
        assert!(matches!(err, EngineError::Config(_)), "{err}");
    }

    #[test]
    fn sharding_requires_enough_domains() {
        let cat = catalog(3);
        let container = IndexContainer::build(&cat, 2, true);
        let err = Engine::from_container(container, 8).unwrap_err();
        assert!(matches!(err, EngineError::Config(_)), "{err}");
    }

    #[test]
    fn reload_swaps_generation_and_preserves_old_snapshot() {
        let dir = std::env::temp_dir().join(format!("lshe_engine_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("idx.lshe");

        let small = IndexContainer::build(&catalog(6), 2, true);
        std::fs::write(&path, small.to_bytes()).expect("write");
        let engine = Engine::load(&path, 1).expect("load");
        let old = engine.snapshot();
        assert_eq!(old.generation(), 1);
        assert_eq!(old.container().len(), 6);

        let big = IndexContainer::build(&catalog(9), 2, true);
        std::fs::write(&path, big.to_bytes()).expect("write");
        let new = engine.reload(None).expect("reload");
        assert_eq!(new.generation(), 2);
        assert_eq!(new.container().len(), 9);
        // The old snapshot is still fully usable (in-flight queries).
        assert_eq!(old.container().len(), 6);
        assert_eq!(engine.snapshot().generation(), 2);

        // A failed reload leaves the current snapshot untouched.
        std::fs::write(&path, b"garbage").expect("write");
        assert!(engine.reload(None).is_err());
        assert_eq!(engine.snapshot().generation(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reload_without_path_on_memory_engine_errors() {
        let engine =
            Engine::from_container(IndexContainer::build(&catalog(5), 2, false), 1).expect("ok");
        assert!(matches!(
            engine.reload(None).unwrap_err(),
            EngineError::Config(_)
        ));
    }
}
