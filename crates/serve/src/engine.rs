//! The engine layer: lock-free snapshot reads over a hot-reloadable index.
//!
//! A loaded [`IndexContainer`] is wrapped in an immutable [`Snapshot`]
//! behind an `Arc`. Readers clone the `Arc` (one brief `RwLock` read to
//! copy a pointer — never held across a query), so a `/reload` swaps in a
//! fresh snapshot without blocking or invalidating in-flight queries:
//! they finish against the snapshot they started with, exactly the
//! semantics a serving system wants.
//!
//! Every snapshot holds its backend as a `Box<dyn DomainIndex>` opened by
//! [`IndexContainer::open_index_sharded`]: unsharded ranked, unsharded
//! plain, and sharded (`--shards N`, the paper's §6.3 cluster topology)
//! all answer through the same trait — the engine never matches on a
//! concrete index type.

use crate::container::{DeltaLog, DeltaOp, IndexContainer, IndexKind, LoadError};
use lshe_core::{CommitReport, DomainIndex, Query, QueryError, SearchOutcome};
use lshe_minhash::{MinHasher, Signature};
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// One hit: domain id plus estimated containment when sketches are stored.
pub type Hit = (u32, Option<f64>);

/// Engine failures.
#[derive(Debug)]
pub enum EngineError {
    /// Filesystem problem while (re)loading.
    Io(std::io::Error),
    /// Corrupt or incompatible index file.
    Index(String),
    /// Invalid engine configuration (e.g. sharding an unranked index).
    Config(String),
    /// A staged mutation was rejected (duplicate insert, unknown or
    /// double removal, width mismatch).
    Mutation(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Index(msg) => write!(f, "index error: {msg}"),
            Self::Config(msg) => write!(f, "config error: {msg}"),
            Self::Mutation(msg) => write!(f, "mutation error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<LoadError> for EngineError {
    fn from(e: LoadError) -> Self {
        match e {
            // Keep plain filesystem failures in the Io lane (callers map
            // it to exit codes); decode and checksum failures carry the
            // path and failing section in their rendered message.
            LoadError::Io { source, .. } => Self::Io(source),
            other => Self::Index(other.to_string()),
        }
    }
}

/// An immutable view of one loaded index generation.
#[derive(Debug)]
pub struct Snapshot {
    container: IndexContainer,
    index: Box<dyn DomainIndex>,
    hasher: MinHasher,
    generation: u64,
    shards: usize,
}

impl Snapshot {
    fn new(container: IndexContainer, shards: usize, generation: u64) -> Result<Self, EngineError> {
        // The container owns backend selection: plain, ranked, or sharded
        // fan-out all come back as one trait object. Invalid shard
        // configurations are rejected here, at load time, with a typed
        // error — never a panic on the query path.
        let index = container
            .open_index_sharded(shards)
            .map_err(EngineError::Config)?;
        let hasher = MinHasher::new(container.num_perm());
        Ok(Self {
            container,
            index,
            hasher,
            generation,
            shards: shards.max(1),
        })
    }

    /// The underlying container.
    #[must_use]
    pub fn container(&self) -> &IndexContainer {
        &self.container
    }

    /// The query backend for this snapshot.
    #[must_use]
    pub fn index(&self) -> &dyn DomainIndex {
        &*self.index
    }

    /// The hasher queries must be sketched with (same permutation family
    /// and width as the index).
    #[must_use]
    pub fn hasher(&self) -> &MinHasher {
        &self.hasher
    }

    /// Snapshot generation (starts at 1, bumps on every reload).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Shard count (1 = unsharded single ensemble).
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// Answers one typed query through the snapshot's backend.
    ///
    /// # Errors
    /// [`QueryError`] for malformed or unsupported queries (the server
    /// maps these to HTTP 400).
    pub fn query(&self, query: &Query<'_>) -> Result<SearchOutcome, QueryError> {
        self.index.search(query)
    }

    /// Threshold search; thin wrapper over [`query`](Self::query) kept for
    /// direct-embedding callers and benches.
    ///
    /// # Panics
    /// Panics on malformed query inputs; use [`query`](Self::query) for
    /// typed errors.
    #[must_use]
    pub fn search(&self, sig: &Signature, query_size: u64, threshold: f64) -> Vec<Hit> {
        self.query(&Query::threshold(sig, threshold).with_size(query_size))
            .expect("valid threshold query")
            .into_pairs()
    }

    /// Top-k search (requires a ranked container); thin wrapper over
    /// [`query`](Self::query).
    ///
    /// # Errors
    /// A message when the index stores no sketches.
    pub fn top_k(&self, sig: &Signature, query_size: u64, k: usize) -> Result<Vec<Hit>, String> {
        self.query(&Query::top_k(sig, k).with_size(query_size))
            .map(SearchOutcome::into_pairs)
            .map_err(|e| e.to_string())
    }
}

/// Staged (uncommitted) mutations: the ops in arrival order plus the
/// bookkeeping that validates new stagings against the net effect so far.
#[derive(Debug, Default)]
struct Pending {
    /// Every staged op, in arrival order (replayed verbatim on commit).
    ops: Vec<DeltaOp>,
    /// Ids inserted in this batch and not since removed.
    staged_inserts: HashSet<u32>,
    /// Committed ids removed in this batch.
    staged_removes: HashSet<u32>,
    /// Next id to hand out. Monotone across commits and reloads, so a
    /// staged insert can never collide with an id that later appears.
    next_id: u32,
}

/// Counts of currently staged mutations, as reported on `/stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StagedCounts {
    /// Staged inserts awaiting commit (net of cancelled ones).
    pub inserts: usize,
    /// Staged removes awaiting commit.
    pub removes: usize,
}

/// What one [`Engine::commit_staged`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommitOutcome {
    /// Ops applied into the new snapshot (0 = nothing was staged and no
    /// swap happened).
    pub applied: usize,
    /// The index-level commit report (staged inserts folded, rebalanced?).
    pub report: CommitReport,
}

/// The hot-reloadable engine: an atomic pointer to the current snapshot.
#[derive(Debug)]
pub struct Engine {
    current: RwLock<Arc<Snapshot>>,
    path: RwLock<Option<PathBuf>>,
    /// Serialises whole reloads (read → build → swap); without it two
    /// concurrent reloads could commit out of generation order and leave
    /// the older snapshot live.
    reload_lock: std::sync::Mutex<()>,
    shards: usize,
    generation: AtomicU64,
    /// Generation produced by the last [`compact`](Self::compact) in this
    /// process (0 = no compaction since boot) — surfaced on `/stats`.
    last_compaction: AtomicU64,
    /// Staged live mutations, guarded separately from the snapshot so
    /// staging never blocks queries.
    pending: Mutex<Pending>,
}

impl Engine {
    /// Loads an index file and builds generation 1. When a `<path>.delta`
    /// sidecar exists, its committed batches (the runs of ops closed by a
    /// [`DeltaOp::Commit`] marker) are replayed and re-sealed into the
    /// exact segment stack that was acknowledged before the restart, and
    /// the still-staged tail after the last marker is replayed into the
    /// staging area — a restart loses nothing.
    ///
    /// # Errors
    /// [`EngineError`] on I/O failure, a corrupt file, an invalid shard
    /// configuration, or a corrupt/torn delta log (typed, never a panic).
    pub fn load(path: &Path, shards: usize) -> Result<Self, EngineError> {
        let mut container = IndexContainer::load(path)?;
        let log = DeltaLog::sidecar(path);
        let (mark, ops) = log
            .read_with_mark()
            .map_err(|e| EngineError::Index(format!("{}: {e}", log.path().display())))?;
        let had_ops = !ops.is_empty();
        if had_ops && container.kind() == IndexKind::Mapped {
            // A packed file can never embody logged mutations, so a
            // non-empty sidecar means ops staged against some other
            // generation landed next to it — refuse loudly rather than
            // silently dropping them.
            return Err(EngineError::Index(format!(
                "{}: packed index has a non-empty delta sidecar ({}); packed files are \
                 read-only — re-pack from the mutated source container and remove the log",
                path.display(),
                log.path().display(),
            )));
        }
        container.reserve_next_id(mark);
        let (batches, tail) = Self::split_batches(ops);
        let fresh = Self::replay_committed(&mut container, batches)?;
        let pending = Self::replay_pending(&container, tail)?;
        if had_ops && fresh == 0 && pending.ops.is_empty() {
            // Every logged op is already embodied in the base file — the
            // crash window between a compaction's atomic rename and its
            // log clear. Retire the log now instead of re-skipping it on
            // every boot. (A log that materialised segments stays: it is
            // their only durable copy until the next compaction.)
            log.clear()?;
        }
        let snapshot = Snapshot::new(container, shards, 1)?;
        Ok(Self {
            current: RwLock::new(Arc::new(snapshot)),
            path: RwLock::new(Some(path.to_owned())),
            reload_lock: std::sync::Mutex::new(()),
            shards,
            generation: AtomicU64::new(1),
            last_compaction: AtomicU64::new(0),
            pending: Mutex::new(pending),
        })
    }

    /// Splits replayed log ops at [`DeltaOp::Commit`] markers: the closed
    /// batches (each with its allocator mark) and the still-staged tail.
    fn split_batches(ops: Vec<DeltaOp>) -> (Vec<(Vec<DeltaOp>, u32)>, Vec<DeltaOp>) {
        let mut batches = Vec::new();
        let mut run = Vec::new();
        for op in ops {
            if let DeltaOp::Commit { next_id } = op {
                batches.push((std::mem::take(&mut run), next_id));
            } else {
                run.push(op);
            }
        }
        (batches, run)
    }

    /// Re-applies committed batches onto a freshly loaded base, sealing
    /// one segment per non-embodied batch — bit-identical to the segments
    /// the original commits built, because each batch replays the same ops
    /// in the same order through the same seal. Replay is idempotent: a
    /// compaction persists the folded base *before* clearing the log, so a
    /// crash in between leaves batches the base already embodies — those
    /// skip whole (an insert whose exact record is present, a removal
    /// whose id is absent) and seal nothing. Returns how many ops actually
    /// applied.
    fn replay_committed(
        container: &mut IndexContainer,
        batches: Vec<(Vec<DeltaOp>, u32)>,
    ) -> Result<usize, EngineError> {
        let mut fresh = 0usize;
        for (ops, mark) in batches {
            let mut batch: Vec<DeltaOp> = Vec::with_capacity(ops.len());
            for op in ops {
                match &op {
                    DeltaOp::Insert { record, .. } => {
                        if let Some(existing) = container.record(record.id) {
                            if existing == record {
                                continue; // already embodied by a compaction
                            }
                            return Err(EngineError::Index(format!(
                                "delta log replays committed insert of id {} with \
                                 different provenance",
                                record.id
                            )));
                        }
                        batch.push(op);
                    }
                    DeltaOp::Remove { id } => {
                        let staged_here = batch.iter().any(
                            |b| matches!(b, DeltaOp::Insert { record, .. } if record.id == *id),
                        );
                        if container.record(*id).is_none() && !staged_here {
                            continue; // already embodied by a compaction
                        }
                        batch.push(op);
                    }
                    DeltaOp::Commit { .. } => unreachable!("split_batches consumed markers"),
                }
            }
            if !batch.is_empty() {
                container
                    .apply(&batch)
                    .map_err(|e| EngineError::Index(format!("delta log replay: {e}")))?;
                container.commit_mutations();
                fresh += batch.len();
            }
            container.reserve_next_id(mark);
        }
        Ok(fresh)
    }

    /// Wraps an in-memory container (tests, examples, benches). `/reload`
    /// then requires an explicit path, and staged mutations live only in
    /// memory (no delta log to replay).
    ///
    /// # Errors
    /// [`EngineError::Config`] on an invalid shard configuration.
    pub fn from_container(container: IndexContainer, shards: usize) -> Result<Self, EngineError> {
        let next_id = container.next_id();
        let snapshot = Snapshot::new(container, shards, 1)?;
        Ok(Self {
            current: RwLock::new(Arc::new(snapshot)),
            path: RwLock::new(None),
            reload_lock: std::sync::Mutex::new(()),
            shards,
            generation: AtomicU64::new(1),
            last_compaction: AtomicU64::new(0),
            pending: Mutex::new(Pending {
                next_id,
                ..Pending::default()
            }),
        })
    }

    /// Rebuilds the staging bookkeeping from replayed delta-log ops,
    /// validating each against the container + the net staged effect.
    ///
    /// Replay is **idempotent**: a commit persists the base file (atomic
    /// rename) *before* clearing the log, so a crash in between leaves a
    /// log whose ops the base already embodies. Such ops — an insert
    /// whose exact record is present, a removal whose id is absent — are
    /// skipped rather than re-staged, and since a commit applies its
    /// whole batch atomically the log replays either entirely as staged
    /// or entirely as already-applied. An id collision with a *different*
    /// record is a genuine conflict and stays a typed error.
    fn replay_pending(
        container: &IndexContainer,
        ops: Vec<DeltaOp>,
    ) -> Result<Pending, EngineError> {
        let mut pending = Pending {
            next_id: container.next_id(),
            ..Pending::default()
        };
        for op in ops {
            match &op {
                DeltaOp::Insert { record, .. } => {
                    if let Some(existing) = container.record(record.id) {
                        if existing == record {
                            // Already committed (crash after rename,
                            // before log clear): ids stay allocated.
                            pending.next_id = pending.next_id.max(record.id + 1);
                            continue;
                        }
                        return Err(EngineError::Index(format!(
                            "delta log replays insert of existing id {} with different provenance",
                            record.id
                        )));
                    }
                    if pending.staged_inserts.contains(&record.id) {
                        return Err(EngineError::Index(format!(
                            "delta log replays duplicate insert of id {}",
                            record.id
                        )));
                    }
                    pending.staged_inserts.insert(record.id);
                    pending.next_id = pending.next_id.max(record.id + 1);
                }
                DeltaOp::Remove { id } => {
                    if pending.staged_inserts.remove(id) {
                        // insert-then-remove before commit: cancels out,
                        // but both ops replay so the commit applies them
                        // in order.
                    } else if container.record(*id).is_some()
                        && !pending.staged_removes.contains(id)
                    {
                        pending.staged_removes.insert(*id);
                    } else {
                        // Already committed (the id is gone from the
                        // base): skip rather than wedge the boot.
                        continue;
                    }
                }
                DeltaOp::Commit { next_id } => {
                    // Markers never reach the staged tail (split_batches
                    // consumes them); tolerate one anyway by taking its
                    // allocator mark and dropping it.
                    pending.next_id = pending.next_id.max(*next_id);
                    continue;
                }
            }
            pending.ops.push(op);
        }
        Ok(pending)
    }

    /// The current snapshot. Cheap (one `Arc` clone under a read lock);
    /// hold it for the duration of one query so a concurrent reload cannot
    /// pull the index out from under you.
    #[must_use]
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read().expect("engine lock poisoned"))
    }

    /// Configured shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Stages one new domain for insertion: assigns it the next free id,
    /// appends the op to the delta log (when the engine is file-backed),
    /// and records it for the next [`commit_staged`](Self::commit_staged).
    /// The domain becomes queryable at commit, not before — in-flight and
    /// pre-commit queries keep a consistent snapshot.
    ///
    /// # Errors
    /// [`EngineError::Mutation`] on a signature width mismatch,
    /// [`EngineError::Io`] if the delta log cannot be appended (the op is
    /// then *not* staged).
    pub fn stage_insert(
        &self,
        table: String,
        column: String,
        size: u64,
        signature: Signature,
    ) -> Result<(u32, StagedCounts), EngineError> {
        self.stage_insert_as(table, column, size, signature, None)
    }

    /// Mutation guard for mapped snapshots: a packed v2 file is served in
    /// place and read-only, so staging against it is a typed refusal —
    /// before anything reaches the delta log.
    fn reject_mapped(snap: &Snapshot) -> Result<(), EngineError> {
        if snap.container().kind() == IndexKind::Mapped {
            return Err(EngineError::Mutation(
                "index is mmap-served and read-only; mutate the source .lshe container \
                 and re-pack"
                    .into(),
            ));
        }
        Ok(())
    }

    /// [`stage_insert`](Self::stage_insert) with an optional explicit id —
    /// the cluster path: the coordinator allocates cluster-wide ids (so
    /// shards cannot collide) and routes each insert to the shard the id
    /// places on. `None` keeps local allocation; an explicit id must be
    /// free (not committed, not staged), and the local allocator jumps
    /// past it so later local inserts cannot collide either.
    ///
    /// # Errors
    /// As [`stage_insert`](Self::stage_insert), plus
    /// [`EngineError::Mutation`] for an explicit id that is already in use.
    pub fn stage_insert_as(
        &self,
        table: String,
        column: String,
        size: u64,
        signature: Signature,
        explicit_id: Option<u32>,
    ) -> Result<(u32, StagedCounts), EngineError> {
        if size == 0 {
            return Err(EngineError::Mutation("domain size must be positive".into()));
        }
        // Pending lock FIRST, snapshot second: commit_staged swaps the
        // snapshot while holding the pending lock, so this order makes
        // validation and staging atomic with respect to commits — a
        // snapshot read before the lock could validate against a state a
        // concurrent commit already replaced.
        let mut pending = self.pending.lock().expect("pending lock poisoned");
        let snap = self.snapshot();
        Self::reject_mapped(&snap)?;
        let num_perm = snap.container().num_perm();
        if signature.len() != num_perm {
            return Err(EngineError::Mutation(format!(
                "signature width mismatch: domain has {}, index expects {num_perm}",
                signature.len()
            )));
        }
        let id = match explicit_id {
            None => pending.next_id,
            Some(id) => {
                if snap.container().record(id).is_some() || pending.staged_inserts.contains(&id) {
                    return Err(EngineError::Mutation(format!(
                        "domain id {id} is already in use"
                    )));
                }
                id
            }
        };
        let op = DeltaOp::Insert {
            record: crate::container::DomainRecord {
                id,
                size,
                table,
                column,
            },
            signature,
        };
        self.log_op(&op, pending.next_id.max(id + 1))?;
        pending.next_id = pending.next_id.max(id + 1);
        pending.staged_inserts.insert(id);
        pending.ops.push(op);
        Ok((id, Self::counts(&pending)))
    }

    /// The id the next locally-allocated insert would take. Monotone
    /// across commits and reloads; a cluster coordinator reads this from
    /// every shard (via `/stats`) and allocates from the maximum.
    #[must_use]
    pub fn next_id(&self) -> u32 {
        self.pending.lock().expect("pending lock poisoned").next_id
    }

    /// Stages the removal of a domain. Valid targets are committed ids
    /// (not yet staged for removal) and ids staged for insertion in this
    /// batch (insert-then-remove cancels out at commit). Double removal
    /// of the same id is a typed error.
    ///
    /// # Errors
    /// [`EngineError::Mutation`] for an unknown or already-removed id,
    /// [`EngineError::Io`] if the delta log cannot be appended.
    pub fn stage_remove(&self, id: u32) -> Result<StagedCounts, EngineError> {
        // Pending lock before the snapshot read — see stage_insert: a
        // concurrent commit swaps the snapshot under the pending lock, so
        // this order prevents validating against a replaced generation
        // (which could log an op that can never apply).
        let mut pending = self.pending.lock().expect("pending lock poisoned");
        let snap = self.snapshot();
        Self::reject_mapped(&snap)?;
        let committed = snap.container().record(id).is_some();
        let staged = pending.staged_inserts.contains(&id);
        if pending.staged_removes.contains(&id) {
            return Err(EngineError::Mutation(format!(
                "domain id {id} is already staged for removal"
            )));
        }
        if !committed && !staged {
            return Err(EngineError::Mutation(format!("unknown domain id {id}")));
        }
        let op = DeltaOp::Remove { id };
        self.log_op(&op, pending.next_id)?;
        if staged {
            pending.staged_inserts.remove(&id);
        } else {
            pending.staged_removes.insert(id);
        }
        pending.ops.push(op);
        Ok(Self::counts(&pending))
    }

    /// Currently staged mutation counts (for `/stats`).
    #[must_use]
    pub fn staged_counts(&self) -> StagedCounts {
        Self::counts(&self.pending.lock().expect("pending lock poisoned"))
    }

    /// Approximate heap bytes held by the staged (uncommitted) mutation
    /// backlog: each pending insert retains its full signature plus
    /// provenance until the next commit. Staged ops are not part of any
    /// snapshot index yet, so a memory report that only asked the index
    /// would under-count under live ingestion — `/stats` adds this in.
    #[must_use]
    pub fn staged_memory_bytes(&self) -> usize {
        let pending = self.pending.lock().expect("pending lock poisoned");
        pending
            .ops
            .iter()
            .map(|op| match op {
                DeltaOp::Insert { record, signature } => {
                    signature.len() * 8
                        + record.table.capacity()
                        + record.column.capacity()
                        + std::mem::size_of::<crate::container::DomainRecord>()
                }
                DeltaOp::Remove { .. } | DeltaOp::Commit { .. } => std::mem::size_of::<DeltaOp>(),
            })
            .sum()
    }

    fn counts(pending: &Pending) -> StagedCounts {
        StagedCounts {
            inserts: pending.staged_inserts.len(),
            removes: pending.staged_removes.len(),
        }
    }

    /// Appends one op to the delta log when the engine is file-backed.
    /// `next_id` is the allocator mark after the op — pinned into the log
    /// header if this append creates the file.
    fn log_op(&self, op: &DeltaOp, next_id: u32) -> Result<(), EngineError> {
        let path = self.path.read().expect("engine lock poisoned").clone();
        if let Some(path) = path {
            DeltaLog::sidecar(&path).append(op, next_id)?;
        }
        Ok(())
    }

    /// Commits every staged mutation as one new snapshot generation:
    /// copy-on-write — the current container is cloned, the ops applied,
    /// and the staged delta sealed into one immutable segment. The work is
    /// O(staged delta) and the durability step is a single appended
    /// [`DeltaOp::Commit`] marker — the base file is **not** rewritten;
    /// it catches up at the next [`compact`](Self::compact). In-flight
    /// queries keep their pre-commit snapshot; the query cache invalidates
    /// by generation.
    ///
    /// With nothing staged this is a no-op returning the live snapshot.
    ///
    /// # Errors
    /// [`EngineError::Mutation`] when an op no longer applies (e.g. the
    /// index was hot-reloaded to a file that already uses a staged id) —
    /// staged ops are kept so the operator can reload the original file
    /// and retry; [`EngineError::Io`] when the marker cannot be appended —
    /// the commit is then abandoned whole: no snapshot swap, staged ops
    /// kept, retry on the next `/commit` (the marker append is the commit
    /// point, so a re-issued commit is idempotent).
    pub fn commit_staged(&self) -> Result<(Arc<Snapshot>, CommitOutcome), EngineError> {
        let _guard = self.reload_lock.lock().expect("reload lock poisoned");
        let mut pending = self.pending.lock().expect("pending lock poisoned");
        if pending.ops.is_empty() {
            return Ok((self.snapshot(), CommitOutcome::default()));
        }
        let snap = self.snapshot();
        let mut container = snap.container().clone();
        container
            .apply(&pending.ops)
            .map_err(|e| EngineError::Mutation(e.to_string()))?;
        let report = container.commit_mutations();
        container.reserve_next_id(pending.next_id);
        let applied = pending.ops.len();

        // Durability: one marker closes the batch. Replaying the log at
        // boot re-seals the identical segment, so nothing else need touch
        // disk here — this is what keeps commit latency flat as the
        // corpus grows.
        self.log_op(
            &DeltaOp::Commit {
                next_id: pending.next_id,
            },
            pending.next_id,
        )?;

        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        let snapshot = Arc::new(Snapshot::new(container, self.shards, generation)?);
        *self.current.write().expect("engine lock poisoned") = Arc::clone(&snapshot);
        *pending = Pending {
            next_id: pending.next_id,
            ..Pending::default()
        };
        Ok((snapshot, CommitOutcome { applied, report }))
    }

    /// Compacts the index: seals anything still staged, folds every
    /// segment and tombstone into the base partitioning, persists the
    /// folded base (atomic tmp + rename), and retires the delta log. This
    /// is the only O(corpus) step in the mutation lifecycle, and it runs
    /// here — off the commit path — either on demand (`POST /compact`,
    /// `lshe compact`) or from the background merger once
    /// [`needs_compaction`](Self::needs_compaction) trips.
    ///
    /// # Errors
    /// [`EngineError::Mutation`] when a staged op no longer applies (ops
    /// kept, nothing swapped); [`EngineError::Io`] when the folded base
    /// cannot be persisted — the compaction is abandoned whole: no
    /// snapshot swap, delta log untouched, segments still queryable.
    pub fn compact(&self) -> Result<(Arc<Snapshot>, CommitOutcome), EngineError> {
        let _guard = self.reload_lock.lock().expect("reload lock poisoned");
        let mut pending = self.pending.lock().expect("pending lock poisoned");
        let snap = self.snapshot();
        Self::reject_mapped(&snap)?;
        let mut container = snap.container().clone();
        container
            .apply(&pending.ops)
            .map_err(|e| EngineError::Mutation(e.to_string()))?;
        let applied = pending.ops.len();
        let report = container.compact_index();
        container.reserve_next_id(pending.next_id);

        // Persist the folded base, then retire the delta log: the base
        // file now embodies every logged batch. Crash between the rename
        // and the clear is safe — the stale log replays as a no-op.
        let path = self.path.read().expect("engine lock poisoned").clone();
        if let Some(path) = &path {
            let tmp = path.with_extension("lshe.tmp");
            std::fs::write(&tmp, container.to_bytes())?;
            std::fs::rename(&tmp, path)?;
            DeltaLog::sidecar(path).clear()?;
        }

        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        let snapshot = Arc::new(Snapshot::new(container, self.shards, generation)?);
        *self.current.write().expect("engine lock poisoned") = Arc::clone(&snapshot);
        *pending = Pending {
            next_id: pending.next_id,
            ..Pending::default()
        };
        self.last_compaction.store(generation, Ordering::SeqCst);
        Ok((snapshot, CommitOutcome { applied, report }))
    }

    /// Executes one *partial* merge as a new snapshot generation: clones
    /// the live container (COW — readers keep their snapshot), folds
    /// only the segments the task names, persists the folded base
    /// (atomic tmp-then-rename), and retires the committed log prefix —
    /// the base now embodies every committed batch, so only the
    /// still-staged tail is rewritten back into the delta log. This is
    /// the maintenance thread's workhorse: O(folded entries) index work,
    /// concurrent with reads and staged mutations.
    ///
    /// [`MergeTask::Full`](lshe_core::MergeTask::Full) is routed to
    /// [`compact`](Self::compact) (which additionally folds staged ops).
    /// A task that changes nothing returns the live snapshot unswapped.
    ///
    /// # Errors
    /// [`EngineError::Mutation`] on a mapped (read-only) index;
    /// [`EngineError::Io`] when the folded base cannot be persisted — the
    /// merge is abandoned whole: no snapshot swap, delta log untouched.
    pub fn apply_merge(
        &self,
        task: &lshe_core::MergeTask,
    ) -> Result<(Arc<Snapshot>, lshe_core::MergeOutcome), EngineError> {
        if matches!(task, lshe_core::MergeTask::Full) {
            let before = self.segment_layout();
            let folded: usize = before.segments.iter().sum();
            let (snap, _) = self.compact()?;
            let stats = snap.container().segment_stats();
            return Ok((
                snap,
                lshe_core::MergeOutcome {
                    entries_folded: folded,
                    segments: stats.segments,
                    tombstones: stats.tombstones,
                },
            ));
        }
        let _guard = self.reload_lock.lock().expect("reload lock poisoned");
        // The pending lock is held across the log rewrite AND the swap: a
        // racing stage_insert appends to the same log under this lock, so
        // holding it is what makes "persist base, drop committed prefix,
        // keep staged tail" atomic against new appends.
        let pending = self.pending.lock().expect("pending lock poisoned");
        let snap = self.snapshot();
        Self::reject_mapped(&snap)?;
        let mut container = snap.container().clone();
        let outcome = container.apply_merge(task);
        if outcome.entries_folded == 0
            && container.segment_stats() == snap.container().segment_stats()
        {
            return Ok((snap, outcome));
        }
        container.reserve_next_id(pending.next_id);

        // Persist the merged base, then retire the committed log prefix.
        // Crash between the rename and the rewrite is safe: committed
        // batches are embodied in the base, so replaying the stale log is
        // a no-op, exactly like the compact() crash window.
        let path = self.path.read().expect("engine lock poisoned").clone();
        if let Some(path) = &path {
            let tmp = path.with_extension("lshe.tmp");
            std::fs::write(&tmp, container.to_bytes())?;
            std::fs::rename(&tmp, path)?;
            DeltaLog::sidecar(path).rewrite(&pending.ops, pending.next_id)?;
        }

        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        let snapshot = Arc::new(Snapshot::new(container, self.shards, generation)?);
        *self.current.write().expect("engine lock poisoned") = Arc::clone(&snapshot);
        Ok((snapshot, outcome))
    }

    /// Sealed-segment and tombstone counts of the live snapshot.
    #[must_use]
    pub fn segment_stats(&self) -> lshe_core::SegmentStats {
        self.snapshot().container().segment_stats()
    }

    /// The live snapshot's tier layout, for merge planning.
    #[must_use]
    pub fn segment_layout(&self) -> lshe_core::SegmentLayout {
        self.snapshot().container().segment_layout()
    }

    /// True when the live snapshot's segment stack or tombstone backlog
    /// crossed the default compaction thresholds
    /// ([`lshe_core::MAX_SEGMENTS`] / [`lshe_core::MAX_TOMBSTONE_RATIO`]).
    #[must_use]
    pub fn needs_compaction(&self) -> bool {
        self.needs_compaction_with(&lshe_core::CompactionThresholds::default())
    }

    /// [`needs_compaction`](Self::needs_compaction) against explicit
    /// (deployment-tuned) thresholds.
    #[must_use]
    pub fn needs_compaction_with(&self, thresholds: &lshe_core::CompactionThresholds) -> bool {
        let snap = self.snapshot();
        snap.container().kind() != IndexKind::Mapped
            && thresholds.exceeded(snap.container().segment_stats(), snap.container().len())
    }

    /// Generation created by the last [`compact`](Self::compact) in this
    /// process; 0 when none has run since boot.
    #[must_use]
    pub fn last_compaction(&self) -> u64 {
        self.last_compaction.load(Ordering::SeqCst)
    }

    /// Reloads the index from `path` (or the path of the previous load)
    /// and atomically swaps it in as a new generation. In-flight queries
    /// keep their old snapshot; new queries see the new one.
    ///
    /// # Errors
    /// [`EngineError`] on I/O failure, a corrupt file, a missing path, or
    /// an invalid shard configuration — the old snapshot stays live in
    /// every error case.
    pub fn reload(&self, path: Option<&Path>) -> Result<Arc<Snapshot>, EngineError> {
        // One reload at a time: generation allocation, the path update, and
        // the snapshot swap must commit as a unit.
        let _guard = self.reload_lock.lock().expect("reload lock poisoned");
        let target = match path {
            Some(p) => p.to_owned(),
            None => self
                .path
                .read()
                .expect("engine lock poisoned")
                .clone()
                .ok_or_else(|| {
                    EngineError::Config(
                        "no index path on record; pass {\"path\": …} to /reload".into(),
                    )
                })?,
        };
        let mut container = IndexContainer::load(&target)?;
        // The base file alone is the post-compaction state; committed
        // batches still live in the delta log and must replay too, or a
        // reload would silently roll back acknowledged commits. The tail
        // after the last marker stays in the log — the in-memory staging
        // area (which survives the reload below) is authoritative for it.
        if container.kind() != IndexKind::Mapped {
            let log = DeltaLog::sidecar(&target);
            let (mark, ops) = log
                .read_with_mark()
                .map_err(|e| EngineError::Index(format!("{}: {e}", log.path().display())))?;
            container.reserve_next_id(mark);
            let (batches, _tail) = Self::split_batches(ops);
            Self::replay_committed(&mut container, batches)?;
        }
        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        let snapshot = Arc::new(Snapshot::new(container, self.shards, generation)?);
        *self.path.write().expect("engine lock poisoned") = Some(target);
        *self.current.write().expect("engine lock poisoned") = Arc::clone(&snapshot);
        // Staged mutations survive a reload; keep the id allocator ahead
        // of whatever the reloaded file uses so staged inserts can only
        // conflict if the new file already claimed their exact ids (a
        // typed commit error, never a corruption).
        let mut pending = self.pending.lock().expect("pending lock poisoned");
        pending.next_id = pending.next_id.max(snapshot.container().next_id());
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lshe_corpus::{Catalog, Domain, DomainMeta};

    fn catalog(n: usize) -> Catalog {
        let mut c = Catalog::new();
        let pool = MinHasher::synthetic_values(11, 20 * n);
        for k in 0..n {
            c.push(
                Domain::from_hashes(pool[..20 * (k + 1)].to_vec()),
                DomainMeta::new(format!("t{k}"), "col"),
            );
        }
        c
    }

    fn sig_for(cat: &Catalog, id: u32, num_perm: usize) -> (Signature, u64) {
        let hasher = MinHasher::new(num_perm);
        let d = cat.domain(id);
        (d.signature(&hasher), d.len() as u64)
    }

    #[test]
    fn unsharded_matches_container() {
        let cat = catalog(12);
        let container = IndexContainer::build(&cat, 4, true);
        let reference = IndexContainer::build(&cat, 4, true);
        let engine = Engine::from_container(container, 1).expect("engine");
        let snap = engine.snapshot();
        let (sig, q) = sig_for(&cat, 5, snap.container().num_perm());
        assert_eq!(snap.search(&sig, q, 0.7), reference.search(&sig, q, 0.7));
        assert_eq!(snap.num_shards(), 1);
    }

    #[test]
    fn sharded_finds_self_and_estimates() {
        let cat = catalog(24);
        let container = IndexContainer::build(&cat, 4, true);
        let engine = Engine::from_container(container, 3).expect("engine");
        let snap = engine.snapshot();
        assert_eq!(snap.num_shards(), 3);
        let (sig, q) = sig_for(&cat, 7, snap.container().num_perm());
        let hits = snap.search(&sig, q, 0.8);
        assert!(hits.iter().any(|&(id, _)| id == 7), "self hit missing");
        for (_, est) in &hits {
            let e = est.expect("sharded search attaches estimates");
            assert!((0.0..=1.0).contains(&e));
        }
        // Sorted by estimate, descending.
        for w in hits.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn sharding_requires_ranked_container() {
        let cat = catalog(10);
        let container = IndexContainer::build(&cat, 4, false);
        let err = Engine::from_container(container, 2).unwrap_err();
        assert!(matches!(err, EngineError::Config(_)), "{err}");
    }

    #[test]
    fn sharding_requires_enough_domains() {
        let cat = catalog(3);
        let container = IndexContainer::build(&cat, 2, true);
        let err = Engine::from_container(container, 8).unwrap_err();
        assert!(matches!(err, EngineError::Config(_)), "{err}");
    }

    #[test]
    fn reload_swaps_generation_and_preserves_old_snapshot() {
        let dir = std::env::temp_dir().join(format!("lshe_engine_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("idx.lshe");

        let small = IndexContainer::build(&catalog(6), 2, true);
        std::fs::write(&path, small.to_bytes()).expect("write");
        let engine = Engine::load(&path, 1).expect("load");
        let old = engine.snapshot();
        assert_eq!(old.generation(), 1);
        assert_eq!(old.container().len(), 6);

        let big = IndexContainer::build(&catalog(9), 2, true);
        std::fs::write(&path, big.to_bytes()).expect("write");
        let new = engine.reload(None).expect("reload");
        assert_eq!(new.generation(), 2);
        assert_eq!(new.container().len(), 9);
        // The old snapshot is still fully usable (in-flight queries).
        assert_eq!(old.container().len(), 6);
        assert_eq!(engine.snapshot().generation(), 2);

        // A failed reload leaves the current snapshot untouched.
        std::fs::write(&path, b"garbage").expect("write");
        assert!(engine.reload(None).is_err());
        assert_eq!(engine.snapshot().generation(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn sig_of(values: std::ops::Range<u64>, num_perm: usize) -> (Signature, u64) {
        let hasher = MinHasher::new(num_perm);
        let vals: Vec<u64> = values.collect();
        (hasher.signature(vals.iter().copied()), vals.len() as u64)
    }

    #[test]
    fn staged_mutations_commit_into_a_new_generation() {
        let engine =
            Engine::from_container(IndexContainer::build(&catalog(10), 2, true), 1).expect("ok");
        let old = engine.snapshot();
        let (sig, q) = sig_of(50_000..50_040, old.container().num_perm());

        let (id, counts) = engine
            .stage_insert("live".into(), "col".into(), q, sig.clone())
            .expect("stage");
        assert_eq!(id, 10);
        assert_eq!(
            counts,
            StagedCounts {
                inserts: 1,
                removes: 0
            }
        );
        let counts = engine.stage_remove(3).expect("stage remove");
        assert_eq!(
            counts,
            StagedCounts {
                inserts: 1,
                removes: 1
            }
        );
        // Double remove is typed.
        assert!(matches!(
            engine.stage_remove(3),
            Err(EngineError::Mutation(_))
        ));
        // Unknown remove is typed.
        assert!(matches!(
            engine.stage_remove(500),
            Err(EngineError::Mutation(_))
        ));
        // Nothing visible pre-commit.
        assert!(engine.snapshot().search(&sig, q, 0.9).is_empty());
        assert_eq!(engine.snapshot().generation(), 1);

        let (snap, outcome) = engine.commit_staged().expect("commit");
        assert_eq!(outcome.applied, 2);
        assert_eq!(outcome.report.merged, 1);
        assert_eq!(snap.generation(), 2);
        assert_eq!(snap.container().len(), 10); // 10 − 1 + 1
        assert!(snap.search(&sig, q, 0.9).iter().any(|&(hit, _)| hit == id));
        assert!(snap.container().record(3).is_none());
        // Pre-commit snapshot is untouched (in-flight queries).
        assert!(old.container().record(3).is_some());
        assert!(old.search(&sig, q, 0.9).is_empty());
        assert_eq!(engine.staged_counts(), StagedCounts::default());

        // Empty commit: no-op, same generation.
        let (snap, outcome) = engine.commit_staged().expect("empty commit");
        assert_eq!(outcome.applied, 0);
        assert_eq!(snap.generation(), 2);

        // Insert-then-remove before commit cancels out.
        let (id2, _) = engine
            .stage_insert("gone".into(), "col".into(), q, sig.clone())
            .expect("stage");
        engine.stage_remove(id2).expect("remove staged insert");
        let (snap, outcome) = engine.commit_staged().expect("commit");
        assert_eq!(outcome.applied, 2);
        assert_eq!(snap.container().len(), 10);
        assert!(snap.container().record(id2).is_none());
        // Ids are never reused.
        let (id3, _) = engine
            .stage_insert("next".into(), "col".into(), q, sig)
            .expect("stage");
        assert!(id3 > id2);
    }

    #[test]
    fn delta_log_replays_across_restart() {
        let dir = std::env::temp_dir().join(format!("lshe_engine_delta_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("idx.lshe");
        std::fs::write(
            &path,
            IndexContainer::build(&catalog(8), 2, true).to_bytes(),
        )
        .expect("write");

        let (sig, q) = {
            let engine = Engine::load(&path, 1).expect("load");
            let (sig, q) = sig_of(70_000..70_030, engine.snapshot().container().num_perm());
            engine
                .stage_insert("durable".into(), "col".into(), q, sig.clone())
                .expect("stage");
            engine.stage_remove(2).expect("stage remove");
            // Engine dropped WITHOUT commit: ops live only in the log.
            (sig, q)
        };
        assert!(crate::container::DeltaLog::sidecar(&path).exists());

        // Restart: staged ops are replayed as staged (not yet visible)…
        let engine = Engine::load(&path, 1).expect("reload with delta");
        assert_eq!(
            engine.staged_counts(),
            StagedCounts {
                inserts: 1,
                removes: 1
            }
        );
        assert!(engine.snapshot().search(&sig, q, 0.9).is_empty());
        // …and commit exactly as they would have pre-restart. The commit
        // is marker-only: the base file on disk is untouched.
        let base_before = std::fs::read(&path).expect("base bytes");
        let (snap, outcome) = engine.commit_staged().expect("commit");
        assert_eq!(outcome.applied, 2);
        assert!(outcome.report.sealed);
        assert_eq!(outcome.report.segments, 1);
        assert_eq!(outcome.report.tombstones, 1);
        assert!(snap.search(&sig, q, 0.9).iter().any(|&(id, _)| id == 8));
        assert!(snap.container().record(2).is_none());
        assert_eq!(
            std::fs::read(&path).expect("base bytes"),
            base_before,
            "segmented commit must not rewrite the base file"
        );
        // The log persists (it carries the committed batch) and replays
        // the identical segment stack on the next boot.
        assert!(crate::container::DeltaLog::sidecar(&path).exists());
        let fresh = Engine::load(&path, 1).expect("load committed");
        assert_eq!(fresh.snapshot().container().len(), 8);
        assert_eq!(fresh.staged_counts(), StagedCounts::default());
        assert_eq!(
            fresh.snapshot().container().segment_stats(),
            snap.container().segment_stats()
        );
        assert!(fresh
            .snapshot()
            .search(&sig, q, 0.9)
            .iter()
            .any(|&(id, _)| id == 8));
        // Compaction folds the batch into the base and retires the log.
        let (folded, report) = fresh.compact().expect("compact");
        assert!(report.report.rebalanced);
        assert_eq!(folded.container().segment_stats(), Default::default());
        assert!(!crate::container::DeltaLog::sidecar(&path).exists());
        assert_eq!(fresh.last_compaction(), folded.generation());
        let after = Engine::load(&path, 1).expect("load compacted");
        assert_eq!(after.snapshot().container().len(), 8);
        assert!(after
            .snapshot()
            .search(&sig, q, 0.9)
            .iter()
            .any(|&(id, _)| id == 8));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn already_committed_delta_log_replays_idempotently() {
        // The crash window a compaction leaves open: folded base renamed
        // (ops embodied), process dies before the log clear. The stale
        // log must replay as a no-op and be retired — never wedge the
        // boot, never double-apply.
        let dir = std::env::temp_dir().join(format!("lshe_engine_stale_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("idx.lshe");
        std::fs::write(
            &path,
            IndexContainer::build(&catalog(7), 2, true).to_bytes(),
        )
        .expect("write");

        let engine = Engine::load(&path, 1).expect("load");
        let (sig, q) = sig_of(60_000..60_030, engine.snapshot().container().num_perm());
        engine
            .stage_insert("survivor".into(), "col".into(), q, sig.clone())
            .expect("stage");
        engine.stage_remove(2).expect("stage");
        engine.commit_staged().expect("commit");
        // Capture the log as committed (batch + marker), compact (which
        // clears it), then put the stale copy back — simulating a crash
        // between the base rename and the log clear.
        let log = crate::container::DeltaLog::sidecar(&path);
        let stale = std::fs::read(log.path()).expect("log bytes");
        engine.compact().expect("compact");
        assert!(!log.exists());
        std::fs::write(log.path(), &stale).expect("restore stale log");
        drop(engine);

        let engine = Engine::load(&path, 1).expect("boot over stale log");
        assert_eq!(engine.staged_counts(), StagedCounts::default());
        assert!(!log.exists(), "fully-applied log must be retired at load");
        let snap = engine.snapshot();
        assert_eq!(snap.container().len(), 7); // 7 − 1 + 1
        assert_eq!(
            snap.container().segment_stats(),
            Default::default(),
            "embodied batches must not re-seal segments"
        );
        assert!(snap.search(&sig, q, 0.9).iter().any(|&(id, _)| id == 7));
        assert!(snap.container().record(2).is_none());
        // The id allocator stays past the replayed insert's id.
        let (next, _) = engine
            .stage_insert("after".into(), "col".into(), q, sig)
            .expect("stage");
        assert_eq!(next, 8);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restart_never_reuses_a_removed_id() {
        // Removing the highest-id domain used to shrink `max(id) + 1`, so
        // a restart re-issued the removed id and stale references rebound
        // to a brand-new domain. The allocator mark now persists in the
        // commit marker, the v2 container trailer, and the log header.
        let dir = std::env::temp_dir().join(format!("lshe_engine_reuse_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("idx.lshe");
        std::fs::write(
            &path,
            IndexContainer::build(&catalog(6), 2, true).to_bytes(),
        )
        .expect("write");

        let engine = Engine::load(&path, 1).expect("load");
        assert_eq!(engine.next_id(), 6);
        engine.stage_remove(5).expect("stage remove of max id");
        engine.commit_staged().expect("commit");
        drop(engine);

        // Restart straight off the log (marker carries the mark).
        let engine = Engine::load(&path, 1).expect("restart");
        assert_eq!(engine.next_id(), 6, "removed id 5 must stay burned");
        // And off the compacted base (v2 trailer carries the mark).
        engine.compact().expect("compact");
        drop(engine);
        let engine = Engine::load(&path, 1).expect("restart after compact");
        assert_eq!(engine.next_id(), 6, "mark must survive compaction too");
        let (sig, q) = sig_of(40_000..40_020, engine.snapshot().container().num_perm());
        let (id, _) = engine
            .stage_insert("fresh".into(), "col".into(), q, sig)
            .expect("stage");
        assert_eq!(id, 6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_at_each_commit_stage_recovers_exactly_the_acked_state() {
        // Walk the commit path's crash points by reconstructing the log
        // the process would have left at each: (a) ops appended, no
        // marker — staged only, nothing acked as committed; (b) marker
        // appended — commit acked, replay must reproduce the segment;
        // (c) a marker torn mid-append — typed error, never a silent
        // half-commit.
        let dir = std::env::temp_dir().join(format!("lshe_engine_crash_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("idx.lshe");
        std::fs::write(
            &path,
            IndexContainer::build(&catalog(6), 2, true).to_bytes(),
        )
        .expect("write");

        let engine = Engine::load(&path, 1).expect("load");
        let (sig, q) = sig_of(45_000..45_030, engine.snapshot().container().num_perm());
        engine
            .stage_insert("acked".into(), "col".into(), q, sig.clone())
            .expect("stage");
        engine.stage_remove(1).expect("stage");
        let log = crate::container::DeltaLog::sidecar(&path);
        let staged_only = std::fs::read(log.path()).expect("log bytes");
        engine.commit_staged().expect("commit");
        let with_marker = std::fs::read(log.path()).expect("log bytes");
        drop(engine);

        // (a) Crash after the op appends, before the marker: the ops are
        // staged (durable, not yet queryable) — exactly what was acked.
        std::fs::write(log.path(), &staged_only).expect("restore");
        let engine = Engine::load(&path, 1).expect("boot (a)");
        assert_eq!(
            engine.staged_counts(),
            StagedCounts {
                inserts: 1,
                removes: 1
            }
        );
        assert!(engine.snapshot().search(&sig, q, 0.9).is_empty());
        assert_eq!(
            engine.snapshot().container().segment_stats(),
            Default::default()
        );
        drop(engine);

        // (b) Crash right after the marker append: the commit was acked,
        // so replay must surface it — sealed segment, tombstone, hits.
        std::fs::write(log.path(), &with_marker).expect("restore");
        let engine = Engine::load(&path, 1).expect("boot (b)");
        assert_eq!(engine.staged_counts(), StagedCounts::default());
        let stats = engine.snapshot().container().segment_stats();
        assert_eq!((stats.segments, stats.tombstones), (1, 1));
        assert!(engine
            .snapshot()
            .search(&sig, q, 0.9)
            .iter()
            .any(|&(id, _)| id == 6));
        assert!(engine.snapshot().container().record(1).is_none());
        drop(engine);

        // (c) Marker torn mid-append: typed Torn error at boot.
        for cut in 1..8 {
            std::fs::write(log.path(), &with_marker[..with_marker.len() - cut])
                .expect("tear marker");
            let err = Engine::load(&path, 1).unwrap_err();
            assert!(matches!(err, EngineError::Index(_)), "cut {cut}: {err}");
            assert!(err.to_string().contains("torn"), "cut {cut}: {err}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_delta_log_fails_load_with_typed_error() {
        let dir = std::env::temp_dir().join(format!("lshe_engine_torn_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("idx.lshe");
        std::fs::write(
            &path,
            IndexContainer::build(&catalog(6), 2, true).to_bytes(),
        )
        .expect("write");
        let engine = Engine::load(&path, 1).expect("load");
        let (sig, q) = sig_of(80_000..80_020, engine.snapshot().container().num_perm());
        engine
            .stage_insert("t".into(), "c".into(), q, sig)
            .expect("stage");
        drop(engine);
        // Tear the final entry.
        let log_path = crate::container::DeltaLog::sidecar(&path).path().to_owned();
        let bytes = std::fs::read(&log_path).expect("read log");
        std::fs::write(&log_path, &bytes[..bytes.len() - 3]).expect("tear");
        let err = Engine::load(&path, 1).unwrap_err();
        assert!(matches!(err, EngineError::Index(_)), "{err}");
        assert!(err.to_string().contains("torn"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reload_during_staging_keeps_ops_and_commits_after() {
        let dir = std::env::temp_dir().join(format!("lshe_engine_race_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("idx.lshe");
        std::fs::write(
            &path,
            IndexContainer::build(&catalog(9), 2, true).to_bytes(),
        )
        .expect("write");
        let engine = Engine::load(&path, 1).expect("load");
        let (sig, q) = sig_of(90_000..90_025, engine.snapshot().container().num_perm());
        let (id, _) = engine
            .stage_insert("racer".into(), "col".into(), q, sig.clone())
            .expect("stage");
        // Hot reload (same file) lands between staging and commit.
        engine.reload(None).expect("reload");
        assert_eq!(engine.snapshot().generation(), 2);
        assert_eq!(engine.staged_counts().inserts, 1, "staging survived");
        let (snap, outcome) = engine.commit_staged().expect("commit after reload");
        assert_eq!(outcome.applied, 1);
        assert_eq!(snap.generation(), 3);
        assert!(snap.search(&sig, q, 0.9).iter().any(|&(hit, _)| hit == id));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reload_without_path_on_memory_engine_errors() {
        let engine =
            Engine::from_container(IndexContainer::build(&catalog(5), 2, false), 1).expect("ok");
        assert!(matches!(
            engine.reload(None).unwrap_err(),
            EngineError::Config(_)
        ));
    }

    #[test]
    fn packed_index_serves_in_place_and_rejects_mutation() {
        let dir = std::env::temp_dir().join(format!("lshe_engine_packed_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let packed = dir.join("idx.lshepk");
        let cat = catalog(8);
        let source = IndexContainer::build(&cat, 2, true);
        source.pack_v2(&packed).expect("pack");

        let engine = Engine::load(&packed, 1).expect("load packed");
        let snap = engine.snapshot();
        assert_eq!(snap.container().kind(), crate::container::IndexKind::Mapped);

        // Served answers match the heap container it was packed from.
        let hasher = MinHasher::new(snap.container().num_perm());
        let sig = cat.domain(3).signature(&hasher);
        let hits = snap.search(&sig, 80, 0.7);
        assert_eq!(hits, source.search(&sig, 80, 0.7));
        assert!(hits.iter().any(|&(id, _)| id == 3));

        // Mutations are typed refusals before anything reaches a log.
        let err = engine
            .stage_insert("t".into(), "col".into(), 25, sig.clone())
            .unwrap_err();
        assert!(matches!(err, EngineError::Mutation(_)), "got {err}");
        assert!(err.to_string().contains("read-only"), "got {err}");
        let err = engine.stage_remove(0).unwrap_err();
        assert!(err.to_string().contains("read-only"), "got {err}");
        assert!(!DeltaLog::sidecar(&packed).exists(), "nothing was logged");
        drop(engine);

        // A stale non-empty delta sidecar next to a packed file is a
        // typed load failure, never silently dropped ops.
        let log = DeltaLog::sidecar(&packed);
        log.append(&DeltaOp::Remove { id: 0 }, 8).expect("append");
        let err = Engine::load(&packed, 1).unwrap_err();
        assert!(matches!(err, EngineError::Index(_)), "got {err}");
        assert!(err.to_string().contains("delta sidecar"), "got {err}");
        log.clear().expect("clear");

        // Hot reload crosses generations: v1 file in, packed file in.
        let v1 = dir.join("idx.lshe");
        std::fs::write(&v1, source.to_bytes()).expect("write v1");
        let engine = Engine::load(&v1, 1).expect("load v1");
        let new = engine.reload(Some(&packed)).expect("reload onto packed");
        assert_eq!(new.generation(), 2);
        assert_eq!(new.container().kind(), crate::container::IndexKind::Mapped);
        assert_eq!(new.search(&sig, 80, 0.7), source.search(&sig, 80, 0.7));
        std::fs::remove_dir_all(&dir).ok();
    }
}
