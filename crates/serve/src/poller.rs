//! OS readiness polling for the event-driven server core.
//!
//! The reactor needs one thing the standard library does not expose:
//! "block until any of these sockets is readable/writable". With no
//! crates.io access, this module declares the handful of C symbols the
//! platform libc already links into every Rust binary and builds a safe
//! facade over them:
//!
//! * **Linux** — `epoll` (O(ready) wakeups, the right shape for 10k+
//!   connections) plus an `eventfd`-based [`Waker`] so other threads can
//!   interrupt a blocked [`Poller::wait`].
//! * **other Unix** — `poll(2)` (O(registered) per wait, fine for the
//!   scale anything non-Linux runs here) plus a pipe-based [`Waker`].
//!
//! Everything is level-triggered: an event repeats every wait until the
//! condition is consumed, so a handler that processes only part of a
//! buffer is woken again rather than wedged — the simplest semantics to
//! keep correct, at the cost of requiring the reactor to deregister
//! write interest once its out-buffer drains.

/// Interest in readability. Combine with `|`.
pub const READ: u8 = 0b01;
/// Interest in writability. Combine with `|`.
pub const WRITE: u8 = 0b10;

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the file descriptor was registered with.
    pub token: u64,
    /// Readable (or in an error/hangup state a read will surface).
    pub readable: bool,
    /// Writable (or in an error state a write will surface).
    pub writable: bool,
    /// Peer hung up or the socket errored; the connection is finished
    /// even if no interest bit matched.
    pub hangup: bool,
}

pub use sys::{Poller, Waker};

#[cfg(target_os = "linux")]
mod sys {
    //! `epoll` + `eventfd` backend.

    use super::{Event, READ, WRITE};
    use std::io;
    use std::os::raw::{c_int, c_uint, c_void};
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    // epoll event masks (uapi/linux/eventpoll.h).
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0x8_0000;
    const EFD_CLOEXEC: c_int = 0x8_0000;
    const EFD_NONBLOCK: c_int = 0x800;

    /// `struct epoll_event`. The kernel ABI packs this on x86-64 (the
    /// 32-bit layout was frozen without padding); other architectures
    /// use natural C layout.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn close(fd: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask_for(interest: u8) -> u32 {
        let mut mask = EPOLLRDHUP; // always notice half-closed peers
        if interest & READ != 0 {
            mask |= EPOLLIN;
        }
        if interest & WRITE != 0 {
            mask |= EPOLLOUT;
        }
        mask
    }

    /// Level-triggered `epoll` instance.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        /// Creates the epoll instance.
        ///
        /// # Errors
        /// Propagates `epoll_create1` failure.
        pub fn new() -> io::Result<Self> {
            // SAFETY: no pointers involved; the returned fd is owned here.
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Self { epfd })
        }

        /// Starts watching `fd` with the given interest; events carry
        /// `token` back.
        ///
        /// # Errors
        /// Propagates `epoll_ctl` failure.
        pub fn register(&self, fd: RawFd, token: u64, interest: u8) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        /// Replaces the interest set for an already-registered `fd`.
        ///
        /// # Errors
        /// Propagates `epoll_ctl` failure.
        pub fn modify(&self, fd: RawFd, token: u64, interest: u8) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        /// Stops watching `fd`. Harmless if the fd is already gone (a
        /// close deregisters implicitly).
        pub fn deregister(&self, fd: RawFd) {
            let mut ev = EpollEvent { events: 0, data: 0 };
            // SAFETY: `ev` is a valid epoll_event for the whole call
            // (pre-2.6.9 kernels dereference it even for DEL).
            let _ = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: u8) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask_for(interest),
                data: token,
            };
            // SAFETY: `ev` is a valid epoll_event for the whole call.
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) })?;
            Ok(())
        }

        /// Blocks until at least one registered fd is ready or `timeout`
        /// elapses (`None` = indefinitely); appends events to `out`.
        /// Returns without events on `EINTR` — callers loop anyway.
        ///
        /// # Errors
        /// Propagates `epoll_wait` failure.
        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let timeout_ms: c_int = match timeout {
                None => -1,
                // Round up so a 100µs timeout polls at 1ms, not busily at 0.
                Some(t) => {
                    c_int::try_from(t.as_millis().max(1).min(i32::MAX as u128)).unwrap_or(i32::MAX)
                }
            };
            let mut events = [EpollEvent { events: 0, data: 0 }; 256];
            // SAFETY: the buffer outlives the call and maxevents matches
            // its length.
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    events.as_mut_ptr(),
                    events.len() as c_int,
                    timeout_ms,
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for ev in &events[..n as usize] {
                // Copy out of the (possibly packed) struct before use.
                let (bits, token) = (ev.events, ev.data);
                out.push(Event {
                    token,
                    readable: bits & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0,
                    writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                    hangup: bits & (EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: epfd is owned by this instance and closed once.
            unsafe { close(self.epfd) };
        }
    }

    /// Cross-thread wakeup for a blocked [`Poller::wait`], backed by an
    /// `eventfd`. Register [`fd`](Self::fd) with `READ` interest; call
    /// [`drain`](Self::drain) when its token fires.
    #[derive(Debug)]
    pub struct Waker {
        fd: RawFd,
    }

    impl Waker {
        /// Creates the eventfd.
        ///
        /// # Errors
        /// Propagates `eventfd` failure.
        pub fn new() -> io::Result<Self> {
            let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
            Ok(Self { fd })
        }

        /// The fd to register with the poller.
        #[must_use]
        pub fn fd(&self) -> RawFd {
            self.fd
        }

        /// Wakes the poller. Safe from any thread; coalesces (N wakes may
        /// surface as one readiness event).
        pub fn wake(&self) {
            let one: u64 = 1;
            // SAFETY: writes 8 bytes from a live stack value; EAGAIN
            // (counter saturated) still leaves the fd readable.
            unsafe { write(self.fd, std::ptr::addr_of!(one).cast(), 8) };
        }

        /// Consumes pending wakeups so level-triggered polling settles.
        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            // SAFETY: reads into a live 8-byte buffer; a read resets the
            // eventfd counter, EAGAIN means already drained.
            unsafe { read(self.fd, buf.as_mut_ptr().cast(), 8) };
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            // SAFETY: fd is owned by this instance and closed once.
            unsafe { close(self.fd) };
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    //! Portable `poll(2)` backend: O(registered fds) per wait, which is
    //! fine at the connection counts non-Linux development hosts see.

    use super::{Event, READ, WRITE};
    use std::collections::HashMap;
    use std::io;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: usize, timeout: c_int) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn close(fd: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }

    /// Registered-set `poll(2)` poller.
    #[derive(Debug, Default)]
    pub struct Poller {
        registered: Mutex<HashMap<RawFd, (u64, u8)>>,
    }

    impl Poller {
        /// Creates the poller.
        ///
        /// # Errors
        /// Infallible on this backend (signature matches the epoll one).
        pub fn new() -> io::Result<Self> {
            Ok(Self::default())
        }

        /// Starts watching `fd`; events carry `token` back.
        ///
        /// # Errors
        /// Infallible on this backend.
        pub fn register(&self, fd: RawFd, token: u64, interest: u8) -> io::Result<()> {
            self.registered
                .lock()
                .expect("poller lock")
                .insert(fd, (token, interest));
            Ok(())
        }

        /// Replaces the interest set for `fd`.
        ///
        /// # Errors
        /// Infallible on this backend.
        pub fn modify(&self, fd: RawFd, token: u64, interest: u8) -> io::Result<()> {
            self.register(fd, token, interest)
        }

        /// Stops watching `fd`.
        pub fn deregister(&self, fd: RawFd) {
            self.registered.lock().expect("poller lock").remove(&fd);
        }

        /// Blocks until readiness or timeout; appends events to `out`.
        ///
        /// # Errors
        /// Propagates `poll` failure.
        pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let mut fds: Vec<PollFd> = {
                let registered = self.registered.lock().expect("poller lock");
                registered
                    .iter()
                    .map(|(&fd, &(_, interest))| PollFd {
                        fd,
                        events: if interest & READ != 0 { POLLIN } else { 0 }
                            | if interest & WRITE != 0 { POLLOUT } else { 0 },
                        revents: 0,
                    })
                    .collect()
            };
            let timeout_ms: c_int = match timeout {
                None => -1,
                Some(t) => {
                    c_int::try_from(t.as_millis().max(1).min(i32::MAX as u128)).unwrap_or(i32::MAX)
                }
            };
            // SAFETY: the fd buffer outlives the call and nfds matches.
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len(), timeout_ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            let registered = self.registered.lock().expect("poller lock");
            for pfd in fds.iter().filter(|p| p.revents != 0) {
                let Some(&(token, _)) = registered.get(&pfd.fd) else {
                    continue;
                };
                let bits = pfd.revents;
                out.push(Event {
                    token,
                    readable: bits & (POLLIN | POLLHUP | POLLERR) != 0,
                    writable: bits & (POLLOUT | POLLERR | POLLHUP) != 0,
                    hangup: bits & (POLLHUP | POLLERR) != 0,
                });
            }
            Ok(())
        }
    }

    /// Cross-thread wakeup backed by a self-pipe. The read end stays
    /// blocking: [`drain`](Self::drain) is only called after the poller
    /// reported it readable, and reads at most one burst per call —
    /// excess wakeups just re-arm the next wait.
    #[derive(Debug)]
    pub struct Waker {
        read_fd: RawFd,
        write_fd: RawFd,
    }

    impl Waker {
        /// Creates the pipe.
        ///
        /// # Errors
        /// Propagates `pipe` failure.
        pub fn new() -> io::Result<Self> {
            let mut fds: [c_int; 2] = [0; 2];
            // SAFETY: writes two fds into a live 2-element array.
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self {
                read_fd: fds[0],
                write_fd: fds[1],
            })
        }

        /// The fd to register with the poller (`READ` interest).
        #[must_use]
        pub fn fd(&self) -> RawFd {
            self.read_fd
        }

        /// Wakes the poller.
        pub fn wake(&self) {
            let byte = [1u8];
            // SAFETY: writes one byte from a live buffer.
            unsafe { write(self.write_fd, byte.as_ptr().cast(), 1) };
        }

        /// Consumes pending wakeups (one burst per call).
        pub fn drain(&self) {
            let mut buf = [0u8; 256];
            // SAFETY: reads into a live buffer; called only when readable.
            unsafe { read(self.read_fd, buf.as_mut_ptr().cast(), buf.len()) };
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            // SAFETY: both fds are owned by this instance and closed once.
            unsafe {
                close(self.read_fd);
                close(self.write_fd);
            }
        }
    }
}

#[cfg(not(unix))]
compile_error!(
    "lshe-serve's event loop needs a Unix readiness API (epoll or poll); \
     no backend exists for this target"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Duration;

    #[test]
    fn waker_unblocks_wait() {
        let poller = Poller::new().expect("poller");
        let waker = std::sync::Arc::new(Waker::new().expect("waker"));
        poller.register(waker.fd(), 7, READ).expect("register");
        let w = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            w.wake();
        });
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert!(
            events.iter().any(|e| e.token == 7 && e.readable),
            "waker event missing: {events:?}"
        );
        waker.drain();
        t.join().expect("join");
    }

    #[test]
    fn socket_readiness_and_interest_changes() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");

        let poller = Poller::new().expect("poller");
        let fd = server.as_raw_fd();
        poller.register(fd, 42, READ).expect("register");

        // Nothing sent yet: a short wait must time out empty.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(events.iter().all(|e| e.token != 42), "{events:?}");

        // After a write the socket reports readable.
        client.write_all(b"x").expect("send");
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert!(events.iter().any(|e| e.token == 42 && e.readable));

        // Level-triggered: still readable until consumed.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .expect("wait");
        assert!(events.iter().any(|e| e.token == 42 && e.readable));
        let mut byte = [0u8; 8];
        let n = (&server).read(&mut byte).expect("read");
        assert_eq!(n, 1);

        // Write interest on an empty send buffer fires immediately.
        poller.modify(fd, 42, READ | WRITE).expect("modify");
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert!(events.iter().any(|e| e.token == 42 && e.writable));

        // Peer close surfaces as readable (EOF) + hangup.
        drop(client);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert!(
            events.iter().any(|e| e.token == 42 && e.readable),
            "{events:?}"
        );
        poller.deregister(fd);
    }
}
