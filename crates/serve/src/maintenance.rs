//! The background maintenance runtime: a dedicated thread that executes
//! merge plans off the request path.
//!
//! The engine's commit path seals staged deltas in O(staged delta); what
//! it must never do is fold the segment stack — that cost is O(folded
//! entries) and belongs here. The [`Maintainer`] owns one parked thread
//! (`lshe-maint`) woken by commit markers: on each wake it observes the
//! live snapshot's [`SegmentLayout`], asks its
//! [`MergePolicy`](lshe_core::MergePolicy) for tasks, and executes them
//! through [`Engine::apply_merge`] — copy-on-write folds that swap the
//! snapshot atomically, persist the merged base, and retire committed
//! delta-log prefixes, all concurrent with reads and staged mutations.
//!
//! `POST /compact` no longer runs the fold on the caller's thread
//! either: it enqueues a full-merge epoch here and (unless `?async=1`)
//! blocks its compute-pool lane until the epoch completes.

use crate::engine::Engine;
use lshe_core::{
    CompactionThresholds, Leveled, MaintenancePlanner, MergePolicyKind, MergeTask, SegmentLayout,
};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How the maintenance runtime is configured (`lshe serve
/// --merge-policy/--compact-segments/--compact-tombstone-pct`).
#[derive(Debug, Clone, Copy, Default)]
pub struct MaintenanceConfig {
    /// Which merge policy schedules background folds.
    pub policy: MergePolicyKind,
    /// Trigger thresholds the policy plans against.
    pub thresholds: CompactionThresholds,
}

/// Summary of one finished full compaction, rendered by `/compact`.
#[derive(Debug, Clone)]
pub struct FullMergeSummary {
    /// Staged ops applied by the compaction.
    pub applied: usize,
    /// Staged inserts folded in.
    pub merged: usize,
    /// Whether the fold rebuilt partitions from retained sketches.
    pub rebalanced: bool,
    /// Segments outstanding afterwards (0).
    pub segments: usize,
    /// Tombstones outstanding afterwards (0).
    pub tombstones: usize,
    /// The generation the compaction created.
    pub generation: u64,
    /// Live domains afterwards.
    pub domains: usize,
}

/// Point-in-time maintenance state for `/stats.maintenance`.
#[derive(Debug, Clone)]
pub struct MaintenanceStats {
    /// Policy wire name (`"tiered"` / `"leveled"`).
    pub policy: &'static str,
    /// Effective trigger thresholds.
    pub thresholds: CompactionThresholds,
    /// Per-level (segment count, entry total) occupancy of the live
    /// layout under the leveled geometry, level 0 first.
    pub levels: Vec<(usize, usize)>,
    /// The policy's steady-state segment bound for the live corpus.
    pub segment_bound: usize,
    /// Tasks outstanding: planned merges plus unserved full requests.
    pub queued: usize,
    /// The task label currently executing, if any.
    pub running: Option<&'static str>,
    /// Background merges executed since boot (partial folds).
    pub merges: u64,
    /// Full compactions executed since boot.
    pub full_merges: u64,
    /// Total live entries rewritten by maintenance since boot.
    pub entries_folded: u64,
    /// Wall time of the most recent merge, in microseconds.
    pub last_merge_micros: u64,
    /// The most recent maintenance failure, if any.
    pub last_error: Option<String>,
}

#[derive(Default)]
struct State {
    /// A commit landed since the worker last drained.
    dirty: bool,
    /// Highest full-merge epoch requested / completed. A single fold
    /// satisfies every epoch requested before it started.
    full_requested: u64,
    full_completed: u64,
    last_full: Option<Result<FullMergeSummary, String>>,
    shutdown: bool,
    running: Option<&'static str>,
    merges: u64,
    full_merges: u64,
    entries_folded: u64,
    last_merge_micros: u64,
    last_error: Option<String>,
}

enum Job {
    /// Serve full-merge requests up to this epoch.
    Full(u64),
    /// Drain the policy's plan to quiescence.
    Drain,
}

/// The background maintenance runtime. One per server; shared via `Arc`.
pub struct Maintainer {
    engine: Arc<Engine>,
    planner: MaintenancePlanner,
    config: MaintenanceConfig,
    /// Leveled geometry used to *render* the level layout in stats; for
    /// a tiered policy it is purely observational.
    level_view: Leveled,
    state: Mutex<State>,
    /// Worker parks here; commits and full requests signal it.
    work: Condvar,
    /// `/compact` waiters park here; full completions signal it.
    done: Condvar,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Called after every snapshot swap (the server drops dead cache
    /// weight — entries are generation-keyed, never stale).
    on_swap: Box<dyn Fn() + Send + Sync>,
    /// Test hook: stretch the full-merge window so overlap is provable.
    full_delay: Mutex<Duration>,
}

impl std::fmt::Debug for Maintainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Maintainer")
            .field("policy", &self.planner.policy_name())
            .finish()
    }
}

impl Maintainer {
    /// Spawns the maintenance thread. `on_swap` runs after every
    /// snapshot swap the maintainer performs (cache invalidation).
    pub fn spawn(
        engine: Arc<Engine>,
        config: MaintenanceConfig,
        on_swap: Box<dyn Fn() + Send + Sync>,
    ) -> Arc<Self> {
        let maintainer = Arc::new(Self {
            engine,
            planner: MaintenancePlanner::for_kind(config.policy, config.thresholds),
            level_view: Leveled::with_thresholds(config.thresholds),
            config,
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            done: Condvar::new(),
            thread: Mutex::new(None),
            on_swap,
            full_delay: Mutex::new(Duration::ZERO),
        });
        let worker = Arc::clone(&maintainer);
        let handle = std::thread::Builder::new()
            .name("lshe-maint".to_owned())
            .spawn(move || worker.run())
            .expect("spawn maintenance thread");
        *maintainer.thread.lock().expect("maint thread lock") = Some(handle);
        maintainer
    }

    /// Wakes the worker after a commit: it re-plans against the new
    /// layout and folds until the policy is quiescent. O(1), lock + one
    /// notify — safe on every commit.
    pub fn notify_commit(&self) {
        let mut state = self.state.lock().expect("maint state poisoned");
        state.dirty = true;
        self.work.notify_one();
    }

    /// Enqueues a full merge and returns its epoch (pass to
    /// [`wait_full`](Self::wait_full) to block until it completes).
    pub fn request_full(&self) -> u64 {
        let mut state = self.state.lock().expect("maint state poisoned");
        state.full_requested += 1;
        let epoch = state.full_requested;
        self.work.notify_one();
        epoch
    }

    /// Blocks until the full merge of `epoch` completed, returning its
    /// summary (or the failure message).
    ///
    /// # Errors
    /// The engine's error message when the compaction failed, or a
    /// shutdown notice when the server stopped before serving the epoch.
    pub fn wait_full(&self, epoch: u64) -> Result<FullMergeSummary, String> {
        let mut state = self.state.lock().expect("maint state poisoned");
        while state.full_completed < epoch && !state.shutdown {
            state = self.done.wait(state).expect("maint state poisoned");
        }
        if state.full_completed < epoch {
            return Err("server shut down before the compaction ran".to_owned());
        }
        match &state.last_full {
            Some(Ok(summary)) => Ok(summary.clone()),
            Some(Err(msg)) => Err(msg.clone()),
            None => Err("no compaction outcome recorded".to_owned()),
        }
    }

    /// Stops the worker after its current task and joins it. Idempotent;
    /// wakes any `/compact` waiters with a shutdown error.
    pub fn shutdown(&self) {
        {
            let mut state = self.state.lock().expect("maint state poisoned");
            state.shutdown = true;
            self.work.notify_one();
            self.done.notify_all();
        }
        let handle = self.thread.lock().expect("maint thread lock").take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }

    /// Point-in-time state for `/stats.maintenance`.
    #[must_use]
    pub fn stats(&self) -> MaintenanceStats {
        let layout = self.engine.segment_layout();
        let planned = self.planner.plan(&layout).len();
        let state = self.state.lock().expect("maint state poisoned");
        MaintenanceStats {
            policy: self.planner.policy_name(),
            thresholds: self.config.thresholds,
            levels: self.level_view.occupancy(&layout),
            segment_bound: self.planner.segment_bound(layout.len + layout.tombstones),
            queued: planned + (state.full_requested - state.full_completed) as usize,
            running: state.running,
            merges: state.merges,
            full_merges: state.full_merges,
            entries_folded: state.entries_folded,
            last_merge_micros: state.last_merge_micros,
            last_error: state.last_error.clone(),
        }
    }

    /// Test hook: every full merge sleeps this long before folding, so
    /// overlap tests get a deterministic window.
    #[cfg(test)]
    pub(crate) fn set_full_delay_for_tests(&self, delay: Duration) {
        *self.full_delay.lock().expect("maint delay lock") = delay;
    }

    fn next_job(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("maint state poisoned");
        loop {
            if state.shutdown {
                return None;
            }
            if state.full_completed < state.full_requested {
                return Some(Job::Full(state.full_requested));
            }
            if state.dirty {
                state.dirty = false;
                return Some(Job::Drain);
            }
            state = self.work.wait(state).expect("maint state poisoned");
        }
    }

    fn run(&self) {
        while let Some(job) = self.next_job() {
            match job {
                Job::Full(epoch) => self.run_full(epoch),
                Job::Drain => self.run_drain(),
            }
        }
    }

    /// One full compaction serving every epoch requested up to `epoch`.
    fn run_full(&self, epoch: u64) {
        let delay = *self.full_delay.lock().expect("maint delay lock");
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        let folded: usize = self.engine.segment_layout().segments.iter().sum();
        self.state.lock().expect("maint state poisoned").running = Some("full");
        let started = Instant::now();
        let result = self.engine.compact();
        let elapsed = started.elapsed().as_micros() as u64;
        let swapped = result.is_ok();
        {
            let mut state = self.state.lock().expect("maint state poisoned");
            state.running = None;
            state.last_merge_micros = elapsed;
            match result {
                Ok((snap, outcome)) => {
                    state.full_merges += 1;
                    state.entries_folded += folded as u64;
                    state.last_error = None;
                    state.last_full = Some(Ok(FullMergeSummary {
                        applied: outcome.applied,
                        merged: outcome.report.merged,
                        rebalanced: outcome.report.rebalanced,
                        segments: outcome.report.segments,
                        tombstones: outcome.report.tombstones,
                        generation: snap.generation(),
                        domains: snap.container().len(),
                    }));
                }
                Err(e) => {
                    let msg = e.to_string();
                    state.last_error = Some(msg.clone());
                    state.last_full = Some(Err(msg));
                }
            }
            state.full_completed = epoch;
            self.done.notify_all();
        }
        if swapped {
            (self.on_swap)();
        }
    }

    /// Folds until the policy's plan comes back empty. Full requests and
    /// shutdown preempt between tasks.
    fn run_drain(&self) {
        loop {
            {
                let state = self.state.lock().expect("maint state poisoned");
                if state.shutdown || state.full_completed < state.full_requested {
                    return;
                }
            }
            let layout = self.engine.segment_layout();
            let tasks = self.planner.plan(&layout);
            if tasks.is_empty() {
                return;
            }
            for task in tasks {
                let label = match task {
                    MergeTask::Merge(_) => "merge",
                    MergeTask::Full => "full",
                };
                self.state.lock().expect("maint state poisoned").running = Some(label);
                let started = Instant::now();
                let result = self.engine.apply_merge(&task);
                let elapsed = started.elapsed().as_micros() as u64;
                let mut state = self.state.lock().expect("maint state poisoned");
                state.running = None;
                state.last_merge_micros = elapsed;
                match result {
                    Ok((_, outcome)) => {
                        state.merges += 1;
                        state.entries_folded += outcome.entries_folded as u64;
                        state.last_error = None;
                        drop(state);
                        (self.on_swap)();
                    }
                    Err(e) => {
                        // A failed fold (e.g. a racing reload swapped in
                        // a mapped index) leaves the stack for the next
                        // trigger instead of hot-looping on the error.
                        state.last_error = Some(e.to_string());
                        return;
                    }
                }
            }
        }
    }
}

/// The layout summary helper shared with `/stats`: renders the policy's
/// view of a layout without needing a running maintainer.
#[must_use]
pub fn level_occupancy(
    thresholds: CompactionThresholds,
    layout: &SegmentLayout,
) -> Vec<(usize, usize)> {
    Leveled::with_thresholds(thresholds).occupancy(layout)
}
